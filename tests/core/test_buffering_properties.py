"""Property tests for Algorithm 1's accumulator on random streams."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchInfo
from repro.core.buffering import MicroBatchAccumulator
from repro.core.config import AccumulatorConfig
from repro.core.sketch_accumulator import SketchMicroBatchAccumulator
from repro.core.tuples import StreamTuple


@st.composite
def streams(draw):
    n = draw(st.integers(1, 300))
    keys = draw(st.lists(st.integers(0, 40), min_size=n, max_size=n))
    return [
        StreamTuple(ts=i / n, key=k, value=None) for i, (k) in enumerate(keys)
    ]


@given(
    tuples=streams(),
    budget=st.integers(1, 16),
    exact=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_property_accumulator_conserves_everything(tuples, budget, exact):
    """Every tuple ends up in exactly one key group, with exact counts."""
    acc = MicroBatchAccumulator(
        AccumulatorConfig(budget=budget, expected_tuples=max(1, len(tuples)),
                          expected_keys=41),
        exact_updates=exact,
    )
    acc.start_interval(BatchInfo(0, 0.0, 1.0))
    acc.accept_all(tuples)
    batch = acc.finalize()
    truth = Counter(t.key for t in tuples)
    got = {g.key: g.count for g in batch.key_groups}
    assert got == dict(truth)
    assert batch.tuple_count == len(tuples)
    # one group per key, never duplicates
    assert len(batch.key_groups) == len(truth)


@given(tuples=streams(), budget=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_property_tree_updates_bounded_by_budget(tuples, budget):
    """Tree repositionings never exceed budget * distinct keys."""
    acc = MicroBatchAccumulator(
        AccumulatorConfig(budget=budget, expected_tuples=max(1, len(tuples)),
                          expected_keys=41)
    )
    acc.start_interval(BatchInfo(0, 0.0, 1.0))
    acc.accept_all(tuples)
    batch = acc.finalize()
    assert batch.tree_updates <= budget * batch.key_count


@given(tuples=streams())
@settings(max_examples=60, deadline=None)
def test_property_exact_mode_fully_sorted(tuples):
    acc = MicroBatchAccumulator(exact_updates=True)
    acc.start_interval(BatchInfo(0, 0.0, 1.0))
    acc.accept_all(tuples)
    batch = acc.finalize()
    sizes = [g.size for g in batch.key_groups]
    assert sizes == sorted(sizes, reverse=True)


@given(tuples=streams(), capacity=st.integers(1, 32))
@settings(max_examples=60, deadline=None)
def test_property_sketch_accumulator_conserves_everything(tuples, capacity):
    acc = SketchMicroBatchAccumulator(capacity=capacity)
    acc.start_interval(BatchInfo(0, 0.0, 1.0))
    acc.accept_all(tuples)
    batch = acc.finalize()
    truth = Counter(t.key for t in tuples)
    got = {g.key: g.count for g in batch.key_groups}
    assert got == dict(truth)
