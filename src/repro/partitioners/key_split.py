"""Key-split partitioning — PK2 / PK5 baselines (Section 2.2.4).

The "power of both choices" family (Nasir et al., ICDE'15/'16): ``d``
independent hash functions give each key ``d`` candidate blocks, and
each arriving tuple goes to the *least loaded* of its key's candidates.
PK2 fixes ``d=2`` ("The Power of Both Choices"), PK5 ``d=5`` ("When Two
Choices Are Not Enough").

Load balance improves exponentially with ``d`` for size, but each key
still fragments over up to ``d`` blocks (hurting KSR and the Reduce
per-key aggregation), and per-block *cardinality* is uncontrolled.
Because these techniques come from continuous tuple-at-a-time DSPSs,
they are obliged to decide per tuple with only running statistics —
precisely the restriction Prompt's whole-batch view removes.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.hashing import candidate_buckets
from ..core.tuples import Key, StreamTuple
from .base import StreamingPartitioner

__all__ = ["KeySplitPartitioner", "PK2Partitioner", "PK5Partitioner"]


class KeySplitPartitioner(StreamingPartitioner):
    """Power-of-*d*-choices key splitting."""

    name = "pkd"

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = d
        self._candidate_cache: dict[tuple[Key, int], list[int]] = {}

    def reset(self) -> None:
        self._candidate_cache.clear()

    def _candidates(self, key: Key, num_blocks: int) -> list[int]:
        cached = self._candidate_cache.get((key, num_blocks))
        if cached is None:
            cached = candidate_buckets(key, num_blocks, self.d)
            self._candidate_cache[(key, num_blocks)] = cached
        return cached

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        candidates = self._candidates(t.key, len(blocks))
        # Least-loaded candidate at decision time (Section 2.2.4 (1)).
        return min(candidates, key=lambda i: (blocks[i].size, i))


class PK2Partitioner(KeySplitPartitioner):
    """Partial key grouping with two choices (Nasir et al., ICDE'15)."""

    name = "pk2"

    def __init__(self) -> None:
        super().__init__(d=2)


class PK5Partitioner(KeySplitPartitioner):
    """Key splitting with five choices (Nasir et al., ICDE'16)."""

    name = "pk5"

    def __init__(self) -> None:
        super().__init__(d=5)
