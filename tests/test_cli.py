"""CLI: argument handling and experiment dispatch."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main
from repro.partitioners import PARTITIONER_NAMES, make_partitioner


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_requires_known_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_table1(capsys):
    assert main(["run", "table1", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Tweets" in out


def test_run_fig6(capsys):
    assert main(["run", "fig6", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Prompt (Algorithm 2)" in out


def test_run_fig10_with_dataset(capsys):
    assert main(["run", "fig10", "--dataset", "tpch", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "tpch" in out
    assert "prompt" in out


def test_run_fig14b(capsys):
    assert main(["run", "fig14b", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "OverheadPct" in out


def test_run_saves_results(tmp_path, capsys, monkeypatch):
    import repro.bench.reporting as reporting
    import repro.cli as cli

    monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
    monkeypatch.setattr(cli, "save_results", reporting.save_results)
    assert main(["run", "fig6"]) == 0
    assert (tmp_path / "cli_fig6.json").exists()


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_quickstart_quiet_suppresses_reporting(capsys):
    assert main(["quickstart", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_quickstart_writes_trace_and_metrics(tmp_path, capsys):
    import json

    from repro.obs import parse_prometheus

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.prom"
    assert main(
        ["quickstart", "--trace", str(trace), "--metrics", str(metrics)]
    ) == 0
    out = capsys.readouterr().out
    assert f"trace written to {trace}" in out
    assert f"metrics written to {metrics}" in out
    events = json.loads(trace.read_text())["traceEvents"]
    assert {e["name"] for e in events} >= {"run", "batch", "map_task", "shuffle"}
    samples = parse_prometheus(metrics.read_text())
    assert samples["prompt_batches_total"] == 12.0


def test_run_quickstart_experiment_with_trace(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(
        ["run", "quickstart", "--no-save", "--trace", str(trace)]
    ) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert trace.exists()


def test_trace_summarize(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["quickstart", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-phase breakdown:" in out
    for phase in ("run", "batch", "partition", "map_task", "reduce_task"):
        assert phase in out
    assert "slowest tasks:" in out


def test_log_level_streams_diagnostics_to_stderr(capsys):
    assert main(["quickstart", "--log-level", "info"]) == 0
    captured = capsys.readouterr()
    assert "throughput" in captured.out
    assert "repro.engine" in captured.err


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_every_registry_name_round_trips(name):
    """Each registry name must parse as ``--partitioner``, construct,
    and survive the pickling the parallel backend's run context needs."""
    from repro.cli import _build_parser

    args = _build_parser().parse_args(["quickstart", "--partitioner", name])
    assert args.partitioner == name
    part = make_partitioner(name)
    assert part.name == name or name.startswith("prompt")
    restored = pickle.loads(pickle.dumps(part))
    assert restored.name == part.name
    allocation = part.reduce_allocation()
    assert pickle.loads(pickle.dumps(allocation)) is not None


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_every_registry_name_is_documented(name):
    """doc-sync: the API reference must list every technique."""
    api = (Path(__file__).resolve().parents[1] / "docs" / "api.md").read_text()
    assert f"`{name}`" in api, f"{name} missing from docs/api.md"


def test_quickstart_accepts_a_partitioner(capsys):
    assert main(["quickstart", "--partitioner", "d-choices"]) == 0
    assert "throughput" in capsys.readouterr().out


def test_quickstart_rejects_unknown_partitioner():
    with pytest.raises(SystemExit):
        main(["quickstart", "--partitioner", "nonesuch"])
