"""Table 1: dataset properties (paper values vs. scaled generators)."""

from __future__ import annotations

from repro.bench import format_table, table1_dataset_stats


def test_table1_dataset_stats(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: table1_dataset_stats(rate=10_000.0, sample_seconds=2.0),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "table1_datasets",
        format_table(rows, title="Table 1: Datasets (paper vs scaled stand-ins)"),
        rows,
        store=dict(workload="all"),
    )
    assert [r["Name"] for r in rows] == ["Tweets", "SynD", "DEBS", "GCM", "TPC-H"]
    for row in rows:
        assert row["SampledTuples"] == 20_000
