"""Bounded Zipf sampler: distribution shape, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.zipf import ZipfSampler


def test_probabilities_sum_to_one():
    sampler = ZipfSampler(1000, 1.2)
    assert sampler.probabilities.sum() == pytest.approx(1.0)


def test_rank_zero_is_hottest():
    sampler = ZipfSampler(100, 1.5)
    p = sampler.probabilities
    assert np.all(np.diff(p) <= 0)


def test_zero_exponent_is_uniform():
    sampler = ZipfSampler(10, 0.0)
    assert np.allclose(sampler.probabilities, 0.1)


def test_top_share_grows_with_exponent():
    shares = [ZipfSampler(5000, z).expected_top_share(1) for z in (0.2, 1.0, 1.8)]
    assert shares[0] < shares[1] < shares[2]
    assert shares[2] > 0.3  # strong skew concentrates mass


def test_samples_in_range():
    sampler = ZipfSampler(50, 1.0, seed=1)
    ranks = sampler.sample(5000)
    assert ranks.min() >= 0
    assert ranks.max() < 50


def test_empirical_matches_theoretical():
    sampler = ZipfSampler(100, 1.0, seed=2)
    ranks = sampler.sample(100_000)
    empirical_top = np.mean(ranks == 0)
    assert empirical_top == pytest.approx(sampler.probabilities[0], rel=0.1)


def test_deterministic_given_seed():
    a = ZipfSampler(100, 1.1, seed=7).sample(100)
    b = ZipfSampler(100, 1.1, seed=7).sample(100)
    assert np.array_equal(a, b)


def test_reseed_replays_stream():
    sampler = ZipfSampler(100, 1.1, seed=7)
    first = sampler.sample(100)
    sampler.reseed(7)
    assert np.array_equal(sampler.sample(100), first)


def test_mandelbrot_shift_flattens_head():
    plain = ZipfSampler(1000, 1.1, shift=0.0)
    shifted = ZipfSampler(1000, 1.1, shift=5.0)
    assert shifted.probabilities[0] < plain.probabilities[0]


def test_sample_zero_count():
    assert len(ZipfSampler(10, 1.0).sample(0)) == 0


def test_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0, shift=-1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0).sample(-1)
    with pytest.raises(ValueError):
        ZipfSampler(10, 1.0).expected_top_share(0)
