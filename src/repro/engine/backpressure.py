"""Back-pressure monitoring and the maximum-throughput criterion.

The paper measures throughput operationally: "Spark Streaming
back-pressure is used to indicate when the maximum ingestion rate is
reached" (Section 7) — back-pressure fires when batches queue beyond
what the pipeline can absorb, signalling the source to slow down.  The
monitor reproduces that signal; the bench harness binary-searches the
highest source rate that never trips it (Figure 11's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stats import RunStats

__all__ = ["BackpressureConfig", "BackpressureMonitor", "run_is_stable"]


@dataclass(frozen=True, slots=True)
class BackpressureConfig:
    """When is the system considered to have fallen behind?"""

    #: trip when a batch waits longer than this many intervals to start
    max_queue_intervals: float = 1.0
    #: trip when the average load over the trailing window exceeds this
    max_mean_load: float = 1.0
    #: batches ignored while the system warms up (Section 7, measure (4))
    warmup_batches: int = 2

    def __post_init__(self) -> None:
        if self.max_queue_intervals < 0:
            raise ValueError("max_queue_intervals must be >= 0")
        if self.max_mean_load <= 0:
            raise ValueError("max_mean_load must be positive")
        if self.warmup_batches < 0:
            raise ValueError("warmup_batches must be >= 0")


class BackpressureMonitor:
    """Online back-pressure signal over batch completions."""

    def __init__(self, config: BackpressureConfig | None = None) -> None:
        self.config = config or BackpressureConfig()
        self._loads: list[float] = []
        self._triggered_at: int | None = None

    @property
    def triggered(self) -> bool:
        return self._triggered_at is not None

    @property
    def triggered_at(self) -> int | None:
        """Batch index at which back-pressure first fired."""
        return self._triggered_at

    def observe(self, batch_index: int, load: float, queue_delay: float, batch_interval: float) -> bool:
        """Feed one completed batch; returns True if back-pressure fired."""
        self._loads.append(load)
        if self.triggered:
            return True
        if batch_index < self.config.warmup_batches:
            return False
        if queue_delay > self.config.max_queue_intervals * batch_interval:
            self._triggered_at = batch_index
            return True
        window = self._loads[self.config.warmup_batches :]
        if window:
            mean = sum(window) / len(window)
            if mean > self.config.max_mean_load:
                self._triggered_at = batch_index
                return True
        return False


def run_is_stable(stats: RunStats, config: BackpressureConfig | None = None) -> bool:
    """Post-hoc stability: would back-pressure have stayed silent?"""
    cfg = config or BackpressureConfig()
    monitor = BackpressureMonitor(cfg)
    for record in stats.records:
        monitor.observe(
            record.index, record.load, record.queue_delay, record.batch_interval
        )
    return not monitor.triggered
