"""Exporters for spans and metrics, plus the trace summarizer.

Three on-disk formats, all zero-dependency:

- **Chrome trace-event JSON** (:func:`write_chrome_trace`) — loadable in
  ``chrome://tracing`` or Perfetto.  Spans become complete (``"X"``)
  events; worker pids land on their own rows so stitched Map/Reduce task
  bodies visually separate from driver work.  Span attrs travel in
  ``args`` and the span/parent ids are preserved there, so the exact
  tree is recoverable (:func:`read_chrome_trace`).
- **JSONL** (:func:`write_jsonl`) — one JSON object per line, spans
  (``{"type": "span", ...}``) followed by a metrics snapshot
  (``{"type": "metric", ...}`` lines); greppable and streamable.
- **Prometheus text** (:func:`prometheus_text`) — a pull-style snapshot
  of the registry in the v0 exposition format; :func:`parse_prometheus`
  is the matching minimal parser (CI uses it to validate the artifact).

:func:`summarize_trace` + :func:`format_trace_summary` back the
``repro trace summarize`` CLI: per-phase total/mean/max wall-clock and
the top-k slowest Map/Reduce tasks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .metrics import MetricsRegistry
from .tracing import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus",
    "summarize_trace",
    "format_trace_summary",
]


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Spans as Chrome trace complete events (ts/dur in microseconds)."""
    events = []
    for span in spans:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "cat": "repro",
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: Iterable[Span], path: str | Path) -> Path:
    """Write ``{"traceEvents": [...]}`` JSON; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    return path


def read_chrome_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load and structurally validate a Chrome trace file's events."""
    data = json.loads(Path(path).read_text())
    events = data["traceEvents"] if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    for ev in events:
        for required in ("name", "ph", "ts"):
            if required not in ev:
                raise ValueError(f"{path}: event missing {required!r}: {ev}")
    return events


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(
    path: str | Path,
    spans: Iterable[Span] = (),
    metrics: MetricsRegistry | None = None,
) -> Path:
    """Span lines then metric lines, one JSON object each."""
    path = Path(path)
    with path.open("w") as fh:
        for span in spans:
            fh.write(
                json.dumps(
                    {
                        "type": "span",
                        "name": span.name,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "start": span.start,
                        "end": span.end,
                        "duration": span.duration,
                        "pid": span.pid,
                        "attrs": span.attrs,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        if metrics is not None:
            for name, value in metrics.as_dict().items():
                fh.write(
                    json.dumps(
                        {"type": "metric", "name": name, "value": value},
                        sort_keys=True,
                    )
                    + "\n"
                )
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt_labels(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Snapshot the registry in the Prometheus v0 text format."""
    lines: list[str] = []
    seen_header: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            help_text = registry.help_for(metric.name)
            if help_text:
                lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for bound, count in zip(metric.buckets, metric.cumulative_counts()):
                le = 'le="%g"' % bound
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_fmt_labels(metric.labels, le)} {count}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{metric.name}_bucket"
                f"{_fmt_labels(metric.labels, inf)} {metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{_fmt_labels(metric.labels)} {metric.sum:g}"
            )
            lines.append(
                f"{metric.name}_count{_fmt_labels(metric.labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_fmt_labels(metric.labels)} {metric.value:g}"
            )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


def parse_prometheus(text: str) -> dict[str, float]:
    """Minimal exposition-format parser: sample name+labels -> value.

    Raises ``ValueError`` on malformed sample lines — which is exactly
    what the CI artifact check needs; it is not a full client library.
    """
    samples: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if not head:
            raise ValueError(f"line {lineno}: not a sample: {line!r}")
        try:
            samples[head] = float(value)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: bad value {value!r}") from exc
    return samples


# ----------------------------------------------------------------------
# trace summarization (CLI: repro trace summarize)
# ----------------------------------------------------------------------
#: span names that count as "tasks" for the top-k slowest listing
TASK_SPAN_NAMES = ("map_task", "reduce_task")


def summarize_trace(path: str | Path, top_k: int = 5) -> dict[str, Any]:
    """Per-phase wall-clock breakdown, top-k slowest tasks, payload bytes.

    The ``payload`` section aggregates the delta-dispatch accounting the
    parallel backend stitches into the trace: per-task payload sizes
    (the ``payload_bytes`` attr on ``map_task``/``reduce_task`` spans)
    and run-context broadcasts (``context_install`` events).  Traces
    from serial runs have neither, so every figure reads 0.

    The ``dispatch`` section reconstructs the streaming plan→dispatch
    timeline from ``plan_emit``/``map_dispatch`` spans: per batch, when
    the first and last Map task went in flight relative to the plan
    tail's end, and how much plan time overlapped dispatched work.
    Eager traces carry neither span, so the section stays empty.
    """
    events = read_chrome_trace(path)
    phases: dict[str, dict[str, float]] = {}
    tasks: list[dict[str, Any]] = []
    payload = {
        "task_payload_bytes": 0,
        "tasks_with_payload": 0,
        "mean_bytes_per_task": 0.0,
        "max_bytes_per_task": 0,
        "context_installs": 0,
        "context_bytes": 0,
    }
    dispatch: dict[str, Any] = {
        "plan_emits": 0,
        "plan_emit_total_s": 0.0,
        "map_dispatches": 0,
        "map_dispatch_total_s": 0.0,
        "batches": [],
    }
    per_batch: dict[Any, dict[str, Any]] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        name = ev["name"]
        dur = float(ev.get("dur", 0.0)) / 1e6
        agg = phases.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += dur
        agg["max_s"] = max(agg["max_s"], dur)
        if name in ("plan_emit", "map_dispatch"):
            batch = ev.get("args", {}).get("batch")
            row = per_batch.setdefault(
                batch,
                {
                    "batch": batch,
                    "plan_emit_s": 0.0,
                    "plan_end_ts_s": None,
                    "first_dispatch_ts_s": None,
                    "last_dispatch_ts_s": None,
                    "blocks_dispatched": 0,
                },
            )
            start_s = float(ev.get("ts", 0.0)) / 1e6
            end_s = start_s + dur
            if name == "plan_emit":
                dispatch["plan_emits"] += 1
                dispatch["plan_emit_total_s"] += dur
                row["plan_emit_s"] += dur
                if row["plan_end_ts_s"] is None or end_s > row["plan_end_ts_s"]:
                    row["plan_end_ts_s"] = end_s
            else:
                dispatch["map_dispatches"] += 1
                dispatch["map_dispatch_total_s"] += dur
                row["blocks_dispatched"] += 1
                if (
                    row["first_dispatch_ts_s"] is None
                    or start_s < row["first_dispatch_ts_s"]
                ):
                    row["first_dispatch_ts_s"] = start_s
                if (
                    row["last_dispatch_ts_s"] is None
                    or end_s > row["last_dispatch_ts_s"]
                ):
                    row["last_dispatch_ts_s"] = end_s
        if name == "context_install":
            payload["context_installs"] += 1
            payload["context_bytes"] += int(ev.get("args", {}).get("bytes", 0))
        if name in TASK_SPAN_NAMES:
            args = ev.get("args", {})
            nbytes = args.get("payload_bytes")
            if nbytes is not None:
                payload["task_payload_bytes"] += int(nbytes)
                payload["tasks_with_payload"] += 1
                payload["max_bytes_per_task"] = max(
                    payload["max_bytes_per_task"], int(nbytes)
                )
            tasks.append(
                {
                    "phase": name,
                    "task_id": args.get("task_id"),
                    "batch": args.get("batch"),
                    "attempt": args.get("attempt"),
                    "pid": ev.get("pid"),
                    "duration_s": dur,
                }
            )
    for agg in phases.values():
        agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0
    if payload["tasks_with_payload"]:
        payload["mean_bytes_per_task"] = (
            payload["task_payload_bytes"] / payload["tasks_with_payload"]
        )
    for row in per_batch.values():
        # plan time that ran while at least one Map task was already in
        # flight — the overlap streaming dispatch buys for this batch
        if (
            row["plan_end_ts_s"] is not None
            and row["first_dispatch_ts_s"] is not None
        ):
            row["overlap_s"] = max(
                0.0, row["plan_end_ts_s"] - row["first_dispatch_ts_s"]
            )
        else:
            row["overlap_s"] = 0.0
    dispatch["batches"] = sorted(
        per_batch.values(),
        key=lambda r: (r["batch"] is None, r["batch"]),
    )
    tasks.sort(key=lambda t: t["duration_s"], reverse=True)
    return {
        "phases": phases,
        "slowest_tasks": tasks[:top_k],
        "payload": payload,
        "dispatch": dispatch,
    }


def format_trace_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace`'s output."""
    lines = ["per-phase breakdown:"]
    lines.append(
        f"  {'phase':<14} {'count':>6} {'total_s':>10} {'mean_s':>10} {'max_s':>10}"
    )
    phases = summary["phases"]
    for name in sorted(phases, key=lambda n: -phases[n]["total_s"]):
        agg = phases[name]
        lines.append(
            f"  {name:<14} {agg['count']:>6d} {agg['total_s']:>10.6f} "
            f"{agg['mean_s']:>10.6f} {agg['max_s']:>10.6f}"
        )
    if summary["slowest_tasks"]:
        lines.append("slowest tasks:")
        for t in summary["slowest_tasks"]:
            lines.append(
                f"  {t['phase']}[{t['task_id']}] batch={t['batch']} "
                f"attempt={t['attempt']} pid={t['pid']} {t['duration_s']:.6f}s"
            )
    payload = summary.get("payload")
    if payload and (
        payload["task_payload_bytes"] or payload["context_installs"]
    ):
        # only traces from delta-accounting runs carry this data, so the
        # section is omitted for (older or serial) traces without it
        lines.append("payload:")
        lines.append(
            f"  task payloads   {payload['task_payload_bytes']:>12,} bytes over "
            f"{payload['tasks_with_payload']} task(s) "
            f"(mean {payload['mean_bytes_per_task']:,.0f}, "
            f"max {payload['max_bytes_per_task']:,})"
        )
        lines.append(
            f"  context installs {payload['context_installs']:>11,} "
            f"({payload['context_bytes']:,} bytes broadcast)"
        )
    dispatch = summary.get("dispatch")
    if dispatch and (dispatch["plan_emits"] or dispatch["map_dispatches"]):
        # only streamed runs emit plan_emit/map_dispatch spans, so eager
        # (or older) traces render without this section
        lines.append("dispatch:")
        lines.append(
            f"  plan emissions  {dispatch['plan_emits']:>6d} "
            f"({dispatch['plan_emit_total_s']:.6f}s planned) "
            f"map dispatches {dispatch['map_dispatches']:>6d} "
            f"({dispatch['map_dispatch_total_s']:.6f}s dispatching)"
        )
        for row in dispatch["batches"]:
            first = row["first_dispatch_ts_s"]
            last = row["last_dispatch_ts_s"]
            lines.append(
                f"  batch={row['batch']} blocks={row['blocks_dispatched']} "
                f"plan_emit={row['plan_emit_s']:.6f}s "
                f"first_dispatch={'-' if first is None else f'{first:.6f}s'} "
                f"last_dispatch={'-' if last is None else f'{last:.6f}s'} "
                f"overlap={row['overlap_s']:.6f}s"
            )
    return "\n".join(lines)
