"""Streaming dispatch: wall-clock reclaimed at the plan→dispatch boundary.

``streaming_dispatch=True`` lets the parallel backend launch each Map
task the moment Algorithm 2 finalizes its block, instead of sitting on
every finished block until the whole plan (and every payload pickle) is
done.  The reclaimable time is the plan/pickle *tail* — everything
after the first block is final — executed while early Map tasks already
run on the pool.  The bench workload is shaped so that tail is real:

- **plan side** — a high-rate Zipf stream with a large key universe:
  block materialization and payload pickling are both O(tuples), so
  the post-first-block tail is a substantial slice of the batch;
- **executor side** — CPU-bound Map bodies (crc32 mixing per tuple, as
  in the speedup/pipeline benches) on a deliberately *small* pool
  (``workers=1`` by default), which leaves the dispatch thread a core
  of its own on multi-core hosts — the configuration where intra-batch
  overlap is physically possible.

Both modes run the *same* seeded workload; the bench asserts
byte-identical windowed answers, field-equal batch records and
per-index state equality before reporting a single number — a speedup
obtained by changing the answer would be worthless.

The gate (:func:`streaming_gate`) is CPU-aware, like the parallel
speedup bench: overlap needs a spare core, so the ≤ 0.92x wall ratio
is only demanded on multi-core hosts; a single-core box records the
honest ratio and is sanity-checked against pathological overhead.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Sequence

from ..engine.engine import EngineConfig, MicroBatchEngine, RunResult
from ..partitioners.registry import make_partitioner
from ..queries.base import Query, SumAggregator, WindowSpec
from ..workloads.arrival import ConstantRate
from ..workloads.synd import synd_source
from .payload import VocabWeightTable

__all__ = ["bench_streaming_dispatch", "streaming_gate"]

#: crc32-mixing rounds per Map call — lighter than the speedup bench's
#: HEAVY_ROUNDS so the Map wave stays comparable to the plan/pickle
#: tail it is supposed to overlap
STREAMING_ROUNDS = 25

#: strict gate on hosts with a spare core for the dispatch thread
STREAMING_WALL_RATIO = 0.92
#: single-core sanity bound: streaming buys nothing without a spare
#: core, but it must not cost more than scheduler-thrash noise either
SINGLE_CORE_RATIO_CEILING = 1.25


def _heavy_wordcount_query(window_length: float, vocab_size: int) -> Query:
    return Query(
        name="wordcount-streamed",
        aggregator=SumAggregator(),
        window=WindowSpec(length=window_length, slide=window_length),
        map_fn=VocabWeightTable(vocab_size, rounds=STREAMING_ROUNDS),
    )


def _timed_run(
    streaming: bool,
    *,
    workers: int | None,
    rate: float,
    num_batches: int,
    num_keys: int,
    exponent: float,
    num_blocks: int,
    vocab_size: int,
    seed: int,
    ingest_kernel: str | None,
) -> tuple[float, RunResult]:
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
    )
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=num_blocks,
        num_reducers=num_blocks,
        executor="parallel",
        executor_workers=workers,
        run_seed=seed,
        ingest_kernel=ingest_kernel,
        streaming_dispatch=streaming,
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        _heavy_wordcount_query(3.0, vocab_size),
        config,
    )
    started = time.perf_counter()
    result = engine.run(source, num_batches)
    return time.perf_counter() - started, result


def _assert_identical(eager: RunResult, streamed: RunResult) -> None:
    assert eager.stats.records == streamed.stats.records, (
        "streaming dispatch changed a batch record"
    )
    assert len(eager.window_answers) == len(streamed.window_answers)
    for a, b in zip(eager.window_answers, streamed.window_answers):
        assert pickle.dumps(a) == pickle.dumps(b), (
            "streaming dispatch changed a windowed answer"
        )
    assert eager.executor_fallbacks == 0
    assert streamed.executor_fallbacks == 0


def bench_streaming_dispatch(
    *,
    rate: float = 40_000.0,
    num_batches: int = 5,
    num_keys: int = 8_000,
    exponent: float = 1.1,
    num_blocks: int = 8,
    vocab_size: int = 5_000,
    workers: int | None = 1,
    seed: int = 13,
    repeats: int = 3,
    ingest_kernel: str | None = "numpy",
) -> list[dict[str, Any]]:
    """One row per dispatch mode, plus the wall ratio on the streamed row.

    Each mode runs ``repeats`` times and keeps the fastest wall (the
    engine's answer is deterministic, so repeats only de-noise the
    clock).  Raises ``AssertionError`` if the modes disagree on the
    windowed answers, the batch records, or a batch fell back to the
    serial path.
    """
    walls: dict[bool, float] = {}
    runs: dict[bool, RunResult] = {}
    for streaming in (False, True):
        best = float("inf")
        for _ in range(repeats):
            wall, result = _timed_run(
                streaming,
                workers=workers,
                rate=rate,
                num_batches=num_batches,
                num_keys=num_keys,
                exponent=exponent,
                num_blocks=num_blocks,
                vocab_size=vocab_size,
                seed=seed,
                ingest_kernel=ingest_kernel,
            )
            best = min(best, wall)
            runs[streaming] = result
        walls[streaming] = best

    _assert_identical(runs[False], runs[True])

    rows: list[dict[str, Any]] = []
    for streaming in (False, True):
        result = runs[streaming]
        rows.append(
            {
                "Mode": "streaming" if streaming else "eager",
                "CpuCount": os.cpu_count() or 1,
                "Workers": workers,
                "Tuples": result.stats.total_tuples,
                "Batches": num_batches,
                "WallSeconds": walls[streaming],
                "WallRatioVsEager": walls[streaming] / walls[False],
                "PlanSeconds": sum(
                    r.plan_elapsed for r in result.stats.records
                ),
                "BufferSeconds": sum(
                    r.buffer_elapsed for r in result.stats.records
                ),
                "OutputsIdentical": True,
            }
        )
    return rows


def streaming_gate(rows: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """CI verdict over the two mode rows.

    Intra-batch overlap needs a core the Map workers are not using: on
    multi-core hosts the streamed wall must come in at
    ``<= STREAMING_WALL_RATIO x`` the eager wall; a single-core box
    cannot overlap anything, so it only checks the streamed path is not
    pathologically more expensive (``SINGLE_CORE_RATIO_CEILING``).
    Output identity is asserted inside the bench either way.
    """
    streamed = next(r for r in rows if r["Mode"] == "streaming")
    ratio = float(streamed["WallRatioVsEager"])
    multi_core = int(streamed["CpuCount"]) >= 2
    bound = STREAMING_WALL_RATIO if multi_core else SINGLE_CORE_RATIO_CEILING
    return {
        "WallRatioVsEager": ratio,
        "CpuCount": streamed["CpuCount"],
        "MultiCore": multi_core,
        "RatioBound": bound,
        "GatePassed": ratio <= bound,
    }
