"""The frozen v1 public surface: ``repro.__all__`` vs ``docs/api.md``.

Three-way agreement, so the surface cannot drift silently:

1. the literal ``V1_SURFACE`` list below (the freeze itself — changing
   the public API means editing this test, which is the point),
2. ``repro.__all__`` as shipped,
3. the symbol table under "The frozen v1 surface" in ``docs/api.md``.

Everything deeper than ``import repro`` (``repro.engine.*``,
``repro.core.*``, ...) stays importable but carries no stability
promise, so it is deliberately not covered here.  The v0 compatibility
contract (loose engine kwargs on ``repro.run``) is covered by
``tests/test_api_v1.py``.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

DOCS = Path(__file__).resolve().parent.parent / "docs"

#: The curated v1 surface, frozen.  v1 is a strict superset of v0 —
#: every v0 name is still here — plus the topology tier (RunSpec,
#: Topology shapes, sharding).  Additions are allowed (append here and
#: to the docs table); removals or renames are a breaking change and
#: need a deprecation story first.
V1_SURFACE = [
    "AccumulatorConfig",
    "AutoScaler",
    "BatchInfo",
    "CountTree",
    "ElasticityConfig",
    "EngineConfig",
    "ExecutorKind",
    "MPIWeights",
    "MicroBatchAccumulator",
    "MicroBatchEngine",
    "MultiTenantSource",
    "ObservabilityConfig",
    "PartitionedBatch",
    "PromptBatchPartitioner",
    "PromptConfig",
    "Query",
    "Rebalance",
    "ReduceBucketAllocator",
    "RunObservability",
    "RunResult",
    "RunSpec",
    "ShardRouter",
    "Sharded",
    "ShardedEngine",
    "ShardedRunResult",
    "SingleEngine",
    "StreamTuple",
    "TenantStream",
    "Topology",
    "WindowSpec",
    "__version__",
    "evaluate_partition",
    "make_partitioner",
    "make_router",
    "run",
]

#: every name the v0 freeze shipped — v1 must keep all of them
V0_SURFACE = [
    "AccumulatorConfig",
    "AutoScaler",
    "BatchInfo",
    "CountTree",
    "ElasticityConfig",
    "EngineConfig",
    "ExecutorKind",
    "MPIWeights",
    "MicroBatchAccumulator",
    "MicroBatchEngine",
    "ObservabilityConfig",
    "PartitionedBatch",
    "PromptBatchPartitioner",
    "PromptConfig",
    "Query",
    "ReduceBucketAllocator",
    "RunObservability",
    "RunResult",
    "StreamTuple",
    "WindowSpec",
    "__version__",
    "evaluate_partition",
    "make_partitioner",
    "run",
]


def _documented_surface() -> list[str]:
    """Parse the symbol column of the api.md frozen-surface table."""
    text = (DOCS / "api.md").read_text(encoding="utf-8")
    match = re.search(
        r"^## The frozen v1 surface.*?$(.*?)(?=^## )",
        text,
        re.MULTILINE | re.DOTALL,
    )
    assert match, "docs/api.md lost its 'The frozen v1 surface' section"
    section = match.group(1)
    # Stop at the migration-notes subsection so prose backticks there
    # cannot leak into the parsed surface.
    section = section.split("### ")[0]
    symbols = re.findall(r"^\| `([A-Za-z_][A-Za-z0-9_]*)` \|", section, re.MULTILINE)
    assert symbols, "frozen-surface table has no parseable rows"
    return symbols


def test_all_matches_the_freeze():
    assert list(repro.__all__) == V1_SURFACE


def test_v1_is_a_superset_of_v0():
    assert set(V0_SURFACE) <= set(repro.__all__)


def test_all_is_sorted_and_duplicate_free():
    assert list(repro.__all__) == sorted(set(repro.__all__))


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_docs_table_matches_all():
    documented = _documented_surface()
    assert len(documented) == len(set(documented)), "duplicate doc rows"
    missing = set(repro.__all__) - set(documented)
    extra = set(documented) - set(repro.__all__)
    assert not missing, f"exported but undocumented in api.md: {sorted(missing)}"
    assert not extra, f"documented but not exported: {sorted(extra)}"


def test_run_signature_is_the_documented_one():
    import inspect

    params = inspect.signature(repro.run).parameters
    names = list(params)
    assert names[:2] == ["source", "query"]
    assert params["partitioner"].default == "prompt"
    assert "num_batches" in params
    # v1 keyword-only surface
    assert params["topology"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["engine"].kind is inspect.Parameter.KEYWORD_ONLY
    assert any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    ), "repro.run must keep accepting v0 loose engine kwargs"


def test_runspec_defaults_mirror_run_defaults():
    import inspect

    run_params = inspect.signature(repro.run).parameters
    spec_fields = {f.name: f for f in __import__("dataclasses").fields(repro.RunSpec)}
    assert run_params["partitioner"].default == "prompt"
    assert spec_fields["partitioner"].default == "prompt"
    assert run_params["num_batches"].default == spec_fields["num_batches"].default
