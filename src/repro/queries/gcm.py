"""Google Cluster Monitoring queries (Section 7.1).

GCM records describe task events of a Google data cluster; the key is
the job id and the value a ``(cpu, memory)`` resource-request pair.
"The GCM queries used are similar to the ones used in [25]"
(Katsipoulakis et al.), which aggregate requested resources per job
over sliding windows; we provide the two canonical forms: mean CPU per
job and total memory per job.
"""

from __future__ import annotations

from typing import Any

from ..core.tuples import Key
from .base import Query, SumAggregator, SumCountAggregator, WindowSpec

__all__ = ["gcm_avg_cpu_query", "gcm_total_memory_query"]


def _cpu(key: Key, value: Any) -> float:
    return value[0]


def _memory(key: Key, value: Any) -> float:
    return value[1]


def gcm_avg_cpu_query(window_length: float = 30.0) -> Query:
    """Mean requested CPU per job over the window."""
    return Query(
        name="gcm-avg-cpu",
        aggregator=SumCountAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=_cpu,
    )


def gcm_total_memory_query(window_length: float = 30.0) -> Query:
    """Total requested memory per job over the window."""
    return Query(
        name="gcm-total-mem",
        aggregator=SumAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=_memory,
    )
