"""Arrival processes: deterministic, integrable tuple-rate profiles.

The throughput experiments stress partitioners with *variable* rates —
"sinusoidal changes to the input data rate ... simulates variable
spikes in the workload" (Section 7.2) — and the elasticity experiment
ramps the rate up and down (Figure 12).  An arrival process maps
simulated time to an instantaneous rate and produces, for any interval,
the tuple count (the integral of the rate, with the fractional part
carried across calls so long runs lose nothing) and the tuple
timestamps (inverse-CDF placed, so tuples bunch where the rate peaks —
exactly what breaks time-based partitioning).
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "SinusoidalRate",
    "RampRate",
    "PiecewiseRate",
    "ScaledRate",
]


class ArrivalProcess(abc.ABC):
    """A deterministic time-varying arrival-rate profile."""

    #: sub-steps used for numeric integration / inverse-CDF placement
    _GRID = 64

    def __init__(self) -> None:
        if np is None:
            raise ModuleNotFoundError(
                "arrival processes need numpy for rate integration; "
                "install the 'fast' extra (numpy) to generate workloads"
            )
        self._carry = 0.0

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous arrival rate (tuples/second) at time ``t``."""

    def reset(self) -> None:
        """Forget the fractional-count carry (start of a fresh run)."""
        self._carry = 0.0

    # ------------------------------------------------------------------
    def mean_rate(self, t0: float, t1: float) -> float:
        """Average rate over ``[t0, t1)`` by numeric integration."""
        if t1 <= t0:
            return 0.0
        grid = np.linspace(t0, t1, self._GRID + 1)
        rates = np.array([self.rate(float(t)) for t in grid])
        return float(np.trapezoid(rates, grid) / (t1 - t0))

    def count_between(self, t0: float, t1: float) -> int:
        """Tuples arriving in ``[t0, t1)``; fractional remainder carries over."""
        expected = self.mean_rate(t0, t1) * (t1 - t0) + self._carry
        count = int(expected)
        self._carry = expected - count
        return max(0, count)

    def timestamps(self, t0: float, t1: float, count: int) -> np.ndarray:
        """``count`` timestamps in ``[t0, t1)`` spaced by the rate profile.

        Uses the inverse of the cumulative rate so that denser rate
        regions receive proportionally more tuples.  Timestamps are
        strictly within the interval and non-decreasing.
        """
        if count <= 0:
            return np.empty(0)
        if t1 <= t0:
            return np.full(count, t0)
        grid = np.linspace(t0, t1, self._GRID + 1)
        rates = np.clip([self.rate(float(t)) for t in grid], 0.0, None)
        cumulative = np.concatenate(
            ([0.0], np.cumsum((rates[1:] + rates[:-1]) / 2 * np.diff(grid)))
        )
        total = cumulative[-1]
        if total <= 0:
            # Degenerate: zero rate everywhere but a forced count — spread evenly.
            return t0 + (np.arange(count) + 0.5) * (t1 - t0) / count
        targets = (np.arange(count) + 0.5) / count * total
        ts = np.interp(targets, cumulative, grid)
        return np.clip(ts, t0, np.nextafter(t1, t0))


class ConstantRate(ArrivalProcess):
    """Fixed arrival rate."""

    def __init__(self, rate: float) -> None:
        super().__init__()
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rate = rate

    def rate(self, t: float) -> float:
        return self._rate


class SinusoidalRate(ArrivalProcess):
    """``mean + amplitude * sin(2*pi*t/period + phase)``, floored at 0."""

    def __init__(
        self,
        mean: float,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        super().__init__()
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        if amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.mean = mean
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def rate(self, t: float) -> float:
        value = self.mean + self.amplitude * math.sin(
            2 * math.pi * t / self.period + self.phase
        )
        return max(0.0, value)


class RampRate(ArrivalProcess):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``[t0, t1]``.

    Flat before and after the ramp — the workload shape of the
    elasticity experiment (Figure 12: grow, then shrink).
    """

    def __init__(
        self, start_rate: float, end_rate: float, t0: float, t1: float
    ) -> None:
        super().__init__()
        if start_rate < 0 or end_rate < 0:
            raise ValueError("rates must be >= 0")
        if t1 <= t0:
            raise ValueError("ramp needs t1 > t0")
        self.start_rate = start_rate
        self.end_rate = end_rate
        self.t0 = t0
        self.t1 = t1

    def rate(self, t: float) -> float:
        if t <= self.t0:
            return self.start_rate
        if t >= self.t1:
            return self.end_rate
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.start_rate + frac * (self.end_rate - self.start_rate)


class PiecewiseRate(ArrivalProcess):
    """Step function over ``[(t_start, rate), ...]`` breakpoints."""

    def __init__(self, steps: Sequence[tuple[float, float]]) -> None:
        super().__init__()
        if not steps:
            raise ValueError("steps must be non-empty")
        ordered = sorted(steps)
        if any(rate < 0 for _, rate in ordered):
            raise ValueError("rates must be >= 0")
        self.steps = ordered

    def rate(self, t: float) -> float:
        current = self.steps[0][1] if t >= self.steps[0][0] else 0.0
        for t_start, rate in self.steps:
            if t >= t_start:
                current = rate
            else:
                break
        return current


class ScaledRate(ArrivalProcess):
    """Another process's profile multiplied by a constant factor.

    The back-pressure throughput search scales a *shape* up and down
    while preserving its variability.
    """

    def __init__(self, base: ArrivalProcess, factor: float) -> None:
        super().__init__()
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        self.base = base
        self.factor = factor

    def rate(self, t: float) -> float:
        return self.base.rate(t) * self.factor
