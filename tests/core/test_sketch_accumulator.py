"""Sketch-backed accumulator: heavy-head ordering, conservation."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.sketch_accumulator import SketchMicroBatchAccumulator
from repro.core.tuples import StreamTuple

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


def _fill(acc, freqs, **kw):
    acc.start_interval(INFO)
    acc.accept_all(make_tuples(freqs, **kw))
    return acc.finalize()


def test_requires_open_interval():
    acc = SketchMicroBatchAccumulator()
    with pytest.raises(RuntimeError):
        acc.accept(StreamTuple(ts=0.0, key="a"))


def test_rejects_bad_capacity_and_interval():
    with pytest.raises(ValueError):
        SketchMicroBatchAccumulator(0)
    with pytest.raises(ValueError):
        SketchMicroBatchAccumulator().start_interval(BatchInfo(0, 1.0, 1.0))


def test_all_tuples_preserved():
    acc = SketchMicroBatchAccumulator(capacity=4)
    freqs = zipfish_freqs(30, 500)
    batch = _fill(acc, freqs, shuffle_seed=3)
    assert batch.tuple_count == sum(freqs.values())
    assert batch.key_count == 30
    assert {g.key for g in batch.key_groups} == set(freqs)
    for g in batch.key_groups:
        assert g.count == freqs[g.key]


def test_heavy_head_is_ordered():
    acc = SketchMicroBatchAccumulator(capacity=8)
    batch = _fill(acc, zipfish_freqs(40, 1000), shuffle_seed=5)
    head = batch.key_groups[:4]
    sizes = [g.size for g in head]
    assert sizes == sorted(sizes, reverse=True)
    assert head[0].key == "k0"  # the hottest key leads


def test_small_capacity_still_total():
    acc = SketchMicroBatchAccumulator(capacity=1)
    batch = _fill(acc, {"a": 5, "b": 3, "c": 1}, shuffle_seed=1)
    assert batch.tuple_count == 9
    assert batch.key_count == 3


def test_finalize_resets():
    acc = SketchMicroBatchAccumulator()
    _fill(acc, {"a": 3})
    with pytest.raises(RuntimeError):
        _ = acc.info
    batch = _fill(acc, {"b": 2})
    assert {g.key for g in batch.key_groups} == {"b"}


def test_tracked_counts_upper_bound_exact():
    acc = SketchMicroBatchAccumulator(capacity=4)
    freqs = zipfish_freqs(20, 400)
    batch = _fill(acc, freqs, shuffle_seed=9)
    for g in batch.key_groups:
        assert g.tracked_count >= 0
    # head estimates never undercount the true size
    for g in batch.key_groups[:2]:
        assert g.tracked_count >= g.count


def test_weight_tracked():
    acc = SketchMicroBatchAccumulator()
    acc.start_interval(INFO)
    acc.accept(StreamTuple(ts=0.0, key="a", weight=4))
    batch = acc.finalize()
    assert batch.total_weight == 4
