"""Cross-cutting run invariants: one call to audit a finished run.

``check_run_invariants`` asserts every structural property a correct
engine run must satisfy, independent of workload or technique:

- batch records are contiguous in index and time;
- per-record accounting is self-consistent
  (``latency = interval + queue_delay + processing``);
- the FIFO pipeline never overlaps executions or reorders batches;
- window answers exist iff outputs were tracked;
- every recovery matched the lost state (exactly-once);
- lateness counters reconcile with the processed volume.

Tests call it after every style of run; downstream users get a cheap
smoke-check for custom configurations.
"""

from __future__ import annotations

from .engine import RunResult

__all__ = ["InvariantViolation", "check_run_invariants"]


class InvariantViolation(AssertionError):
    """A structural property of the run does not hold."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def check_run_invariants(result: RunResult) -> None:
    """Raise :class:`InvariantViolation` on any inconsistency."""
    records = result.stats.records
    _require(bool(records) or not result.window_answers,
             "window answers without any batch records")

    prev = None
    for record in records:
        _require(record.heartbeat > record.t_start,
                 f"batch {record.index}: empty interval")
        _require(record.ready_at >= record.heartbeat - 1e-9,
                 f"batch {record.index}: ready before its heartbeat")
        _require(record.exec_start >= record.ready_at - 1e-9,
                 f"batch {record.index}: started before ready")
        _require(record.exec_finish >= record.exec_start,
                 f"batch {record.index}: finished before starting")
        expected_latency = (
            record.batch_interval + record.queue_delay + record.processing_time
        )
        _require(abs(record.latency - expected_latency) < 1e-6,
                 f"batch {record.index}: latency accounting broken")
        _require(record.tuple_count >= 0 and record.key_count >= 0,
                 f"batch {record.index}: negative volumes")
        _require(record.key_count <= max(record.tuple_count, 0) or record.tuple_count == 0,
                 f"batch {record.index}: more keys than tuples")
        _require(len(record.map_durations) == record.map_tasks,
                 f"batch {record.index}: map task count mismatch")
        _require(len(record.reduce_durations) == record.reduce_tasks,
                 f"batch {record.index}: reduce task count mismatch")
        _require(all(d >= 0 for d in record.map_durations + record.reduce_durations),
                 f"batch {record.index}: negative task duration")
        if prev is not None:
            _require(record.index == prev.index + 1,
                     f"batch indexes not contiguous at {record.index}")
            _require(abs(record.t_start - prev.heartbeat) < 1e-9,
                     f"batch {record.index}: timeline gap after {prev.index}")
            _require(record.exec_start >= prev.exec_finish - 1e-9,
                     f"batch {record.index}: overlapped execution (FIFO broken)")
        prev = record

    for event in result.recoveries:
        _require(event.matched_original,
                 f"batch {event.batch_index}: recovery diverged from lost state")

    if result.lateness is not None:
        monitor = result.lateness
        processed = result.stats.total_tuples
        admitted = monitor.on_time + monitor.late_accepted
        if monitor.config.drop_overdue:
            _require(processed == admitted,
                     "processed volume disagrees with lateness admissions")
        else:
            _require(processed == monitor.total,
                     "processed volume disagrees with lateness ledger")
