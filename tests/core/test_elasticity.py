"""Algorithm 4: zones, thresholds, trends, grace periods, bounds."""

from __future__ import annotations

import pytest

from repro.core.config import ElasticityConfig
from repro.core.elasticity import AutoScaler, Zone

CFG = ElasticityConfig(threshold=0.9, step=0.1, window=3, grace=2,
                       min_map_tasks=1, max_map_tasks=16,
                       min_reduce_tasks=1, max_reduce_tasks=16)


def _scaler(**kw):
    return AutoScaler(CFG, map_tasks=kw.pop("map_tasks", 4),
                      reduce_tasks=kw.pop("reduce_tasks", 4))


def test_zone_classification():
    s = _scaler()
    assert s.zone_for(0.5) is Zone.UNDER_UTILIZED
    assert s.zone_for(0.8) is Zone.UNDER_UTILIZED
    assert s.zone_for(0.85) is Zone.STABLE
    assert s.zone_for(0.9) is Zone.STABLE
    assert s.zone_for(0.95) is Zone.OVERLOADED
    assert s.zone_for(1.5) is Zone.OVERLOADED


def test_stable_zone_never_acts():
    s = _scaler()
    for _ in range(20):
        d = s.observe(0.85, 1.0, data_rate=100, key_count=10)
        assert not d.acted
    assert s.map_tasks == 4
    assert s.reduce_tasks == 4


def test_scale_out_requires_d_consecutive_overloads():
    s = _scaler()
    for i in range(CFG.window - 1):
        d = s.observe(1.2, 1.0, data_rate=100 + i, key_count=10)
        assert not d.acted
    # an intervening stable batch resets the count
    s.observe(0.85, 1.0, data_rate=100, key_count=10)
    for i in range(CFG.window - 1):
        d = s.observe(1.2, 1.0, data_rate=200 + i, key_count=10)
        assert not d.acted
    d = s.observe(1.2, 1.0, data_rate=300, key_count=10)
    assert d.acted
    assert d.map_delta == 1


def test_rate_trend_adds_mappers_only():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(1.2, 1.0, data_rate=100 * (i + 1), key_count=10)
    assert d.map_delta == 1
    assert d.reduce_delta == 0


def test_key_trend_adds_reducers_only():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(1.2, 1.0, data_rate=100, key_count=10 * (i + 1))
    assert d.map_delta == 0
    assert d.reduce_delta == 1


def test_both_trends_add_both():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(1.2, 1.0, data_rate=100 * (i + 1), key_count=10 * (i + 1))
    assert d.map_delta == 1
    assert d.reduce_delta == 1


def test_no_trend_still_scales_maps_in_zone3():
    s = _scaler()
    for _ in range(CFG.window):
        d = s.observe(1.5, 1.0, data_rate=100, key_count=10)
    assert d.map_delta == 1


def test_grace_period_suppresses_further_actions():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(1.2, 1.0, data_rate=100 * (i + 1), key_count=10)
    assert d.acted
    for _ in range(CFG.grace):
        d = s.observe(1.2, 1.0, data_rate=1000, key_count=10)
        assert not d.acted
        assert d.reason == "grace period"


def test_scale_in_on_underutilization():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(0.3, 1.0, data_rate=100 - 10 * i, key_count=10)
    assert d.acted
    assert d.map_delta == -1
    assert s.map_tasks == 3


def test_scale_in_reduces_reducers_on_key_drop():
    s = _scaler()
    for i in range(CFG.window):
        d = s.observe(0.3, 1.0, data_rate=100, key_count=100 - 10 * i)
    assert d.reduce_delta == -1


def test_bounds_are_respected():
    cfg = ElasticityConfig(window=1, grace=0, max_map_tasks=4, max_reduce_tasks=4)
    s = AutoScaler(cfg, map_tasks=4, reduce_tasks=4)
    d = s.observe(1.5, 1.0, data_rate=1e6, key_count=1)
    assert s.map_tasks == 4  # already at max
    assert not d.acted
    assert d.reason == "at parallelism bounds"


def test_min_bounds_respected():
    cfg = ElasticityConfig(window=1, grace=0)
    s = AutoScaler(cfg, map_tasks=1, reduce_tasks=1)
    d = s.observe(0.1, 1.0, data_rate=1, key_count=1)
    assert s.map_tasks == 1
    assert s.reduce_tasks == 1


def test_initial_tasks_outside_bounds_rejected():
    with pytest.raises(ValueError):
        AutoScaler(CFG, map_tasks=0, reduce_tasks=4)
    with pytest.raises(ValueError):
        AutoScaler(CFG, map_tasks=4, reduce_tasks=99)


def test_observe_rejects_bad_interval():
    with pytest.raises(ValueError):
        _scaler().observe(1.0, 0.0, data_rate=1, key_count=1)


def test_decision_records_load_and_counts():
    s = _scaler()
    d = s.observe(0.45, 1.0, data_rate=10, key_count=2)
    assert d.load == pytest.approx(0.45)
    assert d.map_tasks == 4
    assert d.zone is Zone.UNDER_UTILIZED


def test_tracks_workload_through_full_ramp():
    """Scaling out repeatedly follows a sustained rate ramp."""
    cfg = ElasticityConfig(threshold=0.9, step=0.3, window=2, grace=1,
                           max_map_tasks=32, max_reduce_tasks=32)
    s = AutoScaler(cfg, map_tasks=2, reduce_tasks=2)
    rate = 100.0
    for batch in range(30):
        rate *= 1.1
        # load inversely proportional to parallelism
        load = rate / (120.0 * s.map_tasks)
        s.observe(load, 1.0, data_rate=rate, key_count=50)
    assert s.map_tasks >= 6  # grew substantially with the workload
