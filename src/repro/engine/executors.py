"""Pluggable execution backends for the Map -> shuffle -> Reduce pipeline.

The engine used to run every task inline; this module makes the task
dispatch a strategy so the load-balanced blocks that Algorithm 2
equalizes are actually *processed concurrently* — the operating regime
the paper's Eqn. 1 (makespan = longest Map + longest Reduce task)
assumes.  Two backends ship:

- :class:`SerialExecutor` — the extracted in-process reference loop.
- :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` running one Map
  task per data block and one Reduce task per bucket concurrently.

**Determinism contract.**  Both backends must produce *bit-identical*
:class:`~repro.engine.tasks.BatchExecution` payloads for the same batch
(the differential test suite enforces this):

- results merge in stable block/bucket-id order, never completion order;
- every task carries a seed derived from
  ``(run_seed, batch_index, kind, task_id)`` via
  :func:`~repro.engine.tasks.derive_task_seed`, so any stochastic
  operator a query may introduce behaves identically under either
  backend;
- the shuffle runs on the driver from Map results ordered by block id,
  so per-bucket partial lists have one canonical order.

**Task-level fault tolerance.**  Section 8's exactly-once story —
recompute lost work from replicated input — is applied at task
granularity, the way Spark Streaming re-executes a failed task from
lineage.  The parallel backend keeps every task's pickled payload on
the driver (the "replicated input" of one task), so any attempt can be
re-run deterministically:

- **Retries** — an attempt that fails with a
  :class:`~repro.engine.faults.TransientTaskError` (or ``OSError``) is
  resubmitted, up to ``max_task_retries`` times per task.  The retry
  reuses the *same payload* and therefore the same derived seed:
  retried runs remain bit-identical to clean runs.
- **Pool resurrection** — after a ``BrokenProcessPool`` the pool is
  rebuilt and only the still-unfinished tasks are resubmitted; results
  already gathered are kept.  Up to ``max_pool_resurrections`` rebuilds
  per task wave; past the budget, the batch degrades to the serial
  fallback — and the *next* batch tries a fresh pool again instead of
  pinning the rest of the run to serial.
- **Straggler speculation** — with a ``task_timeout``, a task whose
  attempt has been outstanding past the deadline trips a counter; with
  ``speculative=True`` a duplicate attempt of the slowest outstanding
  task is launched and whichever copy finishes first wins.  Both copies
  compute the same bytes (same payload, same seed), so the race is
  benign by construction.

Counters for all of this (attempts, retries, resurrections,
speculative wins, timeout trips) surface per batch on
:class:`~repro.engine.tasks.BatchExecution` and per run on the executor
itself; the engine folds them into ``BatchRecord``/``RunStats`` as
``compare=False`` fields so differential equality is unaffected.
Injected faults for testing come from
:class:`~repro.engine.faults.TaskFaultInjector`.

**Fallback.**  Pool *infrastructure* failures degrade gracefully to
in-process execution for the affected batch — serial semantics are the
reference, so the answer is unchanged; the event is counted on
``fallbacks``/noted on ``last_fallback_reason``.  Classification is by
raise-site: payloads are pickled in the driver, so serialization
failures are caught there and wrapped in
:class:`PayloadSerializationError`; an exception raised *by* a task in
a worker (a query bug — even one whose message mentions "pickle")
propagates unchanged, because masking it behind the serial fallback
would hide a real defect.

Only real wall-clock differs between backends: each task measures its
body with ``perf_counter`` and the per-batch totals feed
:mod:`repro.engine.stats`, which is how the speedup microbenchmark
(``BENCH_parallel_speedup.json``) tracks what parallelism buys.
"""

from __future__ import annotations

import abc
import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.batch import PartitionedBatch
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer, WorkerSpan
from ..partitioners.base import Partitioner
from ..queries.base import Query
from .faults import TaskFault, TaskFaultInjector, TransientTaskError
from .tasks import (
    BatchExecution,
    BucketInput,
    MapTaskResult,
    ReduceTaskResult,
    TaskCostModel,
    derive_task_seed,
    execute_batch_tasks,
    run_map_task,
    run_reduce_task,
    shuffle_map_results,
)
from .topology import Topology

log = logging.getLogger(__name__)

__all__ = [
    "ExecutionBackend",
    "SerialExecutor",
    "ParallelExecutor",
    "PayloadSerializationError",
    "EXECUTOR_NAMES",
    "make_executor",
]

#: exception types a task attempt may fail with and still be retried —
#: explicitly-transient errors plus OS-level flakiness; anything else is
#: an application bug and propagates
RETRYABLE_TASK_ERRORS: tuple[type[BaseException], ...] = (
    TransientTaskError,
    OSError,
)


class PayloadSerializationError(RuntimeError):
    """A task payload could not be pickled on the driver.

    Raised *before* anything is submitted to the pool, which is what
    makes the infrastructure-vs-application classification a raise-site
    question: serialization problems are caught here in the driver,
    so any ``TypeError``/``AttributeError`` coming back from a worker is
    the query's own and must propagate.
    """


class ExecutionBackend(abc.ABC):
    """Strategy interface: how one batch's tasks are dispatched."""

    #: registry identifier ("serial", "parallel")
    name: str = "base"

    def __init__(self, *, run_seed: int = 0) -> None:
        self.run_seed = run_seed
        #: observability sinks, bound by the engine per run; the no-op
        #: defaults make every publish/emit free when nothing is wired
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = NULL_METRICS
        #: batches that degraded to in-process execution
        self.fallbacks = 0
        self.last_fallback_reason: Optional[str] = None
        #: run-level fault-tolerance counters (only the parallel backend
        #: ever advances them, but every backend exposes them)
        self.task_attempts = 0
        self.task_retries = 0
        self.pool_resurrections = 0
        self.speculative_wins = 0
        self.timeout_trips = 0

    @abc.abstractmethod
    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        """Execute one batch's Map -> shuffle -> Reduce computation."""

    def bind_observability(
        self, tracer: Tracer, metrics: MetricsRegistry
    ) -> None:
        """Attach the run's tracer and metrics registry (engine calls)."""
        self.tracer = tracer
        self.metrics = metrics

    def close(self) -> None:
        """Release any resources (worker pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ExecutionBackend):
    """In-process execution — the reference semantics of the engine."""

    name = "serial"

    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
            tracer=self.tracer,
        )


def _map_task_worker(payload: bytes, attempt: int = 0) -> MapTaskResult:
    """Worker entry point for one Map task attempt.

    Payloads arrive pre-pickled by the driver (see
    :meth:`ParallelExecutor.run_batch` for why) and are unpacked here.
    An injected :class:`~repro.engine.faults.TaskFault` fires before the
    task body, gated on the attempt number.  With ``trace`` set, the
    attempt's wall-clock is measured here — in the process that actually
    runs it — and rides back on the result for the driver to stitch.
    """
    (
        fault,
        trace,
        block,
        query,
        allocate,
        num_reducers,
        split_keys,
        cost_model,
        task_seed,
    ) = pickle.loads(payload)
    started = time.time() if trace else 0.0
    if fault is not None:
        fault.apply(attempt)
    result = run_map_task(
        block, query, allocate, num_reducers, split_keys, cost_model, task_seed
    )
    if trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


def _reduce_task_worker(payload: bytes, attempt: int = 0) -> ReduceTaskResult:
    """Worker entry point for one Reduce task attempt (payload pre-pickled)."""
    fault, trace, bucket, aggregator, cost_model, task_seed = pickle.loads(payload)
    started = time.time() if trace else 0.0
    if fault is not None:
        fault.apply(attempt)
    result = run_reduce_task(bucket, aggregator, cost_model, task_seed)
    if trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


def _is_infrastructure_error(exc: BaseException) -> bool:
    """Pool/serialization failures that warrant the serial fallback.

    Classification is by raise-site, not message text.  Payloads are
    pickled driver-side and wrapped in :class:`PayloadSerializationError`
    on failure; ``pickle.PicklingError`` additionally covers a worker
    failing to pickle a task's *result* on the way back.  A worker-raised
    ``TypeError``/``AttributeError`` — even one whose message mentions
    "pickle" — is the query's own bug and always propagates.
    """
    return isinstance(
        exc, (BrokenProcessPool, PayloadSerializationError, pickle.PicklingError)
    )


def _is_retryable_error(exc: BaseException) -> bool:
    """Whether a failed task attempt may be re-executed from its payload."""
    return isinstance(exc, RETRYABLE_TASK_ERRORS)


@dataclass(slots=True)
class _WaveCounters:
    """Per-batch fault-tolerance tallies, filled by the task waves."""

    attempts: int = 0
    retries: int = 0
    resurrections: int = 0
    speculative_wins: int = 0
    timeout_trips: int = 0


class ParallelExecutor(ExecutionBackend):
    """Process-pool execution: one Map task per block, one Reduce per bucket.

    The pool is created lazily on the first batch and reused for the
    whole run (fork start method where the platform offers it, so
    workers inherit the loaded modules instead of re-importing).  Task
    payloads carry only what the task needs — the data block or bucket,
    the query, a *stateless* allocation callable
    (:meth:`~repro.partitioners.base.Partitioner.reduce_allocation`),
    the cost model, and an optional injected fault — never the engine
    or partitioner state.  Payloads double as the task's replicated
    input: any attempt can be re-run from them deterministically (see
    the module docstring for the retry/resurrection/speculation rules).
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        run_seed: int = 0,
        fallback_to_serial: bool = True,
        mp_context: multiprocessing.context.BaseContext | None = None,
        max_task_retries: int = 2,
        task_timeout: float | None = None,
        speculative: bool = False,
        max_pool_resurrections: int = 2,
        fault_injector: TaskFaultInjector | None = None,
    ) -> None:
        super().__init__(run_seed=run_seed)
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if max_pool_resurrections < 0:
            raise ValueError(
                f"max_pool_resurrections must be >= 0, got {max_pool_resurrections}"
            )
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.fallback_to_serial = fallback_to_serial
        self.max_task_retries = max_task_retries
        self.task_timeout = task_timeout
        self.speculative = speculative
        self.max_pool_resurrections = max_pool_resurrections
        self.fault_injector = fault_injector
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = self._mp_context
            if ctx is None:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _serial_fallback(
        self,
        reason: BaseException,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None,
    ) -> BatchExecution:
        self.fallbacks += 1
        self.last_fallback_reason = f"{type(reason).__name__}: {reason}"
        log.warning(
            "batch %s degraded to serial execution: %s",
            batch.info.index, self.last_fallback_reason,
        )
        self.metrics.counter(
            "prompt_executor_fallbacks_total",
            "Batches the parallel backend degraded to serial execution",
        ).inc()
        self.tracer.event(
            "executor_fallback",
            batch=batch.info.index,
            reason=type(reason).__name__,
        )
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
            tracer=self.tracer,
        )

    def _pickle_payloads(self, items: Sequence[tuple]) -> list[bytes]:
        # Payloads are pickled *here*, in the driver, and shipped as
        # bytes.  Letting the pool's queue-feeder thread pickle them
        # instead would surface unpicklable payloads asynchronously
        # and leave the pool wedged (its shutdown can deadlock after
        # a feeder crash); pickling up front makes the failure
        # synchronous, classifiable by raise-site, and pool-preserving.
        try:
            return [pickle.dumps(item) for item in items]
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise PayloadSerializationError(
                f"task payload is not picklable — {type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _run_tasks(
        self,
        worker: Callable[[bytes, int], object],
        payloads: Sequence[bytes],
        counters: _WaveCounters,
        kind: str = "task",
        batch_index: int = -1,
    ) -> list:
        """Run one wave of tasks with retries/resurrection/speculation.

        Results come back indexed by submission position (= task id),
        which is what keeps the downstream merge deterministic no matter
        how attempts raced, failed, or were duplicated.  When tracing is
        on, each winning attempt's worker-side span is stitched into the
        driver trace (in task-id order, so the span tree is independent
        of completion races) and retries/timeouts/speculative launches
        are marked with zero-duration events.
        """
        n = len(payloads)
        results: list = [None] * n
        done = [False] * n
        attempts = [0] * n  # launches so far == next attempt index
        failures = [0] * n  # failed attempts charged against the retry budget
        outstanding = [0] * n  # live futures per task
        deadlines = [float("inf")] * n
        pending: dict[Future, tuple[int, bool]] = {}
        to_submit: list[tuple[int, bool]] = [(tid, False) for tid in range(n)]
        remaining = n
        resurrections_left = self.max_pool_resurrections
        won_attempt = [0] * n  # attempt number of the winning copy
        won_speculative = [False] * n
        pending_attempt: dict[Future, int] = {}

        def record_success(tid: int, future: Future, speculative: bool) -> None:
            nonlocal remaining
            results[tid] = future.result()
            done[tid] = True
            remaining -= 1
            won_attempt[tid] = pending_attempt.get(future, attempts[tid] - 1)
            won_speculative[tid] = speculative
            if speculative:
                counters.speculative_wins += 1
                self.speculative_wins += 1
                log.info(
                    "speculative copy won: batch=%s kind=%s task=%s",
                    batch_index, kind, tid,
                )

        def salvage_and_rebuild(broken: BrokenProcessPool) -> None:
            # The pool died; every outstanding future is void.  Keep
            # results that completed but were not yet observed, drop the
            # corpse, and (within the resurrection budget) queue a fresh
            # attempt for *only* the still-unfinished tasks.
            nonlocal outstanding, resurrections_left
            for future, (tid, speculative) in list(pending.items()):
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                    and not done[tid]
                ):
                    record_success(tid, future, speculative)
            pending.clear()
            outstanding = [0] * n
            self.close()
            if not remaining:
                to_submit.clear()
                return
            if resurrections_left <= 0:
                raise broken
            resurrections_left -= 1
            counters.resurrections += 1
            self.pool_resurrections += 1
            log.warning(
                "process pool broke (batch=%s kind=%s); resurrecting, "
                "%d unfinished task(s), %d rebuild(s) left",
                batch_index, kind, remaining, resurrections_left,
            )
            self.tracer.event(
                "pool_resurrection", batch=batch_index, kind=kind,
                unfinished=remaining,
            )
            to_submit[:] = [(tid, False) for tid in range(n) if not done[tid]]

        def launch_queued() -> None:
            # A worker can die while the driver is still submitting, in
            # which case ``pool.submit`` itself raises BrokenProcessPool
            # synchronously — the same failure as a broken future, so it
            # takes the same resurrection path instead of escaping the
            # wave (which would needlessly degrade the batch to serial).
            while to_submit:
                tid, speculative = to_submit[0]
                if done[tid]:
                    to_submit.pop(0)
                    continue
                try:
                    future = self._ensure_pool().submit(
                        worker, payloads[tid], attempts[tid]
                    )
                except BrokenProcessPool as exc:
                    salvage_and_rebuild(exc)  # refills/clears the queue
                    continue
                pending_attempt[future] = attempts[tid]
                attempts[tid] += 1
                outstanding[tid] += 1
                counters.attempts += 1
                self.task_attempts += 1
                pending[future] = (tid, speculative)
                if self.task_timeout is not None:
                    deadlines[tid] = time.monotonic() + self.task_timeout
                to_submit.pop(0)

        while remaining:
            launch_queued()
            if not remaining:
                break
            timeout = None
            if self.task_timeout is not None:
                horizon = min(deadlines[t] for t in range(n) if not done[t])
                timeout = max(0.0, horizon - time.monotonic())
            finished, _ = wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not finished:
                # A straggler deadline passed with nothing completing.
                now = time.monotonic()
                for tid in range(n):
                    if done[tid] or now < deadlines[tid]:
                        continue
                    counters.timeout_trips += 1
                    self.timeout_trips += 1
                    log.warning(
                        "task deadline tripped: batch=%s kind=%s task=%s "
                        "(outstanding %.3fs past %.3fs timeout)",
                        batch_index, kind, tid,
                        now - (deadlines[tid] - (self.task_timeout or 0.0)),
                        self.task_timeout or 0.0,
                    )
                    self.tracer.event(
                        "task_timeout", batch=batch_index, kind=kind, task_id=tid
                    )
                    deadlines[tid] = now + (self.task_timeout or 0.0)
                    if self.speculative and outstanding[tid] < 2:
                        # Duplicate the straggler: same payload, same
                        # seed — either copy's result is byte-identical.
                        self.tracer.event(
                            "task_speculate",
                            batch=batch_index, kind=kind, task_id=tid,
                        )
                        to_submit.append((tid, True))
                continue
            broken: BrokenProcessPool | None = None
            errors: list[tuple[int, BaseException]] = []
            for future in finished:
                tid, speculative = pending.pop(future)
                outstanding[tid] -= 1
                exc = future.exception()
                if exc is None:
                    if not done[tid]:  # a sibling copy may have won already
                        record_success(tid, future, speculative)
                elif isinstance(exc, BrokenProcessPool):
                    broken = exc
                elif not done[tid]:
                    errors.append((tid, exc))
            if broken is not None:
                salvage_and_rebuild(broken)
                continue
            for tid, exc in errors:
                if done[tid]:
                    continue
                failures[tid] += 1
                if not _is_retryable_error(exc) or failures[tid] > self.max_task_retries:
                    log.error(
                        "task failed permanently: batch=%s kind=%s task=%s "
                        "after %d failure(s): %s: %s",
                        batch_index, kind, tid, failures[tid],
                        type(exc).__name__, exc,
                    )
                    raise exc
                counters.retries += 1
                self.task_retries += 1
                log.warning(
                    "retrying task: batch=%s kind=%s task=%s "
                    "(failure %d/%d: %s)",
                    batch_index, kind, tid, failures[tid],
                    self.max_task_retries, type(exc).__name__,
                )
                self.tracer.event(
                    "task_retry",
                    batch=batch_index, kind=kind, task_id=tid,
                    failure=failures[tid], error=type(exc).__name__,
                )
                to_submit.append((tid, False))
        if self.tracer.enabled:
            # Stitch the winning attempts' worker-side spans in task-id
            # order — deterministic regardless of completion races.
            for tid, result in enumerate(results):
                span = getattr(result, "span", None)
                if span is None:
                    continue
                self.tracer.record(
                    f"{kind}_task",
                    span.start,
                    span.end,
                    pid=span.pid,
                    task_id=tid,
                    batch=batch_index,
                    attempt=won_attempt[tid],
                    retries=failures[tid],
                    speculative=won_speculative[tid],
                )
        return results

    # ------------------------------------------------------------------
    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        allocate = partitioner.reduce_allocation()
        split = set(batch.split_keys)
        batch_index = batch.info.index
        injector = self.fault_injector

        def fault_for(kind: str, task_id: int) -> TaskFault | None:
            if injector is None:
                return None
            return injector.fault_for(batch_index, kind, task_id)

        counters = _WaveCounters()
        trace = self.tracer.enabled
        try:
            map_payloads = self._pickle_payloads(
                [
                    (
                        fault_for("map", block.index),
                        trace,
                        block,
                        query,
                        allocate,
                        num_reducers,
                        {k for k in split if k in block},
                        cost_model,
                        derive_task_seed(self.run_seed, batch_index, "map", block.index),
                    )
                    for block in batch.blocks
                ]
            )
            map_results: list[MapTaskResult] = self._run_tasks(
                _map_task_worker, map_payloads, counters, "map", batch_index
            )
            with self.tracer.span("shuffle", batch=batch_index):
                buckets: list[BucketInput] = shuffle_map_results(
                    map_results, num_reducers, topology
                )
            reduce_payloads = self._pickle_payloads(
                [
                    (
                        fault_for("reduce", bucket.bucket_index),
                        trace,
                        bucket,
                        query.aggregator,
                        cost_model,
                        derive_task_seed(
                            self.run_seed, batch_index, "reduce", bucket.bucket_index
                        ),
                    )
                    for bucket in buckets
                ]
            )
            reduce_results: list[ReduceTaskResult] = self._run_tasks(
                _reduce_task_worker, reduce_payloads, counters, "reduce", batch_index
            )
        except BaseException as exc:
            if isinstance(exc, BrokenProcessPool):
                # Drop the corpse; the *next* batch rebuilds a fresh pool
                # lazily instead of pinning the rest of the run to serial.
                self.close()
            if self.fallback_to_serial and _is_infrastructure_error(exc):
                return self._serial_fallback(
                    exc, batch, query, partitioner, num_reducers, cost_model, topology
                )
            raise
        return BatchExecution(
            map_results=map_results,
            reduce_results=reduce_results,
            backend=self.name,
            task_attempts=counters.attempts,
            task_retries=counters.retries,
            pool_resurrections=counters.resurrections,
            speculative_wins=counters.speculative_wins,
            timeout_trips=counters.timeout_trips,
        )


EXECUTOR_NAMES: tuple[str, ...] = ("serial", "parallel")


def make_executor(
    name: str,
    *,
    max_workers: int | None = None,
    run_seed: int = 0,
    fallback_to_serial: bool = True,
    max_task_retries: int = 2,
    task_timeout: float | None = None,
    speculative: bool = False,
    max_pool_resurrections: int = 2,
    fault_injector: TaskFaultInjector | None = None,
) -> ExecutionBackend:
    """Build an execution backend by registry name.

    The fault-tolerance knobs (retries, timeout, speculation,
    resurrection budget, injector) only apply to the parallel backend;
    the serial reference executes tasks inline where there is nothing to
    retry, time out, or resurrect.
    """
    if name == "serial":
        return SerialExecutor(run_seed=run_seed)
    if name == "parallel":
        return ParallelExecutor(
            max_workers,
            run_seed=run_seed,
            fallback_to_serial=fallback_to_serial,
            max_task_retries=max_task_retries,
            task_timeout=task_timeout,
            speculative=speculative,
            max_pool_resurrections=max_pool_resurrections,
            fault_injector=fault_injector,
        )
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )
