"""Delayed delivery: a source wrapper that reorders tuples in transit.

Real streams violate perfect timestamp order: network and broker hops
delay some tuples so they are *ingested* after later-stamped ones.  The
paper assumes the delay is bounded (Section 2.1); this wrapper produces
exactly such a stream from any base source — each tuple's ingestion
time is its source timestamp plus a random delay, truncated-exponential
up to ``max_delay`` for a configurable fraction of tuples — so the
lateness contract (:mod:`repro.engine.lateness`) can be exercised.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.tuples import StreamTuple
from .source import StreamSource

__all__ = ["DelayedSource"]


class DelayedSource(StreamSource):
    """Deliver a base source's tuples by (timestamp + random delay)."""

    def __init__(
        self,
        base: StreamSource,
        *,
        max_delay: float,
        delayed_fraction: float = 0.1,
        mean_delay: float | None = None,
        seed: int = 0,
    ) -> None:
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if not 0.0 <= delayed_fraction <= 1.0:
            raise ValueError("delayed_fraction must be in [0, 1]")
        self.base = base
        self.name = f"{base.name}+delay"
        self.max_delay = max_delay
        self.delayed_fraction = delayed_fraction
        self.mean_delay = mean_delay if mean_delay is not None else max_delay / 3
        self.seed = seed
        self._rng = np.random.default_rng(seed + 0xDE1A)
        # tuples already fetched from base but not yet delivered
        self._pending: list[tuple[float, int, StreamTuple]] = []
        self._seq = 0
        self._fetched_through = 0.0

    def reset(self) -> None:
        self.base.reset()
        self._rng = np.random.default_rng(self.seed + 0xDE1A)
        self._pending = []
        self._seq = 0
        self._fetched_through = 0.0

    def _delay_for(self, count: int) -> np.ndarray:
        delays = np.zeros(count)
        if self.max_delay > 0 and self.delayed_fraction > 0:
            mask = self._rng.random(count) < self.delayed_fraction
            raw = self._rng.exponential(self.mean_delay, size=count)
            delays[mask] = np.minimum(raw[mask], self.max_delay)
        return delays

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        """Tuples whose *ingestion* time falls in [t0, t1).

        Ingestion order is returned (sorted by ingestion time); the
        tuples keep their original source timestamps, so a consumer can
        observe the disorder.
        """
        # Fetch base tuples stamped up to t1 (anything later cannot be
        # ingested before t1 since delays are non-negative).
        if t1 > self._fetched_through:
            fresh = self.base.tuples_between(self._fetched_through, t1)
            delays = self._delay_for(len(fresh))
            for t, d in zip(fresh, delays):
                heapq.heappush(self._pending, (t.ts + float(d), self._seq, t))
                self._seq += 1
            self._fetched_through = t1
        out: list[StreamTuple] = []
        while self._pending and self._pending[0][0] < t1:
            ingestion, _, t = heapq.heappop(self._pending)
            if ingestion >= t0:
                out.append(t)
            else:
                # Should not happen when intervals advance contiguously.
                out.append(t)
        return out
