"""Run-invariant auditing across engine configurations."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import ElasticityConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import FailureInjector
from repro.engine.invariants import InvariantViolation, check_run_invariants
from repro.engine.lateness import LatenessConfig
from repro.engine.tasks import TaskCostModel
from repro.extensions.batch_sizing import BatchSizingConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, DelayedSource, synd_source


def _run(technique="prompt", batches=6, rate=1_200.0, injector=None, **cfg):
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=3,
        num_reducers=3,
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        **cfg,
    )
    engine = MicroBatchEngine(
        make_partitioner(technique),
        wordcount_query(window_length=1.0),
        config,
        failure_injector=injector,
    )
    source = synd_source(0.8, num_keys=200, arrival=ConstantRate(rate), seed=6)
    return engine.run(source, batches)


@pytest.mark.parametrize("technique", ["time", "hash", "prompt", "prompt-sketch"])
def test_plain_runs_satisfy_invariants(technique):
    check_run_invariants(_run(technique))


def test_overloaded_run_satisfies_invariants():
    check_run_invariants(
        _run(cost_model=TaskCostModel(map_per_tuple=3e-3), track_outputs=False)
    )


def test_elastic_run_satisfies_invariants():
    check_run_invariants(
        _run(
            elasticity=ElasticityConfig(
                threshold=0.9, step=0.3, window=1, grace=0,
                max_map_tasks=8, max_reduce_tasks=8,
            ),
            cost_model=TaskCostModel(map_per_tuple=1e-3),
            track_outputs=False,
        )
    )


def test_batch_sized_run_satisfies_invariants():
    check_run_invariants(
        _run(
            batch_sizing=BatchSizingConfig(
                target_ratio=0.8, min_interval=0.25, max_interval=4.0
            ),
            cost_model=TaskCostModel(map_fixed=0.2, map_per_tuple=4e-4),
            track_outputs=False,
        )
    )


def test_faulty_run_satisfies_invariants():
    check_run_invariants(
        _run(injector=FailureInjector([1, 3]), replicate_inputs=True)
    )


def test_late_run_satisfies_invariants():
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=3,
        num_reducers=3,
        lateness=LatenessConfig(max_delay=0.1),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), config)
    base = synd_source(0.8, num_keys=200, arrival=ConstantRate(1_000.0), seed=7)
    source = DelayedSource(base, max_delay=0.3, delayed_fraction=0.3, seed=7)
    result = engine.run(source, 6)
    check_run_invariants(result)


def test_detects_broken_latency_accounting():
    result = _run(batches=3, track_outputs=False)
    record = result.stats.records[1]
    broken = dataclasses.replace(record, processing_time=record.processing_time + 1.0)
    result.stats.records[1] = broken
    with pytest.raises(InvariantViolation, match="latency accounting"):
        check_run_invariants(result)


def test_detects_timeline_gap():
    result = _run(batches=3, track_outputs=False)
    record = result.stats.records[2]
    # shift the whole record in time so only the cross-record gap check trips
    result.stats.records[2] = dataclasses.replace(
        record,
        t_start=record.t_start + 0.1,
        heartbeat=record.heartbeat + 0.1,
        ready_at=record.ready_at + 0.1,
        exec_start=record.exec_start + 0.1,
        exec_finish=record.exec_finish + 0.1,
    )
    with pytest.raises(InvariantViolation, match="timeline gap"):
        check_run_invariants(result)


def test_detects_noncontiguous_indexes():
    result = _run(batches=3, track_outputs=False)
    del result.stats.records[1]
    with pytest.raises(InvariantViolation, match="not contiguous"):
        check_run_invariants(result)
