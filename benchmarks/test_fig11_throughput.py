"""Figure 11: maximum sustainable throughput before back-pressure.

(a-c) sinusoidal input rate at batch intervals 1/2/3 s; (d) constant
rate across Zipf exponents at interval 3 s.  Paper shapes: every
technique gains with longer intervals; time-based is worst under the
variable rate; Prompt sustains the highest rate everywhere, with the
margin over hashing growing sharply with skew.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_TECHNIQUES,
    fig11_throughput_vs_interval,
    fig11d_skew_sweep,
    format_table,
)

# Costs scaled x2: stability boundaries land near 10k tuples/s, keeping
# each probe cheap while preserving every relative ordering.
COST_SCALE = 2.0


def test_fig11abc_throughput_vs_interval(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: fig11_throughput_vs_interval(
            intervals=(1.0, 2.0, 3.0),
            num_batches=3,
            num_keys=10_000,
            tolerance=0.12,
            initial_rate=6_000.0,
            cost_scale=COST_SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "fig11abc_throughput",
        format_table(
            rows,
            columns=["BatchInterval", "Technique", "MaxThroughput", "Probes"],
            title="Figure 11a-c: max throughput (sinusoidal rate, SynD z=1.4)",
        ),
        rows,
        store=dict(workload="synd-z1.4", backend="serial"),
    )

    def rate(interval, tech):
        return next(
            r["MaxThroughput"]
            for r in rows
            if r["BatchInterval"] == interval and r["Technique"] == tech
        )

    for interval in (1.0, 2.0, 3.0):
        rates = {t: rate(interval, t) for t in PAPER_TECHNIQUES}
        # Prompt wins (or ties within search tolerance).
        assert rates["prompt"] >= 0.95 * max(rates.values())
        # Hashing suffers under this skew.
        assert rates["prompt"] > 1.2 * rates["hash"]
    # Longer intervals amortize fixed costs: prompt@3s > prompt@1s.
    assert rate(3.0, "prompt") >= rate(1.0, "prompt")


def test_fig11d_throughput_vs_skew(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: fig11d_skew_sweep(
            exponents=(0.2, 0.6, 1.0, 1.4, 1.8, 2.0),
            batch_interval=3.0,
            num_batches=3,
            num_keys=10_000,
            tolerance=0.12,
            initial_rate=6_000.0,
            cost_scale=COST_SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "fig11d_skew",
        format_table(
            rows,
            columns=["Zipf_z", "Technique", "MaxThroughput", "Probes"],
            title="Figure 11d: max throughput vs Zipf exponent (interval 3 s)",
        ),
        rows,
        store=dict(workload="synd", backend="serial"),
    )

    def rate(z, tech):
        return next(
            r["MaxThroughput"]
            for r in rows
            if r["Zipf_z"] == z and r["Technique"] == tech
        )

    # Prompt holds the top spot at every exponent.
    for z in (0.2, 0.6, 1.0, 1.4, 1.8, 2.0):
        rates = {t: rate(z, t) for t in PAPER_TECHNIQUES}
        assert rates["prompt"] >= 0.93 * max(rates.values()), f"z={z}"
    # The margin over hashing explodes with skew (paper: 2x-5x).
    assert rate(1.8, "prompt") > 2.0 * rate(1.8, "hash")
    # Under strong skew prompt also stays ahead of the shuffle family
    # (within the search's ~12% resolution).
    assert rate(1.8, "prompt") >= rate(1.8, "shuffle")
    assert rate(1.8, "prompt") >= 1.2 * rate(1.8, "pk5")
