"""Differential harness: ``ingest_kernel="numpy"`` is bit-identical end-to-end.

The kernel property suite (tests/core) proves the partitioner-level
contract; this harness closes the loop at the engine level: a full
windowed run configured with ``EngineConfig(ingest_kernel="numpy")``
must produce byte-identical windowed answers and equal batch records
to the same seeded run on the pure-Python path — across workload
skews, the weighted-tuple path, and the ``prompt-exact`` ablation.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.partitioners import make_partitioner
from repro.partitioners.prompt import PromptPartitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source, tweets_source

pytest.importorskip("numpy")

NUM_BATCHES = 5

WORKLOADS = {
    "synd-mild": lambda: synd_source(
        0.6, num_keys=400, arrival=ConstantRate(1_200.0), seed=5
    ),
    "synd-skewed": lambda: synd_source(
        1.6, num_keys=400, arrival=ConstantRate(1_200.0), seed=7
    ),
    "tweets": lambda: tweets_source(rate=1_000.0, seed=42),
}


def _run(workload, ingest_kernel, *, exact_updates=False):
    cfg = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        run_seed=13,
        ingest_kernel=ingest_kernel,
    )
    if exact_updates:
        partitioner = PromptPartitioner(exact_updates=True)
    else:
        partitioner = make_partitioner("prompt")
    engine = MicroBatchEngine(
        partitioner, wordcount_query(window_length=3.0), cfg
    )
    return engine.run(WORKLOADS[workload](), NUM_BATCHES)


def _assert_equivalent(python_run, numpy_run):
    # per-window pickles, same rationale as the executor harness: the
    # object-sharing graph across windows may differ without any
    # content difference, so windows are compared one at a time.
    assert len(python_run.window_answers) == len(numpy_run.window_answers)
    for p_window, n_window in zip(
        python_run.window_answers, numpy_run.window_answers
    ):
        assert pickle.dumps(p_window) == pickle.dumps(n_window)
    assert python_run.stats.records == numpy_run.stats.records
    assert python_run.stable == numpy_run.stable
    assert len(python_run.state_store) == len(numpy_run.state_store)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_numpy_kernel_matches_python_end_to_end(workload):
    _assert_equivalent(_run(workload, "python"), _run(workload, "numpy"))


def test_numpy_kernel_matches_python_exact_updates():
    _assert_equivalent(
        _run("synd-skewed", "python", exact_updates=True),
        _run("synd-skewed", "numpy", exact_updates=True),
    )


def test_engine_config_rejects_unknown_kernel():
    with pytest.raises(ValueError, match="ingest_kernel"):
        EngineConfig(batch_interval=1.0, num_blocks=4, ingest_kernel="fortran")
