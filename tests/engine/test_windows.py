"""Windowed aggregation with inverse-Reduce retraction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.windows import WindowedAggregator
from repro.queries.base import CountAggregator, SumAggregator, SumCountAggregator


def test_window_of_one_batch():
    win = WindowedAggregator(SumAggregator(), 1)
    assert win.add_batch({"a": 3}) == {"a": 3}
    assert win.add_batch({"b": 2}) == {"b": 2}  # previous batch retracted
    assert len(win) == 1


def test_sliding_merge_and_retract():
    win = WindowedAggregator(SumAggregator(), 2)
    assert win.add_batch({"a": 1}) == {"a": 1}
    assert win.add_batch({"a": 2, "b": 5}) == {"a": 3, "b": 5}
    assert win.add_batch({"a": 4}) == {"a": 6, "b": 5}
    assert win.add_batch({}) == {"a": 4}


def test_zero_accumulators_removed_from_answer():
    win = WindowedAggregator(CountAggregator(), 2)
    win.add_batch({"a": 1})
    win.add_batch({"b": 1})
    answer = win.add_batch({"b": 1})  # "a" retracted to zero -> dropped
    assert "a" not in answer
    assert answer == {"b": 2}


def test_cancelled_accumulators_reappear_after_partial_expiry():
    """+3 and -3 cancel to sparse absence; expiring the +3 leaves -3."""
    win = WindowedAggregator(SumAggregator(), 2)
    win.add_batch({"a": 3})
    assert win.add_batch({"a": -3}) == {}
    assert win.add_batch({}) == {"a": -3}


def test_finalized_answer_applies_finalize():
    win = WindowedAggregator(SumCountAggregator(), 4)
    win.add_batch({"job": (10.0, 2)})
    win.add_batch({"job": (20.0, 3)})
    assert win.answer()["job"] == (30.0, 5)
    assert win.finalized_answer()["job"] == pytest.approx(6.0)


def test_rejects_bad_window_size():
    with pytest.raises(ValueError):
        WindowedAggregator(SumAggregator(), 0)


def test_window_matches_naive_recomputation():
    win = WindowedAggregator(SumAggregator(), 3)
    batches = [
        {"a": 1, "b": 2},
        {"a": 5},
        {"c": 7},
        {"a": 2, "c": 1},
        {"b": 9},
        {},
        {"a": 1},
    ]
    for i, batch in enumerate(batches):
        got = win.add_batch(batch)
        window = batches[max(0, i - 2) : i + 1]
        naive: dict = {}
        for b in window:
            for k, v in b.items():
                naive[k] = naive.get(k, 0) + v
        naive = {k: v for k, v in naive.items() if v != 0}
        assert got == naive, f"mismatch at batch {i}"


@given(
    batches=st.lists(
        st.dictionaries(st.integers(0, 8), st.integers(-5, 5), max_size=6),
        min_size=1,
        max_size=25,
    ),
    window=st.integers(1, 5),
)
@settings(max_examples=80, deadline=None)
def test_property_incremental_equals_naive(batches, window):
    """Inverse-Reduce maintenance == recomputing the window from scratch."""
    win = WindowedAggregator(SumAggregator(), window)
    for i, batch in enumerate(batches):
        got = win.add_batch(batch)
        naive: dict = {}
        for b in batches[max(0, i - window + 1) : i + 1]:
            for k, v in b.items():
                naive[k] = naive.get(k, 0) + v
        naive = {k: v for k, v in naive.items() if v != 0}
        assert got == naive
