"""Replay source: serve a fixed, pre-built tuple list as a stream.

Useful for tests, for replaying captured traces, and for feeding the
engine hand-crafted corner cases.  Tuples must be sorted by timestamp
(validated); ``tuples_between`` slices by timestamp with binary search,
so repeated interval queries are cheap even for long recordings.
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..core.tuples import StreamTuple
from .source import StreamSource

__all__ = ["ReplaySource"]


class ReplaySource(StreamSource):
    """A finite, timestamp-indexed recording served as a stream."""

    name = "replay"

    def __init__(self, tuples: Sequence[StreamTuple], *, loop_every: float | None = None) -> None:
        """``loop_every`` > 0 repeats the recording with that period
        (timestamps shifted by whole periods), turning a finite trace
        into an infinite stream."""
        self._tuples = list(tuples)
        ts = [t.ts for t in self._tuples]
        if ts != sorted(ts):
            raise ValueError("replay tuples must be sorted by timestamp")
        if loop_every is not None:
            if loop_every <= 0:
                raise ValueError(f"loop_every must be positive, got {loop_every}")
            if self._tuples and self._tuples[-1].ts >= loop_every:
                raise ValueError(
                    "recording spans past loop_every; timestamps must fit one period"
                )
        self.loop_every = loop_every
        self._ts = ts

    def __len__(self) -> int:
        return len(self._tuples)

    def reset(self) -> None:
        """Stateless: nothing to rewind."""

    def _slice(self, t0: float, t1: float, shift: float) -> list[StreamTuple]:
        lo = bisect.bisect_left(self._ts, t0 - shift)
        hi = bisect.bisect_left(self._ts, t1 - shift)
        if shift == 0.0:
            return self._tuples[lo:hi]
        return [
            StreamTuple(ts=t.ts + shift, key=t.key, value=t.value, weight=t.weight)
            for t in self._tuples[lo:hi]
        ]

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        if t1 <= t0:
            return []
        if self.loop_every is None:
            return self._slice(t0, t1, 0.0)
        period = self.loop_every
        out: list[StreamTuple] = []
        first = int(t0 // period)
        last = int((t1 - 1e-12) // period)
        for cycle in range(first, last + 1):
            shift = cycle * period
            out.extend(self._slice(max(t0, shift), min(t1, shift + period), shift))
        return out
