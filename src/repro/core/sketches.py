"""Approximate frequency sketches: Space-Saving and Lossy Counting.

Prompt's accumulator (Algorithm 1) keeps *exact* per-key statistics in
the HTable — affordable because micro-batches bound the state to one
interval.  The tuple-at-a-time systems Prompt is compared against
cannot do that: Gedik's partitioning for System S relies on *lossy
counting*, and the key-splitting family detects heavy hitters with
*Space-Saving*-style summaries (Section 9).  These reference
implementations serve three purposes:

- an alternative accumulator statistic for extreme-cardinality streams
  (millions of keys per batch) where even one HTable node per key is
  too much;
- the substrate for the sketch-vs-exact ablation
  (`benchmarks/test_ablations_sketch.py`);
- canonical, well-tested building blocks a downstream user would expect
  from a streaming library.

Both sketches expose the same minimal interface: ``add(key)``,
``estimate(key)``, ``heavy_hitters(threshold)``, ``items()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator

from .tuples import Key, _order_token

__all__ = ["SpaceSavingSketch", "LossyCountingSketch"]


@dataclass(slots=True)
class _Counter:
    key: Key
    count: int
    error: int  # maximum overestimation of ``count``


class SpaceSavingSketch:
    """Metwally et al.'s Space-Saving: top-k frequencies in fixed space.

    Maintains at most ``capacity`` counters.  A new key evicts the
    current minimum counter and inherits its count as error bound,
    guaranteeing ``estimate(k) - true(k) <= min_count <= N / capacity``.

    Complexity note: hits are O(1); an eviction scans the counters for
    the minimum, O(capacity) (the classical stream-summary structure
    makes this O(1); the dict-scan variant keeps the code simple and is
    plenty for micro-batch-sized streams).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counters: dict[Key, _Counter] = {}
        self._total = 0

    def __len__(self) -> int:
        return len(self._counters)

    @property
    def total(self) -> int:
        """Number of additions observed."""
        return self._total

    def add(self, key: Key, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._total += count
        counter = self._counters.get(key)
        if counter is not None:
            counter.count += count
            return
        if len(self._counters) < self.capacity:
            self._counters[key] = _Counter(key=key, count=count, error=0)
            return
        # Evict the minimum counter; the newcomer inherits its count.
        victim = min(
            self._counters.values(), key=lambda c: (c.count, _order_token(c.key))
        )
        del self._counters[victim.key]
        self._counters[key] = _Counter(
            key=key, count=victim.count + count, error=victim.count
        )

    def estimate(self, key: Key) -> int:
        """Upper-bound frequency estimate (0 if never counted)."""
        counter = self._counters.get(key)
        return counter.count if counter is not None else 0

    def guaranteed(self, key: Key) -> int:
        """Lower-bound (guaranteed) frequency: count minus error."""
        counter = self._counters.get(key)
        return counter.count - counter.error if counter is not None else 0

    def error_bound(self) -> int:
        """Maximum possible overestimation for any tracked key."""
        if len(self._counters) < self.capacity:
            return 0
        return min(c.count for c in self._counters.values())

    def heavy_hitters(self, threshold: float) -> list[tuple[Key, int]]:
        """Keys *guaranteed* to exceed ``threshold`` fraction of the total."""
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        cut = threshold * self._total
        out = [
            (c.key, c.count)
            for c in self._counters.values()
            if c.count - c.error > cut
        ]
        out.sort(key=lambda kv: (-kv[1], _order_token(kv[0])))
        return out

    def items(self) -> Iterator[tuple[Key, int]]:
        """Tracked (key, estimate) pairs, descending by estimate."""
        ordered = sorted(
            self._counters.values(), key=lambda c: (-c.count, _order_token(c.key))
        )
        return iter([(c.key, c.count) for c in ordered])

    def clear(self) -> None:
        self._counters.clear()
        self._total = 0


class LossyCountingSketch:
    """Manku & Motwani's Lossy Counting: frequency tracking with decay.

    The stream is processed in buckets of width ``ceil(1/epsilon)``; at
    each bucket boundary, counters whose count + error falls below the
    current bucket id are dropped.  Guarantees: every key with true
    frequency >= epsilon*N is retained, and estimates undercount by at
    most epsilon*N.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.bucket_width = math.ceil(1.0 / epsilon)
        self._counts: dict[Key, int] = {}
        self._errors: dict[Key, int] = {}
        self._total = 0
        self._bucket = 1

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def total(self) -> int:
        return self._total

    def add(self, key: Key, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        for _ in range(count):
            self._add_one(key)

    def _add_one(self, key: Key) -> None:
        self._total += 1
        if key in self._counts:
            self._counts[key] += 1
        else:
            self._counts[key] = 1
            self._errors[key] = self._bucket - 1
        if self._total % self.bucket_width == 0:
            self._prune()
            self._bucket += 1

    def _prune(self) -> None:
        victims = [
            k
            for k, c in self._counts.items()
            if c + self._errors[k] <= self._bucket
        ]
        for k in victims:
            del self._counts[k]
            del self._errors[k]

    def estimate(self, key: Key) -> int:
        """Lower-bound frequency estimate (undercounts by <= eps*N)."""
        return self._counts.get(key, 0)

    def heavy_hitters(self, threshold: float) -> list[tuple[Key, int]]:
        """Keys whose true frequency may exceed ``threshold`` of the total.

        Complete (no false negatives) for thresholds >= epsilon.
        """
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if threshold < self.epsilon:
            # cut would go non-positive and every tracked key would be
            # returned — the documented guarantee only holds from epsilon up
            raise ValueError(
                f"threshold must be >= epsilon ({self.epsilon}), got {threshold}"
            )
        cut = (threshold - self.epsilon) * self._total
        out = [(k, c) for k, c in self._counts.items() if c >= cut]
        out.sort(key=lambda kv: (-kv[1], _order_token(kv[0])))
        return out

    def items(self) -> Iterator[tuple[Key, int]]:
        ordered = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], _order_token(kv[0]))
        )
        return iter(ordered)

    def clear(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self._total = 0
        self._bucket = 1
