"""Shared benchmark plumbing.

Every bench regenerates one table or figure from the paper's Section 7,
prints the rows (run pytest with ``-s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``), and persists JSON to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import save_results


@pytest.fixture
def record_experiment(capsys):
    """Return a helper that prints a rendered table and persists JSON."""

    def _record(name: str, table_text: str, payload) -> None:
        with capsys.disabled():
            print(f"\n{table_text}\n")
        save_results(name, payload)

    return _record
