"""Figure 6: B-BPFI assignment trade-offs on the Figure 5 batch.

FFD fills bins nearly completely (over-fragmenting, cardinality blind);
FragMin fragments minimally but concentrates large keys; Algorithm 2
balances all three objectives.
"""

from __future__ import annotations

from repro.bench import fig6_assignment_tradeoffs, format_table


def test_fig6_assignment_tradeoffs(benchmark, record_experiment):
    rows = benchmark.pedantic(fig6_assignment_tradeoffs, rounds=1, iterations=1)
    record_experiment(
        "fig6_assignment_tradeoffs",
        format_table(rows, title="Figure 6: assignment trade-offs (385 tuples, 8 keys, 4 blocks)"),
        rows,
        store=dict(workload="fig6-micro"),
    )
    by_name = {r["Strategy"]: r for r in rows}
    prompt = by_name["Prompt (Algorithm 2)"]
    # Prompt fragments no more keys than FFD and balances cardinality best.
    assert prompt["FragmentedKeys"] <= by_name["FirstFitDecreasing"]["FragmentedKeys"]
    spread = lambda r: max(r["BinCardinalities"]) - min(r["BinCardinalities"])
    assert spread(prompt) <= min(
        spread(by_name["FirstFitDecreasing"]),
        spread(by_name["FragmentationMinimization"]),
    )
