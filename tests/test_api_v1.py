"""The v1 run API: RunSpec builders, topologies, v0 kwargs compat.

``tests/test_public_api.py`` freezes *which* names exist; this suite
pins *how* they behave: the typed ``engine=``/``topology=`` paths, the
RunSpec builder semantics, and the v0 loose-kwargs shim (accepted,
equivalent, warns exactly once per process).
"""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.api
from repro.queries import wordcount_query
from repro.workloads import MultiTenantSource, TenantStream, synd_source

pytest.importorskip("numpy")


def _source(seed=7):
    return synd_source(1.2, num_keys=40, rate=400.0, seed=seed)


def _union():
    return MultiTenantSource(
        [TenantStream(f"t{i}", _source(seed=20 + i)) for i in range(3)]
    )


def _query():
    return wordcount_query(window_length=1.0)


@pytest.fixture
def fresh_deprecation_state():
    """Reset the warn-once latch so each test observes first-use behaviour."""
    saved = repro.api._v0_kwargs_warned
    repro.api._v0_kwargs_warned = False
    yield
    repro.api._v0_kwargs_warned = saved


# ----------------------------------------------------------------------
# v1 typed paths
def test_run_with_typed_engine_config():
    result = repro.run(
        _source(),
        _query(),
        num_batches=3,
        engine=repro.EngineConfig(batch_interval=0.5, num_blocks=2),
    )
    assert isinstance(result, repro.RunResult)
    assert len(result.stats.records) == 3


def test_run_with_sharded_topology():
    result = repro.run(
        _union(),
        _query(),
        num_batches=3,
        topology=repro.Sharded(shards=2),
        engine=repro.EngineConfig(batch_interval=0.5, num_blocks=2),
    )
    assert isinstance(result, repro.ShardedRunResult)
    assert result.num_shards == 2
    assert len(result.window_answers) == 3


def test_default_topology_is_single_engine():
    spec = repro.RunSpec(_source(), _query())
    assert isinstance(spec.topology, repro.SingleEngine)
    assert isinstance(spec.topology, repro.Topology)


def test_runspec_builders_return_updated_copies():
    spec = repro.RunSpec(_source(), _query())
    tuned = (
        spec.with_engine(num_blocks=8)
        .with_partitioner("hash")
        .with_batches(5)
        .with_topology(repro.Sharded(shards=3, router="key-range"))
    )
    # the original is untouched (frozen spec, copy-on-write builders)
    assert spec.engine.num_blocks != 8 or spec.partitioner == "prompt"
    assert spec.num_batches == 10
    assert tuned.engine.num_blocks == 8
    assert tuned.partitioner == "hash"
    assert tuned.num_batches == 5
    assert tuned.topology.shards == 3
    assert tuned.topology.router == "key-range"


def test_runspec_run_dispatches_on_topology():
    engine = repro.EngineConfig(batch_interval=0.5, num_blocks=2)
    single = repro.RunSpec(
        _source(), _query(), num_batches=2, engine=engine
    ).run()
    sharded = repro.RunSpec(
        _union(),
        _query(),
        num_batches=2,
        engine=engine,
        topology=repro.Sharded(shards=2, router="consistent-hash"),
    ).run()
    assert isinstance(single, repro.RunResult)
    assert isinstance(sharded, repro.ShardedRunResult)
    assert sharded.router_name == "consistent-hash"


def test_runspec_validates_inputs():
    with pytest.raises(ValueError, match="num_batches"):
        repro.RunSpec(_source(), _query(), num_batches=0)
    with pytest.raises(TypeError, match="topology"):
        repro.RunSpec(_source(), _query(), topology="sharded")
    with pytest.raises(ValueError, match="shards"):
        repro.Sharded(shards=0)


# ----------------------------------------------------------------------
# v0 compatibility shim
def test_v0_kwargs_still_work_and_warn_once(fresh_deprecation_state):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = repro.run(
            _source(), _query(), num_batches=2, batch_interval=0.5, num_blocks=2
        )
    assert isinstance(result, repro.RunResult)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "engine=repro.EngineConfig" in str(deprecations[0].message)

    # second call: same behaviour, no second warning
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        repro.run(_source(), _query(), num_batches=2, batch_interval=0.5)
    assert not [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


def test_v0_kwargs_equal_typed_engine_config(fresh_deprecation_state):
    import pickle

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        loose = repro.run(
            _source(), _query(), num_batches=3, batch_interval=0.5, num_blocks=2
        )
    typed = repro.run(
        _source(),
        _query(),
        num_batches=3,
        engine=repro.EngineConfig(batch_interval=0.5, num_blocks=2),
    )
    assert pickle.dumps(loose.window_answers) == pickle.dumps(
        typed.window_answers
    )


def test_engine_and_loose_kwargs_are_mutually_exclusive():
    with pytest.raises(TypeError, match="not both"):
        repro.run(
            _source(),
            _query(),
            engine=repro.EngineConfig(),
            num_blocks=4,
        )


def test_unknown_kwarg_raises_like_engine_config_does(fresh_deprecation_state):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError):
            repro.run(_source(), _query(), definitely_not_a_field=1)
