"""Variance-driven key repartitioning (Fang et al., VLDB/ICDE line).

"Parallel Stream Processing Against Workload Skewness and Variance"
(Fang et al.) keeps an explicit key→worker routing table and *migrates*
keys between workers when observed load imbalance warrants it, charging
a migration cost for the key state that must move.  Unlike the
key-splitting family, a key lives on exactly one worker at a time —
KSR stays 1 by construction — so all balancing power comes from
*placement*, revised between batches:

- every batch is partitioned by the current routing table (new keys are
  hashed), i.e. the plan derived from past batches is applied to the
  next one — the causality a real DSPS must respect;
- after the batch is placed, per-key rates are folded into an EWMA and
  the expected per-worker loads recomputed; observed per-block load
  from the engine's :class:`~repro.partitioners.feedback.WorkerLoadFeedback`
  (when running inside the engine) is blended in, so estimation error
  in the model is corrected by ground truth from completed batches;
- while the hottest worker exceeds the mean by more than
  ``imbalance_tolerance``, the hottest migratable key is moved to the
  coolest worker — but only when the variance reduction
  ``2·r·(load_src − load_dst − r)`` exceeds the migration-cost term
  ``migration_cost · r · mean_load`` (state transfer is proportional to
  the key's rate, our proxy for its state size).  At most
  ``max_migrations`` keys move per batch boundary.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock, PartitionedBatch
from ..core.hashing import hash_to_bucket
from ..core.tuples import Key, StreamTuple
from .base import Partitioner
from .feedback import WorkerLoadFeedback

__all__ = ["FangRepartitioner"]

#: EWMA rates below this fraction of the per-key mean are dropped —
#: bounds the routing/rate tables under key churn.
_PRUNE_FRACTION = 0.01


class FangRepartitioner(Partitioner):
    """Holistic key→worker routing with cost-aware migration."""

    name = "fang"
    uses_feedback = True

    def __init__(
        self,
        *,
        ewma: float = 0.5,
        imbalance_tolerance: float = 0.1,
        migration_cost: float = 0.1,
        max_migrations: int = 16,
        feedback_weight: float = 0.5,
    ) -> None:
        if not 0.0 < ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {ewma}")
        if imbalance_tolerance < 0.0:
            raise ValueError("imbalance_tolerance must be >= 0")
        if migration_cost < 0.0:
            raise ValueError("migration_cost must be >= 0")
        if max_migrations < 0:
            raise ValueError("max_migrations must be >= 0")
        if not 0.0 <= feedback_weight <= 1.0:
            raise ValueError("feedback_weight must be in [0, 1]")
        self.ewma = ewma
        self.imbalance_tolerance = imbalance_tolerance
        self.migration_cost = migration_cost
        self.max_migrations = max_migrations
        self.feedback_weight = feedback_weight
        self._routing: dict[Key, int] = {}
        self._rates: dict[Key, float] = {}
        self._observed_relative: tuple[float, ...] = ()
        #: keys migrated over the partitioner's lifetime (reset() clears)
        self.migrations_total = 0

    def reset(self) -> None:
        self._routing.clear()
        self._rates.clear()
        self._observed_relative = ()
        self.migrations_total = 0

    # ------------------------------------------------------------------
    def observe_load(self, feedback: WorkerLoadFeedback) -> None:
        self._observed_relative = feedback.relative_block_loads()

    def partition(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PartitionedBatch:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        blocks = [DataBlock(i) for i in range(num_blocks)]
        routing = self._routing
        counts: dict[Key, float] = {}
        for t in tuples:
            target = routing.get(t.key)
            if target is None or target >= num_blocks:
                # unseen key (or stale route after a cluster resize)
                target = hash_to_bucket(t.key, num_blocks)
                routing[t.key] = target
            blocks[target].add_tuple(t)
            counts[t.key] = counts.get(t.key, 0.0) + t.weight
        batch = PartitionedBatch(info=info, blocks=blocks, partitioner_name=self.name)
        batch.compute_split_keys()  # single-homed keys: never any splits
        self._update_rates(counts)
        migrated = self._plan_migrations(num_blocks)
        if migrated:
            self.metrics.counter(
                "prompt_fang_migrations_total",
                "Keys migrated between workers by the Fang repartitioner",
                {"technique": self.name},
            ).inc(migrated)
        return batch

    # ------------------------------------------------------------------
    def _update_rates(self, counts: dict[Key, float]) -> None:
        """Fold this batch's per-key weights into the EWMA rate table."""
        alpha = self.ewma
        rates = self._rates
        for key in list(rates):
            observed = counts.pop(key, 0.0)
            rates[key] += alpha * (observed - rates[key])
        for key, observed in counts.items():
            rates[key] = alpha * observed
        if not rates:
            return
        # prune cold keys so churning vocabularies cannot grow the
        # tables without bound; a pruned key simply re-enters by hash
        floor = _PRUNE_FRACTION * (sum(rates.values()) / len(rates))
        for key in [k for k, r in rates.items() if r < floor]:
            del rates[key]
            self._routing.pop(key, None)

    def _expected_loads(self, num_blocks: int) -> list[float]:
        loads = [0.0] * num_blocks
        for key, rate in self._rates.items():
            target = self._routing.get(key)
            if target is not None and target < num_blocks:
                loads[target] += rate
        observed = self._observed_relative
        if len(observed) == num_blocks and sum(loads) > 0.0:
            # blend model estimate with observed ground truth, rescaled
            # to the model's total so units agree
            scale = sum(loads) / num_blocks
            w = self.feedback_weight
            loads = [
                (1.0 - w) * est + w * rel * scale
                for est, rel in zip(loads, observed)
            ]
        return loads

    def _plan_migrations(self, num_blocks: int) -> int:
        """Revise the routing table for the *next* batch.  Returns moves."""
        if num_blocks < 2 or not self._rates:
            return 0
        loads = self._expected_loads(num_blocks)
        members: list[list[Key]] = [[] for _ in range(num_blocks)]
        for key in self._rates:
            target = self._routing.get(key)
            if target is not None and target < num_blocks:
                members[target].append(key)
        mean = sum(loads) / num_blocks
        if mean <= 0.0:
            return 0
        rates = self._rates
        moved = 0
        for _ in range(self.max_migrations):
            src = max(range(num_blocks), key=lambda i: (loads[i], -i))
            dst = min(range(num_blocks), key=lambda i: (loads[i], i))
            if loads[src] - mean <= self.imbalance_tolerance * mean:
                break
            best: Key | None = None
            # hottest key whose move shrinks the gap and pays for its
            # migration (deterministic tie-break on the key's repr)
            for key in sorted(members[src], key=lambda k: (-rates[k], repr(k))):
                rate = rates[key]
                if rate <= 0.0 or loads[src] - rate < loads[dst]:
                    continue  # would overshoot past the coolest worker
                benefit = 2.0 * rate * (loads[src] - loads[dst] - rate)
                if benefit > self.migration_cost * rate * mean:
                    best = key
                    break
            if best is None:
                break
            self._routing[best] = dst
            members[src].remove(best)
            members[dst].append(best)
            loads[src] -= rates[best]
            loads[dst] += rates[best]
            moved += 1
        self.migrations_total += moved
        return moved
