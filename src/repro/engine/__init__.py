"""Simulated distributed micro-batch stream processing engine."""

from .backpressure import BackpressureConfig, BackpressureMonitor, run_is_stable
from .checkpoint import (
    CheckpointManager,
    WindowSnapshot,
    restore_window,
    snapshot_window,
)
from .cluster import Cluster, ClusterConfig, makespan
from .engine import EngineConfig, MicroBatchEngine, RunResult
from .executors import (
    EXECUTOR_NAMES,
    ExecutionBackend,
    ExecutorKind,
    ParallelExecutor,
    PayloadSerializationError,
    RunContext,
    SerialExecutor,
    StaleContextError,
    make_executor,
)
from .faults import (
    FailureInjector,
    InjectedTaskFault,
    RecoveryEvent,
    TaskFault,
    TaskFaultInjector,
    TransientTaskError,
    recover_batch,
)
from .invariants import InvariantViolation, check_run_invariants
from .lateness import LatenessConfig, LatenessMonitor
from .receiver import Receiver
from .scheduler import PipelineScheduler, ScheduledJob
from .simulation import Event, EventLoop, SimulationError
from .state import BatchState, StateStore
from .stats import BatchRecord, RunStats, percentile
from .tasks import (
    BatchExecution,
    BucketInput,
    MapTaskResult,
    ReduceTaskResult,
    TaskCostModel,
    derive_task_seed,
    execute_batch_tasks,
    execute_map_task,
    run_map_task,
    run_reduce_task,
    shuffle_map_results,
)
from .topology import Topology
from .windows import WindowedAggregator

__all__ = [
    "BackpressureConfig",
    "BackpressureMonitor",
    "BatchExecution",
    "BatchRecord",
    "BatchState",
    "BucketInput",
    "EXECUTOR_NAMES",
    "ExecutionBackend",
    "ExecutorKind",
    "ParallelExecutor",
    "RunContext",
    "SerialExecutor",
    "StaleContextError",
    "CheckpointManager",
    "Cluster",
    "ClusterConfig",
    "EngineConfig",
    "Event",
    "EventLoop",
    "FailureInjector",
    "InjectedTaskFault",
    "InvariantViolation",
    "LatenessConfig",
    "LatenessMonitor",
    "MapTaskResult",
    "MicroBatchEngine",
    "PayloadSerializationError",
    "PipelineScheduler",
    "Receiver",
    "RecoveryEvent",
    "ReduceTaskResult",
    "RunResult",
    "RunStats",
    "ScheduledJob",
    "SimulationError",
    "StateStore",
    "TaskCostModel",
    "TaskFault",
    "TaskFaultInjector",
    "Topology",
    "TransientTaskError",
    "WindowSnapshot",
    "WindowedAggregator",
    "check_run_invariants",
    "derive_task_seed",
    "execute_batch_tasks",
    "execute_map_task",
    "make_executor",
    "makespan",
    "run_map_task",
    "run_reduce_task",
    "shuffle_map_results",
    "percentile",
    "recover_batch",
    "restore_window",
    "run_is_stable",
    "snapshot_window",
]
