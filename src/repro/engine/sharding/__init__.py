"""Sharded multi-engine topology: one router, N engines, M tenants.

Four pieces:

- :mod:`~repro.engine.sharding.router` — deterministic tenant->shard
  routing (``hash`` / ``consistent-hash`` / ``key-range``) plus the
  rebalance-epoch :class:`RoutingTable`;
- :mod:`~repro.engine.sharding.driver` — :class:`ShardedEngine`, which
  runs N independent :class:`~repro.engine.engine.MicroBatchEngine`
  instances over per-shard views of a multi-tenant union stream;
- :mod:`~repro.engine.sharding.merge` — exact cross-shard window
  merging in canonical (tenant, key) order;
- :mod:`~repro.engine.sharding.faults` — shard-scoped fault profiles
  (kill one shard's pool, leave the rest untouched).

See ``docs/architecture.md`` ("Sharded multi-engine topology") for the
protocol and ``tests/engine/test_sharding_equivalence.py`` for the
differential proof.
"""

from .driver import ShardedEngine, ShardedRunResult, ShardSource
from .faults import crash_shard, kill_shard
from .merge import canonical_order, merge_window_answers, tenant_slice
from .router import (
    ROUTER_NAMES,
    ConsistentHashRouter,
    HashRouter,
    KeyRangeRouter,
    Rebalance,
    RoutingTable,
    ShardRouter,
    make_router,
)

__all__ = [
    "ROUTER_NAMES",
    "ConsistentHashRouter",
    "HashRouter",
    "KeyRangeRouter",
    "Rebalance",
    "RoutingTable",
    "ShardRouter",
    "ShardSource",
    "ShardedEngine",
    "ShardedRunResult",
    "canonical_order",
    "crash_shard",
    "kill_shard",
    "make_router",
    "merge_window_answers",
    "tenant_slice",
]
