"""Command-line interface: run experiments and demos without writing code.

Usage::

    python -m repro list                      # available experiments
    python -m repro run table1                # regenerate one artifact
    python -m repro run fig10 --dataset tpch
    python -m repro run fig11d --quick        # reduced-scale sweep
    python -m repro quickstart                # the quickstart demo

Each ``run`` prints the paper-style table and writes JSON next to the
benchmarks (``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Callable

from .bench import (
    bench_parallel_speedup,
    fig6_assignment_tradeoffs,
    fig10_partition_metrics,
    fig11_throughput_vs_interval,
    fig11d_skew_sweep,
    fig12_elasticity,
    fig13_latency_distribution,
    fig14a_post_sort_throughput,
    fig14b_partition_overhead,
    format_table,
    save_results,
    table1_dataset_stats,
)

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(args: argparse.Namespace) -> tuple[str, Any]:
    rows = table1_dataset_stats()
    return format_table(rows, title="Table 1: dataset properties"), rows


def _run_fig6(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig6_assignment_tradeoffs()
    return format_table(rows, title="Figure 6: assignment trade-offs"), rows


def _run_fig10(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig10_partition_metrics(args.dataset)
    return (
        format_table(rows, title=f"Figure 10 ({args.dataset}): partitioning metrics"),
        rows,
    )


def _run_fig11(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"cost_scale": 2.0}
    if args.quick:
        kwargs.update(
            intervals=(1.0,), num_batches=3, num_keys=5_000, tolerance=0.2
        )
    rows = fig11_throughput_vs_interval(**kwargs)
    return format_table(rows, title="Figure 11a-c: throughput vs batch interval"), rows


def _run_fig11d(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"cost_scale": 2.0}
    if args.quick:
        kwargs.update(
            exponents=(0.2, 1.0, 1.8),
            batch_interval=1.0,
            num_batches=3,
            num_keys=5_000,
            tolerance=0.2,
        )
    rows = fig11d_skew_sweep(**kwargs)
    return format_table(rows, title="Figure 11d: throughput vs Zipf exponent"), rows


def _run_fig12(args: argparse.Namespace) -> tuple[str, Any]:
    result = fig12_elasticity(direction=args.direction)
    text = format_table(
        result["series"], title=f"Figure 12 (scale-{args.direction}): task tracking"
    )
    return text, result


def _run_fig13(args: argparse.Namespace) -> tuple[str, Any]:
    out = fig13_latency_distribution()
    rows = [
        {
            "Technique": name,
            "MeanReduceTime": d["mean_reduce_time"],
            "MeanSpread": d["mean_spread"],
            "LatencyP95": d["latency_p95"],
        }
        for name, d in out["techniques"].items()
    ]
    return format_table(rows, title="Figure 13: reduce-time distribution"), rows


def _run_fig14a(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig14a_post_sort_throughput(cost_scale=2.0)
    return format_table(rows, title="Figure 14a: post-sort ablation"), rows


def _run_fig14b(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig14b_partition_overhead()
    return format_table(rows, title="Figure 14b: partitioning overhead"), rows


def _run_speedup(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"workers": args.workers}
    if args.quick:
        kwargs.update(rate=2_000.0, num_batches=3, num_keys=1_000)
    rows = bench_parallel_speedup(**kwargs)
    return (
        format_table(rows, title="Serial vs parallel backend wall-clock"),
        rows,
    )


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], tuple[str, Any]]]] = {
    "table1": ("Table 1 — dataset properties", _run_table1),
    "fig6": ("Figure 6 — B-BPFI assignment trade-offs", _run_fig6),
    "fig10": ("Figure 10 — BSI/BCI partitioning metrics", _run_fig10),
    "fig11": ("Figure 11a-c — throughput vs batch interval", _run_fig11),
    "fig11d": ("Figure 11d — throughput vs Zipf exponent", _run_fig11d),
    "fig12": ("Figure 12 — resource elasticity", _run_fig12),
    "fig13": ("Figure 13 — latency distribution", _run_fig13),
    "fig14a": ("Figure 14a — post-sort throughput", _run_fig14a),
    "fig14b": ("Figure 14b — partitioning overhead", _run_fig14b),
    "speedup": ("Serial vs parallel execution backend wall-clock", _run_speedup),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prompt (SIGMOD 2020) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment and print its table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--dataset",
        default="tweets",
        choices=["tweets", "tpch", "synd", "debs", "gcm"],
        help="dataset for fig10",
    )
    run.add_argument(
        "--direction", default="out", choices=["out", "in"], help="ramp for fig12"
    )
    run.add_argument(
        "--quick", action="store_true", help="reduced-scale run for fig11/fig11d"
    )
    run.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results JSON"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the speedup bench (default: auto)",
    )

    quick = sub.add_parser("quickstart", help="run the quickstart demo")
    quick.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "parallel"],
        help="execution backend for map/reduce tasks",
    )
    quick.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend (default: auto)",
    )
    quick.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="retry budget per task for transient failures (parallel backend)",
    )
    quick.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="straggler deadline in real seconds per task attempt",
    )
    quick.add_argument(
        "--speculate",
        action="store_true",
        help="duplicate stragglers past the deadline and race the copies "
        "(requires --task-timeout)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"{name:8s}  {description}")
        return 0
    if args.command == "quickstart":
        # Local import: examples are not part of the installed package.
        from repro import EngineConfig, MicroBatchEngine, make_partitioner
        from repro.queries import select_top_k, wordcount_query
        from repro.workloads import tweets_source

        engine = MicroBatchEngine(
            make_partitioner("prompt"),
            wordcount_query(window_length=10.0),
            EngineConfig(
                batch_interval=1.0,
                num_blocks=8,
                num_reducers=8,
                executor=args.backend,
                executor_workers=args.workers,
                max_task_retries=args.task_retries,
                task_timeout=args.task_timeout,
                speculative_execution=args.speculate,
            ),
        )
        result = engine.run(tweets_source(rate=5_000.0, seed=42), num_batches=12)
        print(f"backend: {result.backend_name}")
        if result.backend_name == "parallel":
            print(
                "fault tolerance: "
                f"{result.executor_task_attempts} attempts, "
                f"{result.executor_task_retries} retries, "
                f"{result.executor_pool_resurrections} pool resurrections, "
                f"{result.executor_speculative_wins} speculative wins, "
                f"{result.executor_timeout_trips} timeout trips, "
                f"{result.executor_fallbacks} serial fallbacks"
            )
        print(f"throughput: {result.stats.throughput():,.0f} tuples/s")
        print(f"mean latency: {result.stats.mean_latency():.3f}s")
        for word, count in select_top_k(result.final_window_answer(), 5):
            print(f"  {word:>8}  {count}")
        return 0

    _, runner = EXPERIMENTS[args.experiment]
    text, payload = runner(args)
    print(text)
    if not args.no_save:
        path = save_results(f"cli_{args.experiment}", payload)
        print(f"\nresults saved to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
