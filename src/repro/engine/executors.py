"""Pluggable execution backends for the Map -> shuffle -> Reduce pipeline.

The engine used to run every task inline; this module makes the task
dispatch a strategy so the load-balanced blocks that Algorithm 2
equalizes are actually *processed concurrently* — the operating regime
the paper's Eqn. 1 (makespan = longest Map + longest Reduce task)
assumes.  Two backends ship:

- :class:`SerialExecutor` — the extracted in-process reference loop.
- :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` running one Map
  task per data block and one Reduce task per bucket concurrently.

**Determinism contract.**  Both backends must produce *bit-identical*
:class:`~repro.engine.tasks.BatchExecution` payloads for the same batch
(the differential test suite enforces this):

- results merge in stable block/bucket-id order, never completion order;
- every task carries a seed derived from
  ``(run_seed, batch_index, kind, task_id)`` via
  :func:`~repro.engine.tasks.derive_task_seed`, so any stochastic
  operator a query may introduce behaves identically under either
  backend;
- the shuffle runs on the driver from Map results ordered by block id,
  so per-bucket partial lists have one canonical order.

**Worker-resident run context.**  The run-invariant slice of every
task — the query (and its aggregator), the reduce-allocation callable,
the cost model, the fault-injection table, the trace flag and the run
seed — is pickled *once* per pool generation into a :class:`RunContext`
and installed in every worker process by the pool initializer plus a
generation-stamped install task.  Per-task payloads then shrink to a
delta of ``(context_generation, batch_index, task_id, block-or-bucket,
…)``; the worker derives the task seed and looks up its injected fault
from the resident context.  A pool resurrected after a
``BrokenProcessPool`` re-installs the current context automatically
(the rebuilt pool's initializer carries it), and a worker handed a
delta stamped with a generation it never saw raises
:class:`StaleContextError` — classified as an infrastructure failure,
so the batch degrades to the serial fallback instead of computing from
the wrong context.  ``resident_context=False`` restores the legacy
full-payload-per-task dispatch (every task re-ships the whole slice);
both modes are byte-identical in what they compute and both account
driver→worker payload bytes.

**Task-level fault tolerance.**  Section 8's exactly-once story —
recompute lost work from replicated input — is applied at task
granularity, the way Spark Streaming re-executes a failed task from
lineage.  The parallel backend keeps every task's pickled payload on
the driver (the "replicated input" of one task), so any attempt can be
re-run deterministically:

- **Retries** — an attempt that fails with a
  :class:`~repro.engine.faults.TransientTaskError` (or ``OSError``) is
  resubmitted, up to ``max_task_retries`` times per task.  The retry
  reuses the *same payload* and therefore the same derived seed:
  retried runs remain bit-identical to clean runs.
- **Pool resurrection** — after a ``BrokenProcessPool`` the pool is
  rebuilt and only the still-unfinished tasks are resubmitted; results
  already gathered are kept.  Up to ``max_pool_resurrections`` rebuilds
  per task wave; past the budget, the batch degrades to the serial
  fallback — and the *next* batch tries a fresh pool again instead of
  pinning the rest of the run to serial.
- **Straggler speculation** — with a ``task_timeout``, a task whose
  attempt has been outstanding past the deadline trips a counter; with
  ``speculative=True`` a duplicate attempt of the slowest outstanding
  task is launched and whichever copy finishes first wins.  Both copies
  compute the same bytes (same payload, same seed), so the race is
  benign by construction.

Counters for all of this (attempts, retries, resurrections,
speculative wins, timeout trips) surface per batch on
:class:`~repro.engine.tasks.BatchExecution` and per run on the executor
itself; the engine folds them into ``BatchRecord``/``RunStats`` as
``compare=False`` fields so differential equality is unaffected.
Injected faults for testing come from
:class:`~repro.engine.faults.TaskFaultInjector`.

**Fallback.**  Pool *infrastructure* failures degrade gracefully to
in-process execution for the affected batch — serial semantics are the
reference, so the answer is unchanged; the event is counted on
``fallbacks``/noted on ``last_fallback_reason``.  Classification is by
raise-site: payloads are pickled in the driver, so serialization
failures are caught there and wrapped in
:class:`PayloadSerializationError`; an exception raised *by* a task in
a worker (a query bug — even one whose message mentions "pickle")
propagates unchanged, because masking it behind the serial fallback
would hide a real defect.

Only real wall-clock differs between backends: each task measures its
body with ``perf_counter`` and the per-batch totals feed
:mod:`repro.engine.stats`, which is how the speedup microbenchmark
(``BENCH_parallel_speedup.json``) tracks what parallelism buys.
"""

from __future__ import annotations

import abc
import enum
import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from ..core.batch import PartitionedBatch
from ..core.plan_stream import PlanStream
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer, WorkerSpan
from ..partitioners.base import Partitioner
from ..partitioners.feedback import WorkerLoadFeedback
from ..queries.base import Query
from .faults import TaskFault, TaskFaultInjector, TransientTaskError
from .tasks import (
    BatchExecution,
    BucketInput,
    MapTaskResult,
    ReduceTaskResult,
    TaskCostModel,
    derive_task_seed,
    execute_batch_tasks,
    run_map_task,
    run_reduce_task,
    shuffle_map_results,
)
from .topology import ClusterTopology

log = logging.getLogger(__name__)

__all__ = [
    "BatchHandle",
    "ExecutionBackend",
    "ExecutorKind",
    "SerialExecutor",
    "ParallelExecutor",
    "RunContext",
    "PayloadSerializationError",
    "StaleContextError",
    "EXECUTOR_NAMES",
    "make_executor",
]

#: exception types a task attempt may fail with and still be retried —
#: explicitly-transient errors plus OS-level flakiness; anything else is
#: an application bug and propagates
RETRYABLE_TASK_ERRORS: tuple[type[BaseException], ...] = (
    TransientTaskError,
    OSError,
)


class ExecutorKind(str, enum.Enum):
    """The execution backends the engine can dispatch tasks on.

    A ``str`` subclass so existing code (and configs) that compare
    against the plain registry strings keeps working:
    ``ExecutorKind.SERIAL == "serial"`` is true, and
    ``str(ExecutorKind.PARALLEL)`` is ``"parallel"``.
    """

    SERIAL = "serial"
    PARALLEL = "parallel"

    def __str__(self) -> str:  # str(Enum) would print "ExecutorKind.SERIAL"
        return self.value


class PayloadSerializationError(RuntimeError):
    """A task payload could not be pickled on the driver.

    Raised *before* anything is submitted to the pool, which is what
    makes the infrastructure-vs-application classification a raise-site
    question: serialization problems are caught here in the driver,
    so any ``TypeError``/``AttributeError`` coming back from a worker is
    the query's own and must propagate.
    """


class StaleContextError(RuntimeError):
    """A task delta named a context generation this worker does not hold.

    Raised in the worker before any computation happens, so a pool that
    somehow missed its context install can never compute from the wrong
    run-invariant slice.  Classified as an *infrastructure* failure (the
    worker body never ran): the batch degrades to the serial fallback,
    which needs no resident context at all.
    """


class BatchHandle:
    """An in-flight batch submitted through :meth:`ExecutionBackend.submit_batch`.

    A thin, read-only view over the backend's future: ``done()`` polls,
    ``result()`` blocks until the batch's :class:`BatchExecution` is
    available (re-raising whatever the execution raised).  The pipelined
    driver holds one handle per dispatched batch and joins them strictly
    in batch order, which is what keeps windowing, state, and stats
    consumption identical to the sequential path.
    """

    __slots__ = ("batch_index", "submitted_at", "_future")

    def __init__(
        self, batch_index: int, future: "Future[BatchExecution]",
        submitted_at: float,
    ) -> None:
        self.batch_index = batch_index
        #: real ``perf_counter`` stamp of the submit_batch call
        self.submitted_at = submitted_at
        self._future = future

    def done(self) -> bool:
        """Whether the batch's execution has finished (success or error)."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> BatchExecution:
        """Block until the execution is available and return it."""
        return self._future.result(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "in-flight"
        return f"BatchHandle(batch={self.batch_index}, {state})"


class ExecutionBackend(abc.ABC):
    """Strategy interface: how one batch's tasks are dispatched."""

    #: registry identifier ("serial", "parallel")
    name: str = "base"

    def __init__(self, *, run_seed: int = 0) -> None:
        self.run_seed = run_seed
        #: observability sinks, bound by the engine per run; the no-op
        #: defaults make every publish/emit free when nothing is wired
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = NULL_METRICS
        #: batches that degraded to in-process execution
        self.fallbacks = 0
        self.last_fallback_reason: Optional[str] = None
        #: run-level fault-tolerance counters (only the parallel backend
        #: ever advances them, but every backend exposes them)
        self.task_attempts = 0
        self.task_retries = 0
        self.pool_resurrections = 0
        self.speculative_wins = 0
        self.timeout_trips = 0
        #: driver→worker dispatch accounting (the parallel backend
        #: advances them; the serial reference ships no bytes anywhere)
        self.payload_bytes = 0
        self.context_installs = 0
        self.context_bytes = 0

    @abc.abstractmethod
    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
    ) -> BatchExecution:
        """Execute one batch's Map -> shuffle -> Reduce computation."""

    def submit_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
        *,
        trace_parent: int | None = None,
    ) -> BatchHandle:
        """Submit one batch for execution and return a joinable handle.

        The base implementation is *eager*: it runs the batch
        synchronously (the serial reference has no concurrency to
        exploit) and hands back an already-completed handle — which
        keeps the pipelined driver's control flow uniform across
        backends and is exactly what the depth-equivalence suite
        compares against.  The parallel backend overrides this with a
        dispatch thread so the call returns while map/reduce futures
        are still in flight.

        ``trace_parent`` is the span id the execution should be
        parented under (the driver's ``batch`` span); submission may
        outlive the driver's span stack, so the parent must travel
        explicitly.
        """
        submitted = time.perf_counter()
        future: Future = Future()
        span = self.tracer.start(
            "execute", parent=trace_parent,
            batch=batch.info.index, backend=self.name,
        )
        try:
            execution = self.run_batch(
                batch, query, partitioner, num_reducers, cost_model,
                topology=topology,
            )
        except BaseException as exc:
            self.tracer.end(span)
            future.set_exception(exc)
        else:
            self.tracer.end(span)
            execution.submitted_at = submitted
            execution.completed_at = time.perf_counter()
            future.set_result(execution)
        return BatchHandle(batch.info.index, future, submitted)

    def submit_batch_stream(
        self,
        plan: PlanStream,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
        *,
        trace_parent: int | None = None,
    ) -> BatchHandle:
        """Submit a *streaming* plan for execution.

        The base implementation drains the plan to completion first —
        inside a ``plan_emit`` span so the trace still shows where the
        plan tail ran — and then submits the finished batch through
        :meth:`submit_batch`.  Backends with a real dispatch pipeline
        (the parallel executor) override this to launch each block's Map
        task as the planner emits it.  Either way the downstream merge
        consumes results in block/bucket order, so streaming submission
        is byte-identical to eager submission by construction.
        """
        span = self.tracer.start(
            "plan_emit", parent=trace_parent, batch=plan.batch_index,
        )
        try:
            batch = plan.result()
        finally:
            self.tracer.end(span)
        return self.submit_batch(
            batch, query, partitioner, num_reducers, cost_model,
            topology=topology, trace_parent=trace_parent,
        )

    def observed_load(
        self, batch: PartitionedBatch, execution: BatchExecution
    ) -> WorkerLoadFeedback:
        """Package one completed batch's per-worker load for feedback.

        Built from the *simulated* task durations, which the determinism
        contract makes identical across backends — feedback-consuming
        partitioners therefore see the same bytes under serial and
        parallel dispatch.  The engine only calls this for partitioners
        with ``uses_feedback`` set.
        """
        return WorkerLoadFeedback(
            batch_index=batch.info.index,
            block_sizes=tuple(b.size for b in batch.blocks),
            block_cardinalities=tuple(b.cardinality for b in batch.blocks),
            block_loads=tuple(execution.map_durations),
            bucket_weights=tuple(
                r.input_weight for r in execution.reduce_results
            ),
            bucket_loads=tuple(execution.reduce_durations),
        )

    def bind_observability(
        self, tracer: Tracer, metrics: MetricsRegistry
    ) -> None:
        """Attach the run's tracer and metrics registry (engine calls)."""
        self.tracer = tracer
        self.metrics = metrics

    def close(self) -> None:
        """Release any resources (worker pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ExecutionBackend):
    """In-process execution — the reference semantics of the engine."""

    name = "serial"

    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
    ) -> BatchExecution:
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
            tracer=self.tracer,
        )


def _map_task_worker(payload: bytes, attempt: int = 0) -> MapTaskResult:
    """Worker entry point for one Map task attempt.

    Payloads arrive pre-pickled by the driver (see
    :meth:`ParallelExecutor.run_batch` for why) and are unpacked here.
    An injected :class:`~repro.engine.faults.TaskFault` fires before the
    task body, gated on the attempt number.  With ``trace`` set, the
    attempt's wall-clock is measured here — in the process that actually
    runs it — and rides back on the result for the driver to stitch.
    """
    (
        fault,
        trace,
        block,
        query,
        allocate,
        num_reducers,
        split_keys,
        cost_model,
        task_seed,
    ) = pickle.loads(payload)
    started = time.time() if trace else 0.0
    if fault is not None:
        fault.apply(attempt)
    result = run_map_task(
        block, query, allocate, num_reducers, split_keys, cost_model, task_seed
    )
    if trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


def _reduce_task_worker(payload: bytes, attempt: int = 0) -> ReduceTaskResult:
    """Worker entry point for one Reduce task attempt (payload pre-pickled)."""
    fault, trace, bucket, aggregator, cost_model, task_seed = pickle.loads(payload)
    started = time.time() if trace else 0.0
    if fault is not None:
        fault.apply(attempt)
    result = run_reduce_task(bucket, aggregator, cost_model, task_seed)
    if trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


# ----------------------------------------------------------------------
# worker-resident run context (delta dispatch)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RunContext:
    """The run-invariant slice of every task, broadcast once per pool
    generation instead of re-pickled into each task payload.

    Holds everything a Map/Reduce task needs beyond its own block or
    bucket: the query (whose aggregator the Reduce side uses), the
    stateless reduce-allocation callable, the cost model, the full
    fault-injection table, the trace flag, and the run seed the worker
    derives per-task seeds from.  Frozen so a generation is immutable
    once installed — a changed slice always means a new generation.
    """

    run_seed: int
    query: Query
    allocate: Callable
    cost_model: TaskCostModel
    faults: Mapping[tuple[int, str, int], TaskFault] | None
    trace: bool

    def fault_for(
        self, batch_index: int, kind: str, task_id: int
    ) -> TaskFault | None:
        if self.faults is None:
            return None
        return self.faults.get((batch_index, kind, task_id))


#: per-worker-process resident context (set by :func:`_install_context`)
_worker_context: RunContext | None = None
_worker_generation: int = -1


def _install_context(generation: int, blob: bytes) -> int:
    """Install the pickled run context in this worker process.

    Runs through two channels per pool generation: as the pool
    *initializer* in every spawned worker, and once more as a
    generation-stamped install task whose round-trip confirms the pool
    is live (and whose return value lets the driver verify the stamp)
    before any real work is submitted.  A pool resurrected after a
    ``BrokenProcessPool`` goes through both again, which is what makes
    re-installation automatic.
    """
    global _worker_context, _worker_generation
    _worker_context = pickle.loads(blob)
    _worker_generation = generation
    return generation


def _context_for(generation: int) -> RunContext:
    """The resident context, verified against the delta's generation."""
    ctx = _worker_context
    if ctx is None or _worker_generation != generation:
        raise StaleContextError(
            f"task delta references context generation {generation}, but "
            f"this worker holds generation {_worker_generation}"
            + ("" if ctx is not None else " (no context installed)")
        )
    return ctx


def _map_task_delta_worker(payload: bytes, attempt: int = 0) -> MapTaskResult:
    """Delta-dispatch Map entry point: batch-variant payload only.

    The delta carries ``(generation, batch_index, task_id, block,
    num_reducers, split_keys)``; the query, allocator, cost model, seed
    root, fault table and trace flag all come from the resident
    :class:`RunContext`.  The task seed is derived *here* from the
    context's run seed — the same
    :func:`~repro.engine.tasks.derive_task_seed` expression the driver
    uses on the legacy path, so results stay byte-identical.
    """
    generation, batch_index, task_id, block, num_reducers, split_keys = (
        pickle.loads(payload)
    )
    ctx = _context_for(generation)
    started = time.time() if ctx.trace else 0.0
    fault = ctx.fault_for(batch_index, "map", task_id)
    if fault is not None:
        fault.apply(attempt)
    result = run_map_task(
        block,
        ctx.query,
        ctx.allocate,
        num_reducers,
        split_keys,
        ctx.cost_model,
        derive_task_seed(ctx.run_seed, batch_index, "map", task_id),
    )
    if ctx.trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


def _reduce_task_delta_worker(payload: bytes, attempt: int = 0) -> ReduceTaskResult:
    """Delta-dispatch Reduce entry point: ``(generation, batch, task, bucket)``."""
    generation, batch_index, task_id, bucket = pickle.loads(payload)
    ctx = _context_for(generation)
    started = time.time() if ctx.trace else 0.0
    fault = ctx.fault_for(batch_index, "reduce", task_id)
    if fault is not None:
        fault.apply(attempt)
    result = run_reduce_task(
        bucket,
        ctx.query.aggregator,
        ctx.cost_model,
        derive_task_seed(ctx.run_seed, batch_index, "reduce", task_id),
    )
    if ctx.trace:
        result.span = WorkerSpan(
            pid=os.getpid(), start=started, end=time.time()
        )
    return result


def _is_infrastructure_error(exc: BaseException) -> bool:
    """Pool/serialization failures that warrant the serial fallback.

    Classification is by raise-site, not message text.  Payloads are
    pickled driver-side and wrapped in :class:`PayloadSerializationError`
    on failure; ``pickle.PicklingError`` additionally covers a worker
    failing to pickle a task's *result* on the way back.  A worker-raised
    ``TypeError``/``AttributeError`` — even one whose message mentions
    "pickle" — is the query's own bug and always propagates.
    :class:`StaleContextError` is the one worker-raised member: it fires
    *before* the task body (a worker without the right resident context
    never computes), so it is a dispatch failure, not an application one.
    """
    return isinstance(
        exc,
        (
            BrokenProcessPool,
            PayloadSerializationError,
            StaleContextError,
            pickle.PicklingError,
        ),
    )


def _is_retryable_error(exc: BaseException) -> bool:
    """Whether a failed task attempt may be re-executed from its payload."""
    return isinstance(exc, RETRYABLE_TASK_ERRORS)


@dataclass(slots=True)
class _WaveCounters:
    """Per-batch fault-tolerance tallies, filled by the task waves."""

    attempts: int = 0
    retries: int = 0
    resurrections: int = 0
    speculative_wins: int = 0
    timeout_trips: int = 0
    payload_bytes: int = 0


#: histogram bounds for driver→worker payload sizes (bytes, not seconds)
PAYLOAD_BYTE_BUCKETS: tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)


class ParallelExecutor(ExecutionBackend):
    """Process-pool execution: one Map task per block, one Reduce per bucket.

    The pool is created lazily on the first batch and reused for the
    whole run (fork start method where the platform offers it, so
    workers inherit the loaded modules instead of re-importing).  With
    ``resident_context`` (the default) the run-invariant slice — query,
    allocation callable, cost model, fault table, trace flag, run seed —
    is broadcast once per pool generation as a :class:`RunContext` and
    each task ships only a generation-stamped delta (its block or
    bucket); with ``resident_context=False`` every payload re-ships the
    full slice, the original dispatch path.  Either way payloads never
    carry engine or partitioner state, and they double as the task's
    replicated input: any attempt can be re-run from them
    deterministically (see the module docstring for the
    retry/resurrection/speculation rules).
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        run_seed: int = 0,
        fallback_to_serial: bool = True,
        mp_context: multiprocessing.context.BaseContext | None = None,
        max_task_retries: int = 2,
        task_timeout: float | None = None,
        speculative: bool = False,
        max_pool_resurrections: int = 2,
        fault_injector: TaskFaultInjector | None = None,
        resident_context: bool = True,
    ) -> None:
        super().__init__(run_seed=run_seed)
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if max_pool_resurrections < 0:
            raise ValueError(
                f"max_pool_resurrections must be >= 0, got {max_pool_resurrections}"
            )
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.fallback_to_serial = fallback_to_serial
        self.max_task_retries = max_task_retries
        self.task_timeout = task_timeout
        self.speculative = speculative
        self.max_pool_resurrections = max_pool_resurrections
        self.fault_injector = fault_injector
        self.resident_context = resident_context
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        #: single-threaded dispatcher backing submit_batch: one thread
        #: means submitted batches execute strictly in submission order
        #: (determinism by construction) while the driver overlaps the
        #: next batch's ingest/partition with this one's pool waits
        self._dispatcher: ThreadPoolExecutor | None = None
        #: monotonically increasing context-generation stamp; bumped
        #: whenever the run-invariant slice changes (so a worker can
        #: detect a delta minted for a slice it never received)
        self._generation = 0
        self._context: RunContext | None = None
        self._context_blob: bytes | None = None
        self._context_signature: object = None

    # ------------------------------------------------------------------
    def _ensure_context(
        self,
        query: Query,
        allocate: Callable,
        cost_model: TaskCostModel,
        trace: bool,
    ) -> None:
        """(Re-)pickle the run-invariant slice when it changed.

        Two-level change detection.  Fast path: the exact objects of the
        installed generation (by identity for the query and cost model —
        the engine passes the same ones every batch — and by equality
        for the allocation callable, since partitioners may hand out a
        fresh-but-equal bound method per batch).  Slow path: pickle the
        candidate slice and compare bytes with the installed blob — a
        caller constructing equivalent objects per batch (common in
        tests and ad-hoc drivers) still reuses the generation, because
        identical bytes install identical worker state.  Only a blob
        that truly differs retires the current pool — its workers hold
        the old slice — and mints a new generation.
        """
        injector = self.fault_injector
        faults = injector.snapshot() if injector is not None else None
        signature = (
            id(query),
            allocate,
            id(cost_model),
            self.run_seed,
            trace,
            None if faults is None else tuple(sorted(faults.items())),
        )
        if (
            self._context_blob is not None
            and signature == self._context_signature
        ):
            return
        context = RunContext(
            run_seed=self.run_seed,
            query=query,
            allocate=allocate,
            cost_model=cost_model,
            faults=faults,
            trace=trace,
        )
        try:
            blob = pickle.dumps(context)
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise PayloadSerializationError(
                f"run context is not picklable — {type(exc).__name__}: {exc}"
            ) from exc
        if blob == self._context_blob:
            # byte-identical slice: adopt the new objects' identities so
            # the fast path hits next batch, keep pool and generation
            self._context = context
            self._context_signature = signature
            return
        # workers holding the old slice must not serve the new one.
        # _close_pool, not close(): this runs on the dispatch thread
        # under submit_batch, and close() joins that very thread.
        self._close_pool()
        self._generation += 1
        # pinning the context keeps query/cost_model alive, so the id()s
        # in the signature can never be recycled onto different objects
        self._context = context
        self._context_blob = blob
        self._context_signature = signature
        log.debug(
            "run context generation %d prepared (%d bytes)",
            self._generation, len(blob),
        )

    def _record_install(self) -> None:
        blob_bytes = len(self._context_blob or b"")
        self.context_installs += 1
        self.context_bytes += blob_bytes
        self.metrics.counter(
            "prompt_context_install_total",
            "Run-context broadcasts installed into worker pools",
        ).inc()
        self.tracer.event(
            "context_install",
            generation=self._generation,
            bytes=blob_bytes,
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = self._mp_context
            if ctx is None:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            if self.resident_context and self._context_blob is not None:
                # Every worker the pool ever spawns installs the context
                # via the initializer; the install *task* both confirms
                # the pool is live before real work goes in and charges
                # exactly one install per pool generation to the
                # counters — resurrections re-enter here and pay again.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=ctx,
                    initializer=_install_context,
                    initargs=(self._generation, self._context_blob),
                )
                # _pool is assigned before the probe so a BrokenProcessPool
                # raised here is salvaged by the wave loop, not leaked.
                confirmed = self._pool.submit(
                    _install_context, self._generation, self._context_blob
                ).result()
                if confirmed != self._generation:
                    raise StaleContextError(
                        f"context install returned generation {confirmed}, "
                        f"expected {self._generation}"
                    )
                self._record_install()
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=ctx
                )
        return self._pool

    def _ensure_dispatcher(self) -> ThreadPoolExecutor:
        if self._dispatcher is None:
            self._dispatcher = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="prompt-dispatch"
            )
        return self._dispatcher

    def _close_pool(self) -> None:
        """Shut down the process pool only (safe from the dispatch thread)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Release the dispatch thread and the worker pool (driver-only).

        Joins the dispatcher, so it must never run *on* the dispatcher —
        internal paths that retire a pool mid-run (context changes,
        broken-pool handling) use :meth:`_close_pool` instead.
        """
        if self._dispatcher is not None:
            self._dispatcher.shutdown(wait=True)
            self._dispatcher = None
        self._close_pool()

    # ------------------------------------------------------------------
    def _serial_fallback(
        self,
        reason: BaseException,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None,
    ) -> BatchExecution:
        self.fallbacks += 1
        self.last_fallback_reason = f"{type(reason).__name__}: {reason}"
        log.warning(
            "batch %s degraded to serial execution: %s",
            batch.info.index, self.last_fallback_reason,
        )
        self.metrics.counter(
            "prompt_executor_fallbacks_total",
            "Batches the parallel backend degraded to serial execution",
        ).inc()
        self.tracer.event(
            "executor_fallback",
            batch=batch.info.index,
            reason=type(reason).__name__,
        )
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
            tracer=self.tracer,
        )

    def _pickle_payloads(self, items: Sequence[tuple]) -> list[bytes]:
        # Payloads are pickled *here*, in the driver, and shipped as
        # bytes.  Letting the pool's queue-feeder thread pickle them
        # instead would surface unpicklable payloads asynchronously
        # and leave the pool wedged (its shutdown can deadlock after
        # a feeder crash); pickling up front makes the failure
        # synchronous, classifiable by raise-site, and pool-preserving.
        try:
            return [pickle.dumps(item) for item in items]
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise PayloadSerializationError(
                f"task payload is not picklable — {type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def _run_tasks(
        self,
        worker: Callable[[bytes, int], object],
        payloads: Sequence[bytes],
        counters: _WaveCounters,
        kind: str = "task",
        batch_index: int = -1,
        prelaunched: Sequence[Optional[Future]] | None = None,
    ) -> list:
        """Run one wave of tasks with retries/resurrection/speculation.

        Results come back indexed by submission position (= task id),
        which is what keeps the downstream merge deterministic no matter
        how attempts raced, failed, or were duplicated.  When tracing is
        on, each winning attempt's worker-side span is stitched into the
        driver trace (in task-id order, so the span tree is independent
        of completion races) and retries/timeouts/speculative launches
        are marked with zero-duration events.

        ``prelaunched`` (streaming dispatch) hands over attempt-0
        futures the dispatcher already put in flight, one slot per task;
        ``None`` slots (the pool broke mid-stream) are submitted here
        instead.  Adopted futures join the wave exactly as if this loop
        had launched them — same accounting, same retry/resurrection/
        speculation treatment — so a streamed wave and an eager wave are
        indistinguishable downstream.
        """
        n = len(payloads)
        results: list = [None] * n
        done = [False] * n
        attempts = [0] * n  # launches so far == next attempt index
        failures = [0] * n  # failed attempts charged against the retry budget
        outstanding = [0] * n  # live futures per task
        deadlines = [float("inf")] * n
        pending: dict[Future, tuple[int, bool]] = {}
        remaining = n
        resurrections_left = self.max_pool_resurrections
        won_attempt = [0] * n  # attempt number of the winning copy
        won_speculative = [False] * n
        pending_attempt: dict[Future, int] = {}

        def charge_attempt(tid: int) -> None:
            counters.attempts += 1
            self.task_attempts += 1
            # every launched attempt ships its payload again, so the
            # byte accounting charges per attempt, not per task
            nbytes = len(payloads[tid])
            counters.payload_bytes += nbytes
            self.payload_bytes += nbytes
            self.metrics.histogram(
                "prompt_task_payload_bytes",
                "Pickled driver-to-worker payload size per task attempt",
                buckets=PAYLOAD_BYTE_BUCKETS,
            ).observe(nbytes)
            if self.task_timeout is not None:
                deadlines[tid] = time.monotonic() + self.task_timeout

        to_submit: list[tuple[int, bool]] = []
        if prelaunched is None:
            to_submit = [(tid, False) for tid in range(n)]
        else:
            for tid, future in enumerate(prelaunched):
                if future is None:
                    to_submit.append((tid, False))
                    continue
                pending[future] = (tid, False)
                pending_attempt[future] = 0
                attempts[tid] = 1
                outstanding[tid] = 1
                charge_attempt(tid)

        def record_success(tid: int, future: Future, speculative: bool) -> None:
            nonlocal remaining
            results[tid] = future.result()
            done[tid] = True
            remaining -= 1
            won_attempt[tid] = pending_attempt.get(future, attempts[tid] - 1)
            won_speculative[tid] = speculative
            if speculative:
                counters.speculative_wins += 1
                self.speculative_wins += 1
                log.info(
                    "speculative copy won: batch=%s kind=%s task=%s",
                    batch_index, kind, tid,
                )

        def salvage_and_rebuild(broken: BrokenProcessPool) -> None:
            # The pool died; every outstanding future is void.  Keep
            # results that completed but were not yet observed, drop the
            # corpse, and (within the resurrection budget) queue a fresh
            # attempt for *only* the still-unfinished tasks.
            nonlocal outstanding, resurrections_left
            for future, (tid, speculative) in list(pending.items()):
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                    and not done[tid]
                ):
                    record_success(tid, future, speculative)
            pending.clear()
            outstanding = [0] * n
            self._close_pool()
            if not remaining:
                to_submit.clear()
                return
            if resurrections_left <= 0:
                raise broken
            resurrections_left -= 1
            counters.resurrections += 1
            self.pool_resurrections += 1
            log.warning(
                "process pool broke (batch=%s kind=%s); resurrecting, "
                "%d unfinished task(s), %d rebuild(s) left",
                batch_index, kind, remaining, resurrections_left,
            )
            self.tracer.event(
                "pool_resurrection", batch=batch_index, kind=kind,
                unfinished=remaining,
            )
            to_submit[:] = [(tid, False) for tid in range(n) if not done[tid]]

        def launch_queued() -> None:
            # A worker can die while the driver is still submitting, in
            # which case ``pool.submit`` itself raises BrokenProcessPool
            # synchronously — the same failure as a broken future, so it
            # takes the same resurrection path instead of escaping the
            # wave (which would needlessly degrade the batch to serial).
            while to_submit:
                tid, speculative = to_submit[0]
                if done[tid]:
                    to_submit.pop(0)
                    continue
                try:
                    future = self._ensure_pool().submit(
                        worker, payloads[tid], attempts[tid]
                    )
                except BrokenProcessPool as exc:
                    salvage_and_rebuild(exc)  # refills/clears the queue
                    continue
                pending_attempt[future] = attempts[tid]
                attempts[tid] += 1
                outstanding[tid] += 1
                pending[future] = (tid, speculative)
                charge_attempt(tid)
                to_submit.pop(0)

        while remaining:
            launch_queued()
            if not remaining:
                break
            timeout = None
            if self.task_timeout is not None:
                horizon = min(deadlines[t] for t in range(n) if not done[t])
                timeout = max(0.0, horizon - time.monotonic())
            finished, _ = wait(
                list(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not finished:
                # A straggler deadline passed with nothing completing.
                now = time.monotonic()
                for tid in range(n):
                    if done[tid] or now < deadlines[tid]:
                        continue
                    counters.timeout_trips += 1
                    self.timeout_trips += 1
                    log.warning(
                        "task deadline tripped: batch=%s kind=%s task=%s "
                        "(outstanding %.3fs past %.3fs timeout)",
                        batch_index, kind, tid,
                        now - (deadlines[tid] - (self.task_timeout or 0.0)),
                        self.task_timeout or 0.0,
                    )
                    self.tracer.event(
                        "task_timeout", batch=batch_index, kind=kind, task_id=tid
                    )
                    deadlines[tid] = now + (self.task_timeout or 0.0)
                    if self.speculative and outstanding[tid] < 2:
                        # Duplicate the straggler: same payload, same
                        # seed — either copy's result is byte-identical.
                        self.tracer.event(
                            "task_speculate",
                            batch=batch_index, kind=kind, task_id=tid,
                        )
                        to_submit.append((tid, True))
                continue
            broken: BrokenProcessPool | None = None
            errors: list[tuple[int, BaseException]] = []
            for future in finished:
                tid, speculative = pending.pop(future)
                outstanding[tid] -= 1
                exc = future.exception()
                if exc is None:
                    if not done[tid]:  # a sibling copy may have won already
                        record_success(tid, future, speculative)
                elif isinstance(exc, BrokenProcessPool):
                    broken = exc
                elif not done[tid]:
                    errors.append((tid, exc))
            if broken is not None:
                salvage_and_rebuild(broken)
                continue
            for tid, exc in errors:
                if done[tid]:
                    continue
                failures[tid] += 1
                if not _is_retryable_error(exc) or failures[tid] > self.max_task_retries:
                    log.error(
                        "task failed permanently: batch=%s kind=%s task=%s "
                        "after %d failure(s): %s: %s",
                        batch_index, kind, tid, failures[tid],
                        type(exc).__name__, exc,
                    )
                    raise exc
                counters.retries += 1
                self.task_retries += 1
                log.warning(
                    "retrying task: batch=%s kind=%s task=%s "
                    "(failure %d/%d: %s)",
                    batch_index, kind, tid, failures[tid],
                    self.max_task_retries, type(exc).__name__,
                )
                self.tracer.event(
                    "task_retry",
                    batch=batch_index, kind=kind, task_id=tid,
                    failure=failures[tid], error=type(exc).__name__,
                )
                to_submit.append((tid, False))
        if self.tracer.enabled:
            # Stitch the winning attempts' worker-side spans in task-id
            # order — deterministic regardless of completion races.
            for tid, result in enumerate(results):
                span = getattr(result, "span", None)
                if span is None:
                    continue
                self.tracer.record(
                    f"{kind}_task",
                    span.start,
                    span.end,
                    pid=span.pid,
                    task_id=tid,
                    batch=batch_index,
                    attempt=won_attempt[tid],
                    retries=failures[tid],
                    speculative=won_speculative[tid],
                    payload_bytes=len(payloads[tid]),
                )
        return results

    # ------------------------------------------------------------------
    def _reduce_wave(
        self,
        map_results: Sequence[MapTaskResult],
        query: Query,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None,
        counters: _WaveCounters,
        batch_index: int,
        trace: bool,
    ) -> list[ReduceTaskResult]:
        """Shuffle Map results and run the Reduce wave.

        Shared verbatim by the eager and streaming paths: the shuffle
        consumes Map results in block-id order and Reduce submission is
        never overlapped with planning, so the two paths converge here
        on identical bytes.
        """
        with self.tracer.span("shuffle", batch=batch_index):
            buckets: list[BucketInput] = shuffle_map_results(
                map_results, num_reducers, topology
            )
        injector = self.fault_injector
        if self.resident_context:
            reduce_worker: Callable = _reduce_task_delta_worker
            reduce_payloads = self._pickle_payloads(
                [
                    (
                        self._generation,
                        batch_index,
                        bucket.bucket_index,
                        bucket,
                    )
                    for bucket in buckets
                ]
            )
        else:
            reduce_worker = _reduce_task_worker
            reduce_payloads = self._pickle_payloads(
                [
                    (
                        None if injector is None
                        else injector.fault_for(
                            batch_index, "reduce", bucket.bucket_index
                        ),
                        trace,
                        bucket,
                        query.aggregator,
                        cost_model,
                        derive_task_seed(
                            self.run_seed, batch_index, "reduce", bucket.bucket_index
                        ),
                    )
                    for bucket in buckets
                ]
            )
        return self._run_tasks(
            reduce_worker, reduce_payloads, counters, "reduce", batch_index
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
    ) -> BatchExecution:
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        allocate = partitioner.reduce_allocation()
        split = set(batch.split_keys)
        batch_index = batch.info.index
        injector = self.fault_injector

        def fault_for(kind: str, task_id: int) -> TaskFault | None:
            if injector is None:
                return None
            return injector.fault_for(batch_index, kind, task_id)

        counters = _WaveCounters()
        trace = self.tracer.enabled
        installs_before = self.context_installs
        context_bytes_before = self.context_bytes
        try:
            if self.resident_context:
                self._ensure_context(query, allocate, cost_model, trace)
                map_worker: Callable = _map_task_delta_worker
                map_payloads = self._pickle_payloads(
                    [
                        (
                            self._generation,
                            batch_index,
                            block.index,
                            block,
                            num_reducers,
                            {k for k in split if k in block},
                        )
                        for block in batch.blocks
                    ]
                )
            else:
                map_worker = _map_task_worker
                map_payloads = self._pickle_payloads(
                    [
                        (
                            fault_for("map", block.index),
                            trace,
                            block,
                            query,
                            allocate,
                            num_reducers,
                            {k for k in split if k in block},
                            cost_model,
                            derive_task_seed(
                                self.run_seed, batch_index, "map", block.index
                            ),
                        )
                        for block in batch.blocks
                    ]
                )
            map_results: list[MapTaskResult] = self._run_tasks(
                map_worker, map_payloads, counters, "map", batch_index
            )
            reduce_results = self._reduce_wave(
                map_results, query, num_reducers, cost_model, topology,
                counters, batch_index, trace,
            )
        except BaseException as exc:
            if isinstance(exc, BrokenProcessPool):
                # Drop the corpse; the *next* batch rebuilds a fresh pool
                # lazily instead of pinning the rest of the run to serial.
                self._close_pool()
            if self.fallback_to_serial and _is_infrastructure_error(exc):
                return self._serial_fallback(
                    exc, batch, query, partitioner, num_reducers, cost_model, topology
                )
            raise
        return BatchExecution(
            map_results=map_results,
            reduce_results=reduce_results,
            backend=self.name,
            task_attempts=counters.attempts,
            task_retries=counters.retries,
            pool_resurrections=counters.resurrections,
            speculative_wins=counters.speculative_wins,
            timeout_trips=counters.timeout_trips,
            payload_bytes=counters.payload_bytes,
            context_installs=self.context_installs - installs_before,
            context_bytes=self.context_bytes - context_bytes_before,
        )

    # ------------------------------------------------------------------
    def submit_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
        *,
        trace_parent: int | None = None,
    ) -> BatchHandle:
        """Dispatch one batch asynchronously and return immediately.

        The batch runs on the single dispatch thread: payload pickling,
        pool submission, the retry/resurrection/speculation wave loop,
        the shuffle, and — if an infrastructure error strikes — the
        serial fallback all happen there, exactly as they would inline.
        One dispatch thread means batches execute strictly in
        submission order, so every run-level counter and the resident
        context's generation bookkeeping see the same single-threaded
        sequence as the synchronous path.  The real win: while this
        thread sleeps in ``wait()`` on pool futures (GIL released), the
        driver buffers and partitions the *next* batch.
        """
        submitted = time.perf_counter()
        index = batch.info.index

        def _execute() -> BatchExecution:
            span = self.tracer.start(
                "execute", parent=trace_parent, batch=index, backend=self.name
            )
            try:
                execution = self.run_batch(
                    batch, query, partitioner, num_reducers, cost_model,
                    topology=topology,
                )
            finally:
                self.tracer.end(span)
            execution.submitted_at = submitted
            execution.completed_at = time.perf_counter()
            return execution

        return BatchHandle(index, self._ensure_dispatcher().submit(_execute), submitted)

    # ------------------------------------------------------------------
    def _run_batch_stream(
        self,
        plan: PlanStream,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
    ) -> BatchExecution:
        """Interleave plan emissions with Map dispatch (dispatch thread).

        Each ``plan_emit`` resumes Algorithm 2 until the next block is
        final; each ``map_dispatch`` pickles that block's payload and
        puts its attempt-0 future in flight immediately, so early blocks
        execute while the plan tail (rebalance spillover, later blocks'
        materialization) is still running.  The wave loop then *adopts*
        the prelaunched futures, which keeps retries, pool resurrection
        and speculation — and therefore the produced bytes — identical
        to the eager path.  A pool that breaks mid-stream stops further
        prelaunching (pickling continues); the unlaunched tasks are
        submitted by the wave loop, whose salvage path rebuilds the pool
        exactly as it does for an eager wave.
        """
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        allocate = partitioner.reduce_allocation()
        batch_index = plan.batch_index
        injector = self.fault_injector
        counters = _WaveCounters()
        trace = self.tracer.enabled
        installs_before = self.context_installs
        context_bytes_before = self.context_bytes
        try:
            if self.resident_context:
                self._ensure_context(query, allocate, cost_model, trace)
                map_worker: Callable = _map_task_delta_worker
            else:
                map_worker = _map_task_worker
            map_payloads: list[bytes] = []
            prelaunched: list[Optional[Future]] = []
            pool_broken = False
            first_dispatch_at: float | None = None
            while True:
                with self.tracer.span("plan_emit", batch=batch_index):
                    emission = plan.next_emission()
                if emission is None:
                    break
                block, block_split = emission
                with self.tracer.span(
                    "map_dispatch", batch=batch_index, task_id=block.index
                ):
                    if self.resident_context:
                        item: tuple = (
                            self._generation,
                            batch_index,
                            block.index,
                            block,
                            num_reducers,
                            block_split,
                        )
                    else:
                        item = (
                            None if injector is None
                            else injector.fault_for(batch_index, "map", block.index),
                            trace,
                            block,
                            query,
                            allocate,
                            num_reducers,
                            block_split,
                            cost_model,
                            derive_task_seed(
                                self.run_seed, batch_index, "map", block.index
                            ),
                        )
                    payload = self._pickle_payloads([item])[0]
                    map_payloads.append(payload)
                    future: Optional[Future] = None
                    if not pool_broken:
                        try:
                            future = self._ensure_pool().submit(
                                map_worker, payload, 0
                            )
                        except BrokenProcessPool:
                            # leave the corpse for the wave loop's
                            # salvage path, which owns resurrection
                            pool_broken = True
                            future = None
                        else:
                            if first_dispatch_at is None:
                                first_dispatch_at = time.perf_counter()
                            # yield the GIL so the pool's manager thread
                            # can feed the work item to a worker now —
                            # without this the plan tail starves it and
                            # the prelaunched task sits queued in-process
                            time.sleep(0)
                    prelaunched.append(future)
            if first_dispatch_at is not None:
                # wall-clock during which dispatched Map work and the
                # plan tail ran concurrently — what streaming reclaims
                self.metrics.histogram(
                    "prompt_plan_dispatch_overlap_seconds",
                    "Wall-clock between the first streamed Map dispatch "
                    "and the end of the partition plan",
                ).observe(max(0.0, time.perf_counter() - first_dispatch_at))
            batch = plan.result()
            map_results: list[MapTaskResult] = self._run_tasks(
                map_worker, map_payloads, counters, "map", batch_index,
                prelaunched=prelaunched,
            )
            reduce_results = self._reduce_wave(
                map_results, query, num_reducers, cost_model, topology,
                counters, batch_index, trace,
            )
        except BaseException as exc:
            if isinstance(exc, BrokenProcessPool):
                self._close_pool()
            if self.fallback_to_serial and _is_infrastructure_error(exc):
                try:
                    batch = plan.result()
                except BaseException:
                    # the plan itself is broken — that is the real
                    # error, not the infrastructure hiccup
                    raise exc from None
                return self._serial_fallback(
                    exc, batch, query, partitioner, num_reducers, cost_model,
                    topology,
                )
            raise
        return BatchExecution(
            map_results=map_results,
            reduce_results=reduce_results,
            backend=self.name,
            task_attempts=counters.attempts,
            task_retries=counters.retries,
            pool_resurrections=counters.resurrections,
            speculative_wins=counters.speculative_wins,
            timeout_trips=counters.timeout_trips,
            payload_bytes=counters.payload_bytes,
            context_installs=self.context_installs - installs_before,
            context_bytes=self.context_bytes - context_bytes_before,
        )

    def submit_batch_stream(
        self,
        plan: PlanStream,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: ClusterTopology | None = None,
        *,
        trace_parent: int | None = None,
    ) -> BatchHandle:
        """Dispatch a streaming plan on the dispatch thread.

        The plan generator itself resumes on that thread — the driver
        already finished buffering (Algorithm 1 is batching-phase work),
        so handing the Algorithm 2 tail over moves it off the driver's
        critical path entirely.  One dispatch thread still means batches
        stream strictly in submission order.
        """
        submitted = time.perf_counter()
        index = plan.batch_index

        def _execute() -> BatchExecution:
            span = self.tracer.start(
                "execute", parent=trace_parent, batch=index, backend=self.name
            )
            try:
                execution = self._run_batch_stream(
                    plan, query, partitioner, num_reducers, cost_model,
                    topology=topology,
                )
            finally:
                self.tracer.end(span)
            execution.submitted_at = submitted
            execution.completed_at = time.perf_counter()
            return execution

        return BatchHandle(index, self._ensure_dispatcher().submit(_execute), submitted)


EXECUTOR_NAMES: tuple[str, ...] = tuple(kind.value for kind in ExecutorKind)


def make_executor(
    name: str | ExecutorKind,
    *,
    max_workers: int | None = None,
    run_seed: int = 0,
    fallback_to_serial: bool = True,
    max_task_retries: int = 2,
    task_timeout: float | None = None,
    speculative: bool = False,
    max_pool_resurrections: int = 2,
    fault_injector: TaskFaultInjector | None = None,
    resident_context: bool = True,
) -> ExecutionBackend:
    """Build an execution backend by :class:`ExecutorKind` or its name.

    The fault-tolerance knobs (retries, timeout, speculation,
    resurrection budget, injector) and ``resident_context`` only apply
    to the parallel backend; the serial reference executes tasks inline
    where there is nothing to retry, time out, resurrect — or broadcast.
    """
    try:
        kind = ExecutorKind(name)
    except ValueError:
        raise ValueError(
            f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
        ) from None
    if kind is ExecutorKind.SERIAL:
        return SerialExecutor(run_seed=run_seed)
    return ParallelExecutor(
        max_workers,
        run_seed=run_seed,
        fallback_to_serial=fallback_to_serial,
        max_task_retries=max_task_retries,
        task_timeout=task_timeout,
        speculative=speculative,
        max_pool_resurrections=max_pool_resurrections,
        fault_injector=fault_injector,
        resident_context=resident_context,
    )
