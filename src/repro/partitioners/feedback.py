"""Worker-load feedback: completed batches inform future partitioning.

Adaptive techniques from the related work (D-Choices/W-Choices key
splitting, Fang et al.'s variance-driven repartitioning) steer on the
load their assignments *actually produced*, not just on the running
block sizes inside the current batch.  The engine therefore publishes a
:class:`WorkerLoadFeedback` after every completed batch — per-block Map
load and per-bucket Reduce load, straight from the executed
:class:`~repro.engine.tasks.BatchExecution` — and delivers it to the
partitioner before a later batch is partitioned.

**Determinism contract.**  Delivery must not depend on *when* a batch
happens to finish: the sequential driver completes batch ``k`` inside
heartbeat ``k`` while the pipelined driver (``pipeline_depth=2``) only
joins it while batch ``k+1`` is already in flight.  The
:class:`FeedbackBuffer` therefore holds published feedback and releases
it with a fixed lag of :data:`FEEDBACK_LAG` batches: partitioning batch
``k`` sees the feedback of batches ``<= k - 2``, in batch order, under
*every* driver and executor.  Both drivers guarantee availability at
that lag (the sequential heartbeat executes batch ``k-1`` synchronously;
the depth-2 driver drains batch ``k-2`` before ingesting ``k``), so the
same bytes flow in the same order everywhere and the differential
suites stay byte-identical across depths, backends, and injected task
crashes.

Techniques that do not opt in (``uses_feedback = False``, the default)
are wired to :data:`NULL_FEEDBACK`, whose ``publish``/``deliver`` are
no-ops — the engine does not even construct the feedback object, so the
pre-existing techniques run byte-identical to the pre-feedback engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FEEDBACK_LAG",
    "FeedbackBuffer",
    "NULL_FEEDBACK",
    "NullFeedback",
    "WorkerLoadFeedback",
]

#: Batches between a batch completing and its feedback being delivered:
#: partitioning batch ``k`` sees feedback of batches ``<= k - FEEDBACK_LAG``.
#: 2 is the smallest lag every driver can honor deterministically (the
#: depth-2 pipelined driver has not yet joined batch ``k-1`` when it
#: partitions batch ``k``).
FEEDBACK_LAG = 2


@dataclass(frozen=True, slots=True)
class WorkerLoadFeedback:
    """Observed load of one completed batch, per Map block / Reduce bucket.

    Loads are the *simulated* task durations of the cost model — the
    quantity the paper's makespan (Eqn. 1) is built from — so they are
    identical across execution backends by the determinism contract.
    """

    batch_index: int
    #: tuple weight per data block, as partitioned
    block_sizes: tuple[int, ...]
    #: distinct keys per data block
    block_cardinalities: tuple[int, ...]
    #: simulated seconds of each Map task (one per block)
    block_loads: tuple[float, ...]
    #: input weight per Reduce bucket after the shuffle
    bucket_weights: tuple[int, ...]
    #: simulated seconds of each Reduce task (one per bucket)
    bucket_loads: tuple[float, ...]

    def relative_block_loads(self) -> tuple[float, ...]:
        """Per-block load divided by the mean (1.0 = perfectly balanced)."""
        if not self.block_loads:
            return ()
        mean = sum(self.block_loads) / len(self.block_loads)
        if mean <= 0.0:
            return tuple(1.0 for _ in self.block_loads)
        return tuple(load / mean for load in self.block_loads)


class NullFeedback:
    """The disabled channel: drops publishes, delivers nothing.

    Default wiring for every technique with ``uses_feedback = False`` —
    the engine checks ``enabled`` before even building the feedback
    object, so the no-feedback path costs nothing and perturbs nothing.
    """

    enabled: bool = False

    def publish(self, feedback: WorkerLoadFeedback) -> None:
        pass

    def deliver(self, partitioner, upcoming_index: int) -> int:
        return 0


#: shared no-op channel (stateless, safe to share across runs)
NULL_FEEDBACK = NullFeedback()


@dataclass
class FeedbackBuffer:
    """Orders and lags feedback delivery so drivers cannot race it.

    ``publish`` may be called whenever a batch's execution becomes
    available (synchronously in the sequential heartbeat, at drain time
    in the pipelined driver); ``deliver(partitioner, k)`` is called just
    before batch ``k`` is partitioned and hands over — in batch order —
    every pending feedback with ``batch_index <= k - lag``.
    """

    lag: int = FEEDBACK_LAG
    enabled: bool = True
    _pending: list[WorkerLoadFeedback] = field(default_factory=list)

    def publish(self, feedback: WorkerLoadFeedback) -> None:
        self._pending.append(feedback)

    def deliver(self, partitioner, upcoming_index: int) -> int:
        """Release all due feedback to ``partitioner.observe_load``.

        Returns the number of feedback objects delivered.
        """
        cutoff = upcoming_index - self.lag
        due = [fb for fb in self._pending if fb.batch_index <= cutoff]
        if not due:
            return 0
        self._pending = [fb for fb in self._pending if fb.batch_index > cutoff]
        due.sort(key=lambda fb: fb.batch_index)
        for fb in due:
            partitioner.observe_load(fb)
        return len(due)
