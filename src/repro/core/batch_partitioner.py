"""Load-balanced batch partitioning — the B-BPFI heuristic (Algorithm 2).

The batching-phase partitioning problem is modelled as *Balanced Bin
Packing with Fragmentable Items* (Definition 1): keys are items whose
size is their tuple count, blocks are equal-capacity bins, and the goal
is equal bin sizes, balanced per-bin cardinality, and minimal item
fragmentation — NP-complete (Theorem 1).

Two strategies are provided:

- ``"greedy"`` (default) — the BestFitDecreasing realization.  The paper
  motivates its zigzag pass as achieving "the effect of
  BestFitDecreasing without the need and cost to maintain the block
  sizes"; this strategy *does* maintain block state and picks, for each
  key in quasi-sorted descending order, the lowest-cardinality block
  with room (requirement 2 of Definition 1, ties broken BestFit),
  fragmenting a key over the roomiest blocks only when no single block
  can hold it (requirement 3).  Equal block sizes fall out of the
  capacity bound (requirement 1).  O(K * B); B is small (<= cores).

- ``"zigzag"`` — the literal three-pass text of Algorithm 2: an
  ``S_cut`` split pass round-robin over blocks, a boustrophedon deal of
  the remaining keys, and a locality-first BestFit residual pass.  It
  avoids per-block bookkeeping, but when residual volume is large and
  uneven (high-cardinality batches) the spill placement concentrates
  keys on the emptiest blocks, inflating BCI — the ablation bench
  quantifies the gap, which is why ``"greedy"`` is the default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .batch import BatchInfo, DataBlock, PartitionedBatch
from .config import PartitionerConfig
from .plan_stream import (
    LedgerBlock,
    PlanGenerator,
    split_segment_chain,
)
from .tuples import Key, KeyGroup, StreamTuple, _order_token

__all__ = ["PromptBatchPartitioner", "split_group_by_weight"]


def split_group_by_weight(
    tuples: Sequence[StreamTuple], cut: int
) -> tuple[list[StreamTuple], list[StreamTuple]]:
    """Split a key's tuple chain into a fragment of weight >= ``cut`` and a rest.

    With unit weights the fragment holds exactly ``cut`` tuples.  With
    variable weights the fragment is the shortest prefix reaching the
    cut, mirroring the paper's "put ``S_cut`` fragment" step.
    """
    if cut <= 0:
        return [], list(tuples)
    acc = 0
    for i, t in enumerate(tuples):
        acc += t.weight
        if acc >= cut:
            return list(tuples[: i + 1]), list(tuples[i + 1 :])
    return list(tuples), []


def _split_with_weight(
    tuples: Sequence[StreamTuple], cut: int, total_weight: int | None = None
) -> tuple[list[StreamTuple], list[StreamTuple], int]:
    """:func:`split_group_by_weight` that also reports the head's weight.

    The splitting walk accumulates the head weight anyway; returning it
    lets callers that track fragment weights re-install both halves
    without re-summing per tuple.  When the caller knows the chain's
    ``total_weight``, unit-weight chains are detected in O(1) —
    ``StreamTuple`` enforces ``weight >= 1``, so total == count iff
    every weight is 1 — and split by pure slicing.
    """
    if cut <= 0:
        return [], list(tuples), 0
    count = len(tuples)
    if total_weight is not None and total_weight == count:
        head = list(tuples[:cut])
        return head, list(tuples[cut:]), len(head)
    acc = 0
    for i, t in enumerate(tuples):
        acc += t.weight
        if acc >= cut:
            return list(tuples[: i + 1]), list(tuples[i + 1 :]), acc
    return list(tuples), [], acc


@dataclass(slots=True)
class _Residual:
    """A parked residual fragment of a split key (zigzag strategy)."""

    key: Key
    tuples: list[StreamTuple]
    home_block: int  # lookupLargePos(k): block holding the first fragment

    @property
    def size(self) -> int:
        return sum(t.weight for t in self.tuples)


class PromptBatchPartitioner:
    """Algorithm 2: partition a quasi-sorted batch into ``p`` data blocks."""

    def __init__(
        self,
        config: PartitionerConfig | None = None,
        *,
        strategy: str = "greedy",
    ) -> None:
        if strategy not in ("greedy", "zigzag"):
            raise ValueError(
                f"strategy must be 'greedy' or 'zigzag', got {strategy!r}"
            )
        self.config = config or PartitionerConfig()
        self.strategy = strategy

    def partition(
        self,
        key_groups: Sequence[KeyGroup],
        num_blocks: int,
        info: BatchInfo,
    ) -> PartitionedBatch:
        """Assign every tuple of ``key_groups`` to one of ``num_blocks`` blocks.

        ``key_groups`` must be (quasi-)sorted by descending size — the
        accumulator's traversal order.  The output's reference table
        (``split_keys``) records every fragmented key.
        """
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        blocks = [DataBlock(i) for i in range(num_blocks)]
        placements: dict[Key, set[int]] = {}
        total_weight = sum(g.size for g in key_groups)
        if not key_groups or total_weight == 0:
            return PartitionedBatch(
                info=info, blocks=blocks, split_keys={}, partitioner_name="prompt"
            )

        # Line 1-3: expected block size, cardinality, and split cutoff.
        p_size = math.ceil(total_weight / num_blocks)
        p_card = max(1, len(key_groups) // num_blocks)
        s_cut = max(1, int((p_size / p_card) * self.config.split_cutoff_scale))

        if self.strategy == "greedy":
            self._greedy_assign(key_groups, blocks, placements, p_size, s_cut)
        else:
            residuals, whole_groups = self._split_pass(
                key_groups, blocks, placements, s_cut
            )
            self._zigzag_pass(whole_groups, blocks, placements)
            self._residual_pass(residuals, blocks, placements, p_size)

        split_keys = {
            k: tuple(sorted(ixs)) for k, ixs in placements.items() if len(ixs) > 1
        }
        return PartitionedBatch(
            info=info,
            blocks=blocks,
            split_keys=split_keys,
            partitioner_name="prompt",
        )

    def partition_stream(
        self,
        key_groups: Sequence[KeyGroup],
        num_blocks: int,
        info: BatchInfo,
    ) -> PlanGenerator:
        """Streaming counterpart of :meth:`partition`.

        A generator that runs the same placement passes on
        :class:`~repro.core.plan_stream.LedgerBlock`\\ s (segment
        references, no per-pass tuple copies), then yields each
        materialized block — in block-index order, with its slice of the
        split-key reference table — and returns the completed
        :class:`PartitionedBatch`.  Byte-identical to the eager plan;
        the only difference is *when* blocks become visible.

        The literal ``zigzag`` strategy has no ledger realization; it
        plans eagerly and replays the finished blocks.
        """
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if self.strategy != "greedy":
            batch = self.partition(key_groups, num_blocks, info)
            for block in batch.blocks:
                yield block, {k for k in batch.split_keys if k in block}
            return batch
        total_weight = sum(g.size for g in key_groups)
        if not key_groups or total_weight == 0:
            empty = [DataBlock(i) for i in range(num_blocks)]
            for block in empty:
                yield block, set()
            return PartitionedBatch(
                info=info, blocks=empty, split_keys={}, partitioner_name="prompt"
            )
        blocks = [LedgerBlock(i) for i in range(num_blocks)]
        placements: dict[Key, set[int]] = {}
        p_size = math.ceil(total_weight / num_blocks)
        p_card = max(1, len(key_groups) // num_blocks)
        s_cut = max(1, int((p_size / p_card) * self.config.split_cutoff_scale))
        self._greedy_assign(
            key_groups,
            blocks,
            placements,
            p_size,
            s_cut,
            place_chunk=lambda target, key, tuples, start, end, weight: (
                target.add_segment(key, tuples, start, end, weight)
            ),
            split=split_segment_chain,
        )
        split_keys = {
            k: tuple(sorted(ixs)) for k, ixs in placements.items() if len(ixs) > 1
        }
        out_blocks: list[DataBlock] = []
        for ledger in blocks:
            block = ledger.materialize()
            out_blocks.append(block)
            yield block, {k for k in split_keys if k in block}
        return PartitionedBatch(
            info=info,
            blocks=out_blocks,
            split_keys=split_keys,
            partitioner_name="prompt",
        )

    # ------------------------------------------------------------------
    # greedy (LPT split + zigzag) strategy
    # ------------------------------------------------------------------
    def _greedy_assign(
        self,
        key_groups: Sequence[KeyGroup],
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        p_size: int,
        s_cut: int,
        *,
        place_chunk: Callable[..., None] | None = None,
        split: Callable = _split_with_weight,
    ) -> None:
        """BestFitDecreasing over split keys, then the zigzag deal.

        Split keys (size > ``S_cut``) carry nearly all the size variance;
        placing each on the currently least-loaded block (LPT — the
        decreasing-order BestFit the zigzag pass emulates) equalizes the
        per-block *split volume*, so the subsequent equal-count zigzag
        deal of the remaining keys lands on blocks with equal headroom —
        balancing size and cardinality simultaneously.  A key bigger
        than half a block is diced into half-block chunks first
        (requirement 3: minimal fragments, each split key touches
        ``ceil(size / (p_size/2))`` blocks at most).

        ``s_cut`` is the cutoff ``partition`` already derived from the
        same ``p_size``/``p_card`` (line 3 of Algorithm 2) — passed
        through rather than recomputed so the two strategies can never
        drift apart under a ``split_cutoff_scale``/``p_card`` change.
        """
        # Chunk size for dicing hot keys: at least half a block (so no
        # block is monopolized under extreme skew and every block keeps
        # headroom for small keys), but when the expected per-block
        # cardinality is tiny (keys comparable to blocks, the Figure 5/6
        # regime) chunks grow toward a full block so each hot key spans
        # the minimal number of blocks.
        chunk_cap = max(1, max(p_size // 2, min(p_size - 1, 2 * s_cut)))

        if place_chunk is None:
            # eager realization: each chunk is sliced out of the chain;
            # the ledger path overrides this with a zero-copy segment
            # reference (same span, same weight)
            def place_chunk(target, key, tuples, start, end, weight):
                target.add_fragment(key, tuples[start:end])

        split_groups = [g for g in key_groups if g.size > s_cut]
        small_groups = [g for g in key_groups if g.size <= s_cut]

        # Phase 1: LPT placement of split keys, diced to chunks.  The
        # chain is walked with an index cursor — each chunk slices only
        # its own span, so a mega-key diced into c chunks copies O(n)
        # tuples total, not the O(c*n) that re-slicing the remaining
        # chain per chunk would.
        for group in split_groups:
            placed = placements.setdefault(group.key, set())
            tuples: Sequence[StreamTuple] = group.tuples
            n = len(tuples)
            start = 0
            while start < n:
                # Shortest span whose weight reaches the chunk cap (the
                # tail chunk takes whatever remains below it), exactly
                # split_group_by_weight's prefix rule.
                acc = 0
                end = start
                while end < n:
                    acc += tuples[end].weight
                    end += 1
                    if acc >= chunk_cap:
                        break
                target = min(blocks, key=lambda b: (b.size, b.cardinality, b.index))
                place_chunk(target, group.key, tuples, start, end, acc)
                placed.add(target.index)
                start = end

        # Phase 2: zigzag deal of the small keys (equal counts per block;
        # quasi-sorted order keeps per-pass sizes comparable).  Blocks
        # already filled by hot-key chunks sit out (capacity awareness —
        # under extreme skew a block can be mostly hot key).
        self._zigzag_pass(small_groups, blocks, placements, capacity=p_size)

        # Phase 3: smooth the leftover size imbalance by relocating the
        # smallest fragments from overfull blocks to underfull ones —
        # cheap (touches only the slack), and only non-split singles
        # move so KSR is unaffected.
        self._rebalance_sizes(blocks, placements, p_size, split=split)

    def _rebalance_sizes(
        self,
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        p_size: int,
        *,
        split: Callable = _split_with_weight,
    ) -> None:
        """Drain blocks above capacity into blocks with room.

        Two kinds of moves, in preference order per step:

        1. relocate a whole single-block key (no fragmentation cost);
        2. *shave*: split the overfull block's largest fragment and ship
           the excess — preferring a receiver that already holds the
           key, so shaving usually extends an existing split instead of
           fragmenting a new key.

        Terminates when no block exceeds ``p_size`` (always reachable:
        total size <= num_blocks * p_size) or the step guard trips.
        """
        # Overshoot within the global ceil slack (num_blocks * p_size -
        # total) is already balanced to within a tuple per block; shaving
        # it off would only fragment another key for nothing.
        slack = len(blocks) * p_size - sum(b.size for b in blocks)
        for _ in range(8 * len(blocks) + 8):
            donor = max(blocks, key=lambda b: (b.size, b.index))
            excess = donor.size - p_size
            if excess <= min(slack, max(0, p_size // 64)) or excess <= 0:
                return
            receiver = min(blocks, key=lambda b: (b.size, b.cardinality, b.index))
            room = p_size - receiver.size
            if room <= 0:
                return  # everything full; nothing can improve
            # Move preference: (1) relocate a whole single-block key no
            # bigger than the excess (gentle, no new fragments);
            # (2) shave the largest fragment — preferring a receiver
            # already holding that key, so shaving extends an existing
            # split; (3) as a last resort for coarse tuple weights,
            # relocate a whole key bigger than the excess (donor drops
            # below capacity, receiver stays within it).
            singles = [
                (fsize, _order_token(k), k)
                for k, fsize in donor.fragment_sizes().items()
                if len(placements.get(k, ())) == 1
            ]
            admissible = [
                (fsize, token, k)
                for fsize, token, k in singles
                if 0 < fsize <= room and donor.size - fsize >= receiver.size
            ]
            within = [a for a in admissible if a[0] <= excess]
            if within:
                fsize, _, key = min(within)
                receiver.install_fragment(key, donor.remove_fragment(key), fsize)
                placements[key] = {receiver.index}
                continue
            # Move 2: shave the donor's largest fragment.
            fsize, _, key = max(
                (fs, _order_token(k), k)
                for k, fs in donor.fragment_sizes().items()
            )
            holders = [
                b
                for b in blocks
                if b is not donor and key in b and b.size < p_size
            ]
            shave_receiver = receiver
            shave_room = room
            if holders:
                shave_receiver = max(holders, key=lambda b: (p_size - b.size, -b.index))
                shave_room = p_size - shave_receiver.size
            piece = min(excess, shave_room, fsize)
            moved = False
            if piece > 0:
                chain = donor.remove_fragment(key)
                keep, move, keep_weight = split(chain, fsize - piece, fsize)
                if move:
                    if keep:
                        donor.install_fragment(key, keep, keep_weight)
                    else:
                        placements[key].discard(donor.index)
                    shave_receiver.install_fragment(key, move, fsize - keep_weight)
                    placements[key].add(shave_receiver.index)
                    moved = True
                else:
                    # Indivisible tuple weights: the shave cannot carve
                    # this piece off; restore and fall through.
                    donor.install_fragment(key, keep, keep_weight)
            if moved:
                continue
            if admissible:
                fsize, _, key = min(admissible)
                receiver.install_fragment(key, donor.remove_fragment(key), fsize)
                placements[key] = {receiver.index}
                continue
            return  # nothing improves within the item granularity

    # ------------------------------------------------------------------
    # literal zigzag strategy (Algorithm 2 as printed)
    # ------------------------------------------------------------------
    def _split_pass(
        self,
        key_groups: Sequence[KeyGroup],
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        s_cut: int,
    ) -> tuple[list[_Residual], list[KeyGroup]]:
        """Lines 5-9: fragment high-frequency keys.

        Because the input is only *quasi*-sorted, we scan the whole list
        for oversize keys rather than stopping at the first small one —
        a stale tracked count must not exempt a genuinely large key.
        """
        residuals: list[_Residual] = []
        whole: list[KeyGroup] = []
        cursor = 0
        num_blocks = len(blocks)
        for group in key_groups:
            if group.size > s_cut:
                fragment, rest = split_group_by_weight(group.tuples, s_cut)
                target = cursor % num_blocks
                blocks[target].add_fragment(group.key, fragment)
                placements.setdefault(group.key, set()).add(target)
                cursor += 1
                if rest:
                    residuals.append(
                        _Residual(key=group.key, tuples=rest, home_block=target)
                    )
            else:
                whole.append(group)
        return residuals, whole

    def _zigzag_pass(
        self,
        key_groups: Sequence[KeyGroup],
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        capacity: int | None = None,
    ) -> None:
        """Lines 10-16: deal unsplit keys one per block, reversing each pass.

        With ``capacity`` set, blocks at or over it sit out the deal
        (re-checked at every pass boundary); if everything is full the
        deal continues over all blocks — the rebalance phase mops up.
        """
        order = [b.index for b in blocks]
        i = len(order)  # force order (re)build on first key
        for group in key_groups:
            if i >= len(order):
                if capacity is not None:
                    open_ixs = [b.index for b in blocks if b.size < capacity]
                    order = open_ixs if open_ixs else [b.index for b in blocks]
                order.reverse()
                i = 0
            target = order[i]
            blocks[target].add_fragment(group.key, group.tuples)
            placements.setdefault(group.key, set()).add(target)
            i += 1

    def _residual_pass(
        self,
        residuals: list[_Residual],
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        p_size: int,
    ) -> None:
        """Lines 17-25: place residuals, preferring key locality, then BestFit."""
        for residual in residuals:
            self._place_residual(residual, blocks, placements, p_size)

    def _place_residual(
        self,
        residual: _Residual,
        blocks: list[DataBlock],
        placements: dict[Key, set[int]],
        p_size: int,
    ) -> None:
        key = residual.key
        tuples = residual.tuples
        placed = placements.setdefault(key, set())

        def remaining(block: DataBlock) -> int:
            return p_size - block.size

        # Key locality first: the block that already holds the key's
        # large fragment (lines 18-22).
        home = blocks[residual.home_block]
        size = sum(t.weight for t in tuples)
        if size <= remaining(home):
            home.add_fragment(key, tuples)
            placed.add(home.index)
            return
        if remaining(home) > 0:
            head, tuples = split_group_by_weight(tuples, remaining(home))
            home.add_fragment(key, head)
            placed.add(home.index)

        # BestFit for the rest: among blocks that can hold it whole,
        # prefer the lowest-cardinality one, breaking ties toward the
        # fullest; fragment across successively fuller blocks only when
        # nothing fits.
        while tuples:
            size = sum(t.weight for t in tuples)
            open_blocks = [b for b in blocks if remaining(b) > 0]
            if not open_blocks:
                fallback = min(blocks, key=lambda b: (b.size, b.index))
                fallback.add_fragment(key, tuples)
                placed.add(fallback.index)
                return
            fitting = [b for b in open_blocks if remaining(b) >= size]
            if fitting:
                best = min(
                    fitting, key=lambda b: (b.cardinality, remaining(b), b.index)
                )
                best.add_fragment(key, tuples)
                placed.add(best.index)
                return
            roomiest = max(open_blocks, key=lambda b: (remaining(b), -b.index))
            head, tuples = split_group_by_weight(tuples, remaining(roomiest))
            roomiest.add_fragment(key, head)
            placed.add(roomiest.index)
