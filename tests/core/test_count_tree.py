"""CountTree: AVL invariants, handle-based updates, traversal order."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.count_tree import CountTree


def test_empty_tree():
    tree = CountTree()
    assert len(tree) == 0
    assert not tree
    assert list(tree.in_order()) == []
    assert list(tree.in_order_desc()) == []
    assert tree.min_node() is None
    assert tree.max_node() is None
    tree.check_invariants()


def test_single_insert():
    tree = CountTree()
    node = tree.insert("a", 5)
    assert len(tree) == 1
    assert node.key == "a"
    assert node.count == 5
    assert tree.min_node() is node
    assert tree.max_node() is node
    tree.check_invariants()


def test_insert_rejects_negative_count():
    tree = CountTree()
    with pytest.raises(ValueError):
        tree.insert("a", -1)


def test_update_rejects_negative_count():
    tree = CountTree()
    node = tree.insert("a", 1)
    with pytest.raises(ValueError):
        tree.update(node, -2)


def test_in_order_is_ascending_by_count():
    tree = CountTree()
    for i, count in enumerate([5, 3, 8, 1, 9, 2]):
        tree.insert(f"k{i}", count)
    counts = [n.count for n in tree.in_order()]
    assert counts == sorted(counts)
    tree.check_invariants()


def test_in_order_desc_is_reverse_of_in_order():
    tree = CountTree()
    for i in range(20):
        tree.insert(f"k{i}", (i * 7) % 13)
    fwd = [(n.count, n.key) for n in tree.in_order()]
    bwd = [(n.count, n.key) for n in tree.in_order_desc()]
    assert bwd == list(reversed(fwd))


def test_ties_break_deterministically_by_key_token():
    tree = CountTree()
    tree.insert("b", 4)
    tree.insert("a", 4)
    tree.insert("c", 4)
    keys = [n.key for n in tree.in_order()]
    assert keys == sorted(keys)


def test_update_repositions_node():
    tree = CountTree()
    a = tree.insert("a", 1)
    tree.insert("b", 5)
    tree.insert("c", 10)
    tree.update(a, 7)
    assert [n.key for n in tree.in_order()] == ["b", "a", "c"]
    assert a.count == 7
    tree.check_invariants()


def test_update_to_same_count_is_noop():
    tree = CountTree()
    a = tree.insert("a", 3)
    tree.insert("b", 3)
    before = [n.key for n in tree.in_order()]
    tree.update(a, 3)
    assert [n.key for n in tree.in_order()] == before
    tree.check_invariants()


def test_handles_stay_valid_across_many_updates():
    """The HTable holds node references; updates must never invalidate them."""
    tree = CountTree()
    nodes = {k: tree.insert(k, 1) for k in "abcdefghij"}
    rng = random.Random(42)
    for _ in range(500):
        key = rng.choice("abcdefghij")
        nodes[key].count  # handle is alive
        tree.update(nodes[key], rng.randint(0, 100))
        tree.check_invariants()
    assert len(tree) == 10
    in_tree = {n.key for n in tree.in_order()}
    assert in_tree == set("abcdefghij")


def test_remove_node():
    tree = CountTree()
    nodes = {k: tree.insert(k, i) for i, k in enumerate("abcde")}
    tree.remove(nodes["c"])
    assert len(tree) == 4
    assert [n.key for n in tree.in_order()] == ["a", "b", "d", "e"]
    tree.check_invariants()


def test_remove_all_nodes_in_random_order():
    tree = CountTree()
    rng = random.Random(3)
    nodes = [tree.insert(f"k{i}", rng.randint(0, 50)) for i in range(60)]
    rng.shuffle(nodes)
    for i, node in enumerate(nodes):
        tree.remove(node)
        tree.check_invariants()
        assert len(tree) == 60 - i - 1
    assert not tree


def test_clear_resets_everything():
    tree = CountTree()
    for i in range(10):
        tree.insert(f"k{i}", i)
    tree.clear()
    assert len(tree) == 0
    assert list(tree.in_order()) == []
    tree.insert("fresh", 1)
    assert len(tree) == 1


def test_large_tree_traversal_is_iterative():
    """100k keys must traverse without hitting the recursion limit."""
    tree = CountTree()
    for i in range(100_000):
        tree.insert(i, i % 997)
    assert len(tree) == 100_000
    counts = [n.count for n in tree.in_order()]
    assert counts == sorted(counts)


def test_min_max_nodes():
    tree = CountTree()
    for i, c in enumerate([4, 9, 1, 7, 3]):
        tree.insert(f"k{i}", c)
    assert tree.min_node().count == 1
    assert tree.max_node().count == 9


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 1000)),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_matches_sorted_model(ops):
    """Random insert/update sequences match a sorted-list model."""
    tree = CountTree()
    nodes = {}
    model = {}
    for key, count in ops:
        if key in nodes:
            tree.update(nodes[key], count)
        else:
            nodes[key] = tree.insert(key, count)
        model[key] = count
    tree.check_invariants()
    got = [(n.count, n.key) for n in tree.in_order()]
    expected = sorted((c, k) for k, c in model.items())
    assert [c for c, _ in got] == [c for c, _ in expected]
    assert {k for _, k in got} == set(model)


@given(
    st.lists(st.tuples(st.integers(0, 15), st.booleans()), max_size=120)
)
@settings(max_examples=60, deadline=None)
def test_property_insert_remove_interleaved(ops):
    """Interleaved inserts and removals keep AVL invariants and size."""
    tree = CountTree()
    nodes = {}
    for key, is_remove in ops:
        if is_remove and key in nodes:
            tree.remove(nodes.pop(key))
        elif not is_remove and key not in nodes:
            nodes[key] = tree.insert(key, key * 3)
        tree.check_invariants()
    assert len(tree) == len(nodes)
