"""Stream receiver: per-interval ingestion with Early Batch Release.

The receiver is the component the paper customizes to host Algorithm 1
("Algorithm 1 is implemented in a customized receiver", Section 7).
Here it owns interval bookkeeping: which tuples belong to which batch.
For techniques using the accumulator (Prompt), the batching cut-off
precedes the heartbeat by the early-release slack (Section 4.2);
tuples arriving inside the slack are *carried over* into the following
batch.  Baselines cut exactly at the heartbeat — their per-tuple
partitioning decisions need no slack.
"""

from __future__ import annotations

from typing import Optional

from ..core.batch import BatchInfo
from ..core.early_release import EarlyReleaseController, ReleaseWindow
from ..core.tuples import StreamTuple
from ..workloads.source import StreamSource
from .lateness import LatenessMonitor

__all__ = ["Receiver"]


class Receiver:
    """Pulls tuples from a source and frames them into batch payloads."""

    def __init__(
        self,
        source: StreamSource,
        *,
        early_release: EarlyReleaseController | None = None,
        use_cutoff: bool = False,
        lateness: LatenessMonitor | None = None,
    ) -> None:
        self.source = source
        self.early_release = early_release or EarlyReleaseController()
        self.use_cutoff = use_cutoff
        self.lateness = lateness
        self._fetched_through: Optional[float] = None

    def reset(self) -> None:
        self.source.reset()
        self._fetched_through = None

    def collect(self, info: BatchInfo) -> tuple[list[StreamTuple], ReleaseWindow]:
        """All tuples belonging to batch ``info`` plus its release window.

        With ``use_cutoff`` the batch spans
        ``[previous cutoff, this cutoff)``; without it,
        ``[previous heartbeat, this heartbeat)``.  Consecutive calls
        must use consecutive intervals.
        """
        window = self.early_release.window_for(info)
        boundary = window.cutoff if self.use_cutoff else window.heartbeat
        start = self._fetched_through
        if start is None:
            start = info.t_start
        if boundary < start:
            raise ValueError(
                f"batch boundary {boundary:.6f} precedes already-fetched "
                f"point {start:.6f}; intervals must advance"
            )
        tuples = self.source.tuples_between(start, boundary)
        self._fetched_through = boundary
        if self.lateness is not None:
            tuples = self.lateness.admit(tuples, info)
        return tuples, window
