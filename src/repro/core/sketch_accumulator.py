"""Sketch-backed micro-batch accumulator (tuple-at-a-time style stats).

An alternative to Algorithm 1's CountTree: instead of a balanced BST of
(approximate) counts with budgeted repositioning, keep a
:class:`~repro.core.sketches.SpaceSavingSketch` of the hottest keys and
leave everything else unordered.  This is how the tuple-at-a-time
systems in the paper's related work track skew (Section 9) — constant
statistics state and no tree rebalancing — at the cost of a *partially*
sorted key list: only the sketch's tracked heavy hitters are ordered;
the long tail is emitted in arrival order.

Algorithm 2 tolerates that (the split pass scans the whole list and
small keys are placement-insensitive), so this accumulator trades
partition quality on mid-weight keys for per-tuple cheapness — the
sketch-vs-tree ablation quantifies the trade.
"""

from __future__ import annotations

from typing import Optional

from .batch import BatchInfo
from .buffering import AccumulatedBatch
from .sketches import SpaceSavingSketch
from .tuples import Key, KeyGroup, StreamTuple

__all__ = ["SketchMicroBatchAccumulator"]


class SketchMicroBatchAccumulator:
    """Buffer tuples with Space-Saving statistics instead of a CountTree."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sketch = SpaceSavingSketch(capacity)
        self._chains: dict[Key, list[StreamTuple]] = {}
        self._info: Optional[BatchInfo] = None
        self._tuple_count = 0
        self._weight = 0

    # ------------------------------------------------------------------
    @property
    def info(self) -> BatchInfo:
        if self._info is None:
            raise RuntimeError("accumulator has no open interval; call start_interval")
        return self._info

    @property
    def tuple_count(self) -> int:
        return self._tuple_count

    @property
    def key_count(self) -> int:
        return len(self._chains)

    # ------------------------------------------------------------------
    def start_interval(self, info: BatchInfo) -> None:
        if info.t_end <= info.t_start:
            raise ValueError(f"empty batch interval: {info}")
        self._chains.clear()
        self.sketch.clear()
        self._info = info
        self._tuple_count = 0
        self._weight = 0

    def accept(self, t: StreamTuple, now: float | None = None) -> None:
        """Chain the tuple under its key; O(1) sketch update."""
        self.info  # raises if no interval open
        chain = self._chains.get(t.key)
        if chain is None:
            self._chains[t.key] = [t]
        else:
            chain.append(t)
        self.sketch.add(t.key)
        self._tuple_count += 1
        self._weight += t.weight

    def accept_all(self, tuples) -> None:
        for t in tuples:
            self.accept(t)

    def finalize(self) -> AccumulatedBatch:
        """Emit heavy hitters (sketch order) first, then the untracked tail.

        ``tracked_count`` carries the sketch estimate for tracked keys
        and the exact chain length otherwise (the tail is exact anyway —
        its keys just are not *ordered*).
        """
        info = self.info
        groups: list[KeyGroup] = []
        seen: set[Key] = set()
        for key, estimate in self.sketch.items():
            chain = self._chains.get(key)
            if chain is None:
                continue  # evicted key re-tracked under an old identity
            groups.append(KeyGroup(key=key, tuples=chain, tracked_count=estimate))
            seen.add(key)
        for key, chain in self._chains.items():
            if key not in seen:
                groups.append(
                    KeyGroup(key=key, tuples=chain, tracked_count=len(chain))
                )
        batch = AccumulatedBatch(
            info=info,
            key_groups=groups,
            tuple_count=self._tuple_count,
            total_weight=self._weight,
            tree_updates=0,
        )
        self._chains = {}
        self.sketch.clear()
        self._info = None
        return batch
