"""Run reports: sparklines and rendered summaries."""

from __future__ import annotations

import pytest

from repro.bench.report import render_run, sparkline
from repro.core.config import ElasticityConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import FailureInjector
from repro.engine.tasks import TaskCostModel
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source


def test_sparkline_scaling():
    line = sparkline([0.0, 0.5, 1.0], lo=0.0, hi=1.0)
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"


def test_sparkline_clamps_outliers():
    line = sparkline([5.0, -1.0], lo=0.0, hi=1.0)
    assert line == "█▁"


def test_sparkline_single_value_uses_own_range():
    # one sample has zero span -> middle bar, not a crash
    assert sparkline([7.3]) == "▄"


def test_sparkline_pinned_scale_overrides_data_range():
    # same data, different pins -> different bars
    wide = sparkline([1.0, 2.0], lo=0.0, hi=10.0)
    tight = sparkline([1.0, 2.0], lo=1.0, hi=2.0)
    assert wide == "▁▂"
    assert tight == "▁█"


def test_sparkline_pinned_inverted_range_is_flat():
    # lo > hi is a degenerate pin: span <= 0 renders flat
    assert sparkline([1.0, 5.0], lo=10.0, hi=0.0) == "▄▄"


def _run(**kw):
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        **kw,
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(window_length=1.0),
        config,
        failure_injector=kw.pop("injector", None) if "injector" in kw else None,
    )
    source = synd_source(0.8, num_keys=200, arrival=ConstantRate(1_000.0), seed=2)
    return engine.run(source, 6)


def test_render_basic_run():
    text = render_run(_run(track_outputs=False), title="demo")
    assert text.startswith("demo\n====")
    assert "batches:        6" in text
    assert "stable:         yes" in text
    assert "latency:" in text


def test_render_includes_scaling_section():
    result = _run(
        track_outputs=False,
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=1, grace=0,
            max_map_tasks=8, max_reduce_tasks=8,
        ),
        cost_model=TaskCostModel(map_per_tuple=1e-3),
    )
    text = render_run(result)
    if any(d.acted for d in result.scaling_history):
        assert "scaling:" in text
        assert "map tasks:" in text


def test_render_includes_recoveries():
    config = EngineConfig(
        batch_interval=0.5, num_blocks=2, num_reducers=2, replicate_inputs=True
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(window_length=1.0),
        config,
        failure_injector=FailureInjector([1]),
    )
    source = synd_source(0.8, num_keys=100, arrival=ConstantRate(500.0), seed=3)
    text = render_run(engine.run(source, 4))
    assert "recoveries:     1 (1 matched" in text


def test_render_no_batches():
    result = _run(track_outputs=False)
    result.stats.records.clear()
    text = render_run(result, title="empty")
    assert "(no batches executed)" in text
    # none of the per-batch sections should render
    assert "latency:" not in text
    assert "load W:" not in text


def test_render_reports_instability():
    result = _run(
        track_outputs=False,
        cost_model=TaskCostModel(map_per_tuple=5e-3),
    )
    text = render_run(result)
    assert "NO (back-pressure at batch" in text
