"""Execution-backend microbenchmark: serial vs parallel wall-clock.

Runs the Zipf-skew (SynD) WordCount workload through both execution
backends and records real wall-clock per backend, in a light variant
(IPC-dominated — parallel dispatch is expected to cost more than it
saves) and a CPU-heavy variant (where one process per data block pays
off).  The bench itself asserts bit-identical outputs before reporting
any timing, so the artifact can never show a speedup obtained by
changing the answer.

Artifact: ``benchmarks/results/BENCH_parallel_speedup.json``.
"""

from __future__ import annotations

from repro.bench import bench_parallel_speedup, format_table


def test_parallel_speedup(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_parallel_speedup(
            rate=4_000.0,
            num_batches=5,
            num_keys=2_000,
            exponent=1.4,
            num_blocks=8,
            workers=2,
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "BENCH_parallel_speedup",
        format_table(rows, title="Serial vs parallel backend wall-clock"),
        rows,
        store=dict(workload="synd-z1.4", partitioner="prompt"),
    )
    assert len(rows) == 2
    for row in rows:
        # equality is asserted inside the bench; re-check the flag here
        assert row["OutputsIdentical"] is True
        assert row["ParallelFallbacks"] == 0
        assert row["SerialWallSeconds"] > 0
        assert row["ParallelWallSeconds"] > 0
    heavy = next(r for r in rows if r["Workload"] == "wordcount-heavy")
    # Parallel dispatch can only beat serial when there are cores to
    # fan out to; on a single-core box the artifact records the honest
    # loss and we only sanity-check the run wasn't pathological.
    if heavy["CpuCount"] >= 4:
        assert heavy["Speedup"] > 0.9
    else:
        assert heavy["Speedup"] > 0.2
