"""The benchmark queries of Section 7.1, compiled to Map-Reduce form."""

from .base import (
    Aggregator,
    CountAggregator,
    Query,
    SumAggregator,
    SumCountAggregator,
    WindowSpec,
)
from .debs import debs_query1, debs_query2
from .gcm import gcm_avg_cpu_query, gcm_total_memory_query
from .topk import select_top_k, topk_query
from .tpch import tpch_query1, tpch_query6
from .wordcount import wordcount_query

__all__ = [
    "Aggregator",
    "CountAggregator",
    "Query",
    "SumAggregator",
    "SumCountAggregator",
    "WindowSpec",
    "debs_query1",
    "debs_query2",
    "gcm_avg_cpu_query",
    "gcm_total_memory_query",
    "select_top_k",
    "topk_query",
    "tpch_query1",
    "tpch_query6",
    "wordcount_query",
]
