"""Engine wiring of the worker-load feedback channel.

The contract under test: a partitioner with ``uses_feedback = True``
receives, immediately before batch ``k`` is partitioned, the observed
load of every batch ``<= k - FEEDBACK_LAG`` in batch order — the same
sequence under the sequential and pipelined drivers — and a partitioner
that does not opt in is never called at all.
"""

from __future__ import annotations

import logging

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.partitioners import FEEDBACK_LAG
from repro.partitioners.hashing import HashPartitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source

NUM_BATCHES = 6


class RecordingPartitioner(HashPartitioner):
    """Hash layout, but logs the interleaving of partition/feedback calls."""

    name = "spy-hash"
    uses_feedback = True

    def __init__(self) -> None:
        super().__init__()
        self.events: list[tuple[str, int]] = []
        self.feedback = []

    def partition(self, tuples, num_blocks, info):
        self.events.append(("partition", info.index))
        return super().partition(tuples, num_blocks, info)

    def observe_load(self, feedback) -> None:
        self.events.append(("feedback", feedback.batch_index))
        self.feedback.append(feedback)


class DeafPartitioner(RecordingPartitioner):
    """Records like the spy but has not opted in — must stay silent."""

    name = "deaf-hash"
    uses_feedback = False


def _run(partitioner, *, depth: int = 1, executor: str = "serial"):
    cfg = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        executor=executor,
        executor_workers=2,
        run_seed=13,
        pipeline_depth=depth,
    )
    engine = MicroBatchEngine(partitioner, wordcount_query(window_length=3.0), cfg)
    source = synd_source(1.2, num_keys=300, arrival=ConstantRate(1_000.0), seed=11)
    return engine.run(source, NUM_BATCHES)


def _expected_events(num_batches: int) -> list[tuple[str, int]]:
    events: list[tuple[str, int]] = []
    for k in range(num_batches):
        if k >= FEEDBACK_LAG:
            events.append(("feedback", k - FEEDBACK_LAG))
        events.append(("partition", k))
    return events


def test_sequential_driver_delivers_with_fixed_lag():
    spy = RecordingPartitioner()
    _run(spy, depth=1)
    assert spy.events == _expected_events(NUM_BATCHES)


@pytest.mark.parametrize("executor", ("serial", "parallel"))
def test_pipelined_driver_delivers_the_same_sequence(executor):
    """Depth 2 reorders *when* work happens, never what the partitioner
    observes: the interleaving is identical to the sequential driver."""
    reference = RecordingPartitioner()
    _run(reference, depth=1)
    pipelined = RecordingPartitioner()
    _run(pipelined, depth=2, executor=executor)
    assert pipelined.events == reference.events


def test_feedback_carries_the_executed_batch_load():
    spy = RecordingPartitioner()
    result = _run(spy, depth=1)
    by_index = {r.index: r for r in result.stats.records}
    assert len(spy.feedback) == NUM_BATCHES - FEEDBACK_LAG
    for fb in spy.feedback:
        record = by_index[fb.batch_index]
        assert sum(fb.block_sizes) == record.tuple_count
        assert len(fb.block_loads) == len(fb.block_sizes) == 4
        assert all(load > 0.0 for load in fb.block_loads)
        assert len(fb.bucket_loads) == len(fb.bucket_weights) == 4


def test_non_consumers_never_receive_feedback():
    deaf = DeafPartitioner()
    _run(deaf, depth=2, executor="serial")
    assert all(kind == "partition" for kind, _ in deaf.events)


def test_deep_pipelines_are_clamped_for_feedback_consumers(caplog):
    """Beyond ``FEEDBACK_LAG`` batches in flight, lag-2 delivery could no
    longer be honored — the engine clamps the depth and says so."""
    spy = RecordingPartitioner()
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        _run(spy, depth=4, executor="serial")
    assert spy.events == _expected_events(NUM_BATCHES)
    assert any("pipeline_depth" in message for message in caplog.messages)

    deaf = DeafPartitioner()
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        _run(deaf, depth=4, executor="serial")
    # non-consumers keep their requested depth
    assert not any("feedback" in m for m in caplog.messages[1:])
