"""Prompt's core contribution: frequency-aware buffering, B-BPFI batch
partitioning, B-BPVC reduce allocation, elasticity, and the cost model.
"""

from .batch import BatchInfo, DataBlock, PartitionedBatch
from .batch_partitioner import PromptBatchPartitioner, split_group_by_weight
from .buffering import AccumulatedBatch, MicroBatchAccumulator
from .config import (
    AccumulatorConfig,
    EarlyReleaseConfig,
    ElasticityConfig,
    MPIWeights,
    PartitionerConfig,
    PromptConfig,
)
from .count_tree import CountNode, CountTree
from .early_release import EarlyReleaseController, ReleaseWindow
from .elasticity import AutoScaler, ScalingDecision, Zone
from .hashing import candidate_buckets, hash_to_bucket, stable_hash
from .htable import HTable, KeyRecord
from .metrics import (
    PartitionQuality,
    block_cardinality_imbalance,
    block_size_imbalance,
    evaluate_partition,
    key_split_ratio,
    micro_batch_partitioning_imbalance,
    relative_metric,
)
from .sketch_accumulator import SketchMicroBatchAccumulator
from .sketches import LossyCountingSketch, SpaceSavingSketch
from .reduce_allocator import (
    BucketAssignment,
    KeyCluster,
    ReduceBucketAllocator,
    hash_allocate,
)
from .tuples import KeyGroup, StreamTuple, TupleBuffer, group_by_key, sorted_key_groups

__all__ = [
    "AccumulatedBatch",
    "AccumulatorConfig",
    "AutoScaler",
    "BatchInfo",
    "BucketAssignment",
    "CountNode",
    "CountTree",
    "DataBlock",
    "EarlyReleaseConfig",
    "EarlyReleaseController",
    "ElasticityConfig",
    "HTable",
    "KeyCluster",
    "KeyGroup",
    "KeyRecord",
    "LossyCountingSketch",
    "MPIWeights",
    "MicroBatchAccumulator",
    "PartitionQuality",
    "PartitionedBatch",
    "PartitionerConfig",
    "PromptBatchPartitioner",
    "PromptConfig",
    "ReduceBucketAllocator",
    "ReleaseWindow",
    "ScalingDecision",
    "SketchMicroBatchAccumulator",
    "SpaceSavingSketch",
    "StreamTuple",
    "TupleBuffer",
    "Zone",
    "block_cardinality_imbalance",
    "block_size_imbalance",
    "candidate_buckets",
    "evaluate_partition",
    "group_by_key",
    "hash_allocate",
    "hash_to_bucket",
    "key_split_ratio",
    "micro_batch_partitioning_imbalance",
    "relative_metric",
    "sorted_key_groups",
    "split_group_by_weight",
    "stable_hash",
]
