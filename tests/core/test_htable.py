"""HTable: per-key chains, counters, and reset semantics."""

from __future__ import annotations

from repro.core.htable import HTable, KeyRecord
from repro.core.tuples import StreamTuple


def _t(key, ts=0.0, weight=1):
    return StreamTuple(ts=ts, key=key, weight=weight)


def test_empty_table():
    table = HTable()
    assert len(table) == 0
    assert table.tuple_count == 0
    assert table.weight == 0
    assert "a" not in table
    assert table.get("a") is None


def test_append_creates_record_and_counts():
    table = HTable()
    record, was_new = table.append(_t("a"))
    assert isinstance(record, KeyRecord)
    assert was_new
    assert "a" in table
    assert len(table) == 1
    assert table.tuple_count == 1
    assert record.freq_current == 1
    assert record.weight == 1


def test_append_chains_under_same_key():
    table = HTable()
    table.append(_t("a"))
    record, was_new = table.append(_t("a", ts=0.1))
    assert not was_new
    assert len(table) == 1
    assert table.tuple_count == 2
    assert record.freq_current == 2
    assert len(record.tuples) == 2
    assert [t.ts for t in record.tuples] == [0.0, 0.1]


def test_weight_accumulates():
    table = HTable()
    table.append(_t("a", weight=2))
    table.append(_t("b", weight=3))
    assert table.weight == 5
    assert table.get("a").weight == 2


def test_pending_delta():
    table = HTable()
    record, _ = table.append(_t("a"))
    record.freq_updated = 1
    table.append(_t("a"))
    table.append(_t("a"))
    assert record.pending_delta == 2


def test_record_for_is_idempotent():
    table = HTable()
    r1 = table.record_for("x")
    r2 = table.record_for("x")
    assert r1 is r2
    assert len(table) == 1
    # record_for alone does not count tuples
    assert table.tuple_count == 0


def test_iteration_yields_records():
    table = HTable()
    for k in ("a", "b", "c"):
        table.append(_t(k))
    assert {r.key for r in table} == {"a", "b", "c"}


def test_clear_resets_everything():
    table = HTable()
    for k in ("a", "b"):
        table.append(_t(k))
    table.clear()
    assert len(table) == 0
    assert table.tuple_count == 0
    assert table.weight == 0
    assert table.get("a") is None
