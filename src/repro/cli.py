"""Command-line interface: run experiments and demos without writing code.

Usage::

    python -m repro list                      # available experiments
    python -m repro run table1                # regenerate one artifact
    python -m repro run fig10 --dataset tpch
    python -m repro run fig11d --quick        # reduced-scale sweep
    python -m repro quickstart                # the quickstart demo
    python -m repro quickstart --trace t.json --metrics m.prom
    python -m repro trace summarize t.json    # per-phase breakdown
    python -m repro bench fill                # run missing matrix cells
    python -m repro bench report --markdown   # cross-PR trajectories
    python -m repro bench regress             # noise-band gate (exit 1)
    python -m repro bench ingest BENCH_x.json # backfill an artifact

Each ``run`` prints the paper-style table and writes JSON next to the
benchmarks (``benchmarks/results/``).  All user-facing output goes
through a ``logging``-based reporter: ``--quiet`` silences it and
``--log-level`` additionally streams package diagnostics to stderr,
while the default level keeps stdout byte-identical to the historical
``print`` output.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Any, Callable, Optional

from .bench import (
    bench_parallel_speedup,
    bench_streaming_dispatch,
    bench_vectorized_ingest,
    fig6_assignment_tradeoffs,
    fig10_partition_metrics,
    fig11_throughput_vs_interval,
    fig11d_skew_sweep,
    fig12_elasticity,
    fig13_latency_distribution,
    fig14a_post_sort_throughput,
    fig14b_partition_overhead,
    format_table,
    ingest_gate,
    joint_imbalance_score,
    partitioner_shootout,
    results_dir,
    save_results,
    streaming_gate,
    table1_dataset_stats,
)
from .bench.matrix import GRIDS, fill, render_matrix_report
from .bench.regress import find_regressions, regression_rows
from .bench.store import ResultsStore, default_store_path, ingest_artifact
from .engine.executors import EXECUTOR_NAMES, ExecutorKind
from .engine.sharding.router import ROUTER_NAMES
from .obs import ObservabilityConfig, format_trace_summary, summarize_trace
from .partitioners.registry import PARTITIONER_NAMES

__all__ = ["main", "EXPERIMENTS"]

log = logging.getLogger(__name__)

#: logger carrying user-facing CLI output (bare messages to stdout)
_REPORTER = "repro.cli.report"


def _configure_logging(args: argparse.Namespace) -> logging.Logger:
    """(Re)build the CLI logging pipeline for one invocation.

    The reporter logger writes bare messages to stdout — byte-identical
    to the former ``print`` calls at the default level — so library
    consumers can silence or redirect CLI output like any other logger.
    ``--quiet`` raises the reporter threshold; ``--log-level`` attaches
    a stderr diagnostics handler to the package logger.  Handlers are
    rebuilt on every call so repeated ``main()`` invocations (e.g. the
    test suite) never stack duplicates.
    """
    reporter = logging.getLogger(_REPORTER)
    for handler in list(reporter.handlers):
        reporter.removeHandler(handler)
    out = logging.StreamHandler(sys.stdout)
    out.setFormatter(logging.Formatter("%(message)s"))
    reporter.addHandler(out)
    reporter.propagate = False
    quiet = getattr(args, "quiet", False)
    reporter.setLevel(logging.ERROR if quiet else logging.INFO)

    package = logging.getLogger("repro")
    for handler in list(package.handlers):
        if getattr(handler, "_repro_cli", False):
            package.removeHandler(handler)
    level_name = getattr(args, "log_level", None)
    if level_name:
        diag = logging.StreamHandler(sys.stderr)
        diag.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        diag._repro_cli = True  # type: ignore[attr-defined]
        package.addHandler(diag)
        package.setLevel(getattr(logging, level_name.upper()))
    return reporter


def _obs_config(args: argparse.Namespace) -> Optional[ObservabilityConfig]:
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    jsonl = getattr(args, "jsonl", None)
    if not (trace or metrics or jsonl):
        return None
    return ObservabilityConfig(
        trace_path=trace, metrics_path=metrics, jsonl_path=jsonl
    )


def _run_table1(args: argparse.Namespace) -> tuple[str, Any]:
    rows = table1_dataset_stats()
    return format_table(rows, title="Table 1: dataset properties"), rows


def _run_fig6(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig6_assignment_tradeoffs()
    return format_table(rows, title="Figure 6: assignment trade-offs"), rows


def _run_fig10(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig10_partition_metrics(args.dataset)
    return (
        format_table(rows, title=f"Figure 10 ({args.dataset}): partitioning metrics"),
        rows,
    )


def _run_fig11(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"cost_scale": 2.0}
    if args.quick:
        kwargs.update(
            intervals=(1.0,), num_batches=3, num_keys=5_000, tolerance=0.2
        )
    rows = fig11_throughput_vs_interval(**kwargs)
    return format_table(rows, title="Figure 11a-c: throughput vs batch interval"), rows


def _run_fig11d(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"cost_scale": 2.0}
    if args.quick:
        kwargs.update(
            exponents=(0.2, 1.0, 1.8),
            batch_interval=1.0,
            num_batches=3,
            num_keys=5_000,
            tolerance=0.2,
        )
    rows = fig11d_skew_sweep(**kwargs)
    return format_table(rows, title="Figure 11d: throughput vs Zipf exponent"), rows


def _run_fig12(args: argparse.Namespace) -> tuple[str, Any]:
    result = fig12_elasticity(direction=args.direction)
    text = format_table(
        result["series"], title=f"Figure 12 (scale-{args.direction}): task tracking"
    )
    return text, result


def _run_fig13(args: argparse.Namespace) -> tuple[str, Any]:
    out = fig13_latency_distribution()
    rows = [
        {
            "Technique": name,
            "MeanReduceTime": d["mean_reduce_time"],
            "MeanSpread": d["mean_spread"],
            "LatencyP95": d["latency_p95"],
        }
        for name, d in out["techniques"].items()
    ]
    return format_table(rows, title="Figure 13: reduce-time distribution"), rows


def _run_fig14a(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig14a_post_sort_throughput(cost_scale=2.0)
    return format_table(rows, title="Figure 14a: post-sort ablation"), rows


def _run_fig14b(args: argparse.Namespace) -> tuple[str, Any]:
    rows = fig14b_partition_overhead()
    return format_table(rows, title="Figure 14b: partitioning overhead"), rows


def _run_speedup(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"workers": args.workers}
    if args.quick:
        kwargs.update(rate=2_000.0, num_batches=3, num_keys=1_000)
    rows = bench_parallel_speedup(**kwargs)
    return (
        format_table(rows, title="Serial vs parallel backend wall-clock"),
        rows,
    )


def _run_streaming(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {}
    if args.quick:
        kwargs.update(rate=10_000.0, num_batches=3, num_keys=2_000, repeats=2)
    rows = bench_streaming_dispatch(**kwargs)
    gate = streaming_gate(rows)
    text = format_table(
        rows, title="Streaming dispatch: eager vs streamed wall-clock"
    )
    text += "\n\n" + format_table(
        [gate], title="Gate: streamed wall <= 0.92x eager (multi-core)"
    )
    return text, {"rows": rows, "gate": gate}


def _run_ingest(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {}
    if args.quick:
        kwargs.update(rate=10_000.0, num_batches=3, reps=2)
    rows = bench_vectorized_ingest(**kwargs)
    gate = ingest_gate(rows)
    text = format_table(
        rows,
        columns=[
            "Row",
            "ZipfExponent",
            "NumKeys",
            "ExactUpdates",
            "Tuples",
            "PythonSeconds",
            "NumpySeconds",
            "Speedup",
            "NumpyTuplesPerSec",
        ],
        title="Vectorized ingest kernels: python oracle vs numpy wall-clock",
    )
    text += "\n\n" + format_table([gate], title="Gate: geomean >= 3x, per-row floor 2x")
    return text, {"rows": rows, "gate": gate}


def _run_shootout(args: argparse.Namespace) -> tuple[str, Any]:
    kwargs: dict[str, Any] = {"cost_scale": 2.0}
    if args.quick:
        kwargs.update(
            rate=3_000.0,
            num_keys=1_500,
            num_batches=4,
            runtime_batches=4,
        )
    payload = partitioner_shootout(**kwargs)
    for row in payload["quality"]:
        row["JointScore"] = joint_imbalance_score(row)
    text = format_table(
        payload["quality"],
        columns=["Scenario", "Skew", "Technique", "BSI", "BCI", "KSR", "MPI", "JointScore"],
        title="Partitioner shoot-out: partition quality",
    )
    text += "\n\n" + format_table(
        payload["runtime"],
        columns=["Scenario", "Technique", "LatencyMean", "LatencyP95", "Throughput", "Stable"],
        title="Partitioner shoot-out: runtime at fixed offered rate",
    )
    return text, payload


def _run_sharded(args: argparse.Namespace) -> tuple[str, Any]:
    """Sharded-topology demo: a multi-tenant union over N engines.

    Exercises the v1 ``repro.run(..., topology=Sharded(...))`` path end
    to end: routes four SynD tenants across ``--shards`` engines with
    ``--router``, then prints the per-shard spread and proves on the
    spot that the merged answers match a single-engine run of the same
    union (the differential contract, demo-sized).
    """
    import pickle

    import repro as api
    from repro.queries import wordcount_query
    from repro.workloads import MultiTenantSource, TenantStream, synd_source

    shards = getattr(args, "shards", 2)
    router = getattr(args, "router", "hash")
    quick = getattr(args, "quick", False)
    num_batches = 4 if quick else 8
    rate = 600.0 if quick else 2_000.0

    def union() -> MultiTenantSource:
        return MultiTenantSource(
            [
                TenantStream(
                    name,
                    synd_source(
                        exponent, num_keys=300, rate=rate * share, seed=seed
                    ),
                )
                for name, exponent, share, seed in (
                    ("alpha", 1.4, 0.30, 31),
                    ("bravo", 0.8, 0.25, 32),
                    ("charlie", 1.6, 0.25, 33),
                    ("delta", 1.1, 0.20, 34),
                )
            ]
        )

    engine = api.EngineConfig(
        batch_interval=0.5,
        num_blocks=4,
        num_reducers=4,
        observability=_obs_config(args),
    )
    sharded = api.run(
        union(),
        wordcount_query(window_length=1.0),
        num_batches=num_batches,
        topology=api.Sharded(shards=shards, router=router),
        engine=engine,
    )
    single = api.run(
        union(),
        wordcount_query(window_length=1.0),
        num_batches=num_batches,
        engine=api.EngineConfig(
            batch_interval=0.5, num_blocks=4, num_reducers=4
        ),
    )
    from repro.engine.sharding import canonical_order

    identical = all(
        pickle.dumps(mine) == pickle.dumps(canonical_order(theirs))
        for mine, theirs in zip(
            sharded.window_answers, single.window_answers
        )
    )
    rows = [
        {
            "Shard": i,
            "Tenants": ", ".join(
                sorted(
                    t
                    for t, owners in sharded.tenant_shards.items()
                    if i in owners
                )
            ),
            "Tuples": r.stats.total_tuples,
            "Throughput": r.stats.throughput(),
            "MeanLoad": r.stats.mean_load(),
            "Stable": r.stable,
        }
        for i, r in enumerate(sharded.shard_results)
    ]
    text = format_table(
        rows,
        columns=["Shard", "Tenants", "Tuples", "Throughput", "MeanLoad", "Stable"],
        title=(
            f"Sharded topology: {shards} engine(s) behind the "
            f"{router} router"
        ),
    )
    text += (
        f"\n\naggregate throughput: {sharded.throughput():,.0f} tuples/s"
        f"\nmerged answers identical to a single-engine run: {identical}"
    )
    payload = {
        "shards": shards,
        "router": router,
        "rows": rows,
        "aggregate_throughput": sharded.throughput(),
        "answers_identical": identical,
    }
    return text, payload


def _run_quickstart(args: argparse.Namespace) -> tuple[str, Any]:
    """The quickstart workload, shared by ``quickstart`` and ``run``.

    Flags absent from the invoking subparser fall back to the
    ``quickstart`` defaults, so ``repro run quickstart --trace out.json``
    exercises the same engine path with observability attached.
    """
    # Local import: keeps `repro list` fast and the engine optional.
    from repro import EngineConfig, MicroBatchEngine, make_partitioner
    from repro.queries import select_top_k, wordcount_query
    from repro.workloads import tweets_source

    engine = MicroBatchEngine(
        make_partitioner(getattr(args, "partitioner", "prompt")),
        wordcount_query(window_length=10.0),
        EngineConfig(
            batch_interval=1.0,
            num_blocks=8,
            num_reducers=8,
            executor=getattr(args, "backend", ExecutorKind.SERIAL),
            executor_workers=getattr(args, "workers", None),
            max_task_retries=getattr(args, "task_retries", 2),
            task_timeout=getattr(args, "task_timeout", None),
            speculative_execution=getattr(args, "speculate", False),
            pipeline_depth=getattr(args, "pipeline_depth", 1),
            ingest_kernel=getattr(args, "ingest_kernel", None),
            streaming_dispatch=getattr(args, "streaming_dispatch", False),
            observability=_obs_config(args),
        ),
    )
    result = engine.run(tweets_source(rate=5_000.0, seed=42), num_batches=12)
    lines = [f"backend: {result.backend_name}"]
    if result.backend_name == "parallel":
        lines.append(
            "fault tolerance: "
            f"{result.executor_task_attempts} attempts, "
            f"{result.executor_task_retries} retries, "
            f"{result.executor_pool_resurrections} pool resurrections, "
            f"{result.executor_speculative_wins} speculative wins, "
            f"{result.executor_timeout_trips} timeout trips, "
            f"{result.executor_fallbacks} serial fallbacks"
        )
        attempts = result.executor_task_attempts or 1
        lines.append(
            "payload: "
            f"{result.executor_payload_bytes:,} task bytes "
            f"({result.executor_payload_bytes / attempts:,.0f}/task), "
            f"{result.executor_context_installs} context install(s) "
            f"({result.executor_context_bytes:,} bytes)"
        )
    lines.append(f"throughput: {result.stats.throughput():,.0f} tuples/s")
    lines.append(f"mean latency: {result.stats.mean_latency():.3f}s")
    overlap = result.stats.total_pipeline_overlap_seconds()
    if overlap > 0:  # only the pipelined driver produces overlap
        lines.append(
            f"pipeline overlap: {overlap:.3f}s of execution ran while the "
            f"driver ingested later batches "
            f"(stalls: {result.stats.total_pipeline_wait_seconds():.3f}s)"
        )
    top = select_top_k(result.final_window_answer(), 5)
    for word, count in top:
        lines.append(f"  {word:>8}  {count}")
    obs = result.observability
    if obs is not None and obs.config is not None and obs.enabled:
        if obs.config.trace_path:
            lines.append(f"trace written to {obs.config.trace_path}")
        if obs.config.metrics_path:
            lines.append(f"metrics written to {obs.config.metrics_path}")
        if obs.config.jsonl_path:
            lines.append(f"jsonl written to {obs.config.jsonl_path}")
    payload = {
        "backend": result.backend_name,
        "throughput": result.stats.throughput(),
        "mean_latency": result.stats.mean_latency(),
        "top_words": [[word, count] for word, count in top],
    }
    return "\n".join(lines), payload


def _bench_main(args: argparse.Namespace, reporter: logging.Logger) -> int:
    """Dispatch the ``repro bench`` subcommands against one store."""
    db_path = args.db or default_store_path()
    if args.bench_command == "fill":
        grid = GRIDS[args.grid]
        with ResultsStore(db_path) as store:
            report = fill(
                store,
                grid,
                force=args.force,
                progress=lambda cell: reporter.info("running %s", cell.label()),
            )
        reporter.info(
            "grid %r: %d cell(s) executed, %d already complete for "
            "sha %s (store: %s)",
            report.grid,
            len(report.executed),
            report.skipped,
            report.git_sha[:12],
            db_path,
        )
        return 0
    if args.bench_command == "report":
        metrics = tuple(args.metric) if args.metric else None
        with ResultsStore(db_path) as store:
            text = render_matrix_report(
                store, metrics=metrics, markdown=args.markdown
            )
        reporter.info("%s", text)
        return 0
    if args.bench_command == "regress":
        with ResultsStore(db_path) as store:
            findings = find_regressions(
                store, k=args.k, min_history=args.min_history
            )
        regressions = [f for f in findings if f.is_regression]
        if not findings:
            reporter.info(
                "no departures: every tracked cell stayed inside its "
                "noise band (median ± %.1f·IQR)", args.k
            )
            return 0
        reporter.info(
            "%s",
            format_table(
                regression_rows(findings),
                title=f"Cells outside their noise band (median ± {args.k:.1f}·IQR)",
            ),
        )
        if regressions and not args.allow_regression:
            reporter.error(
                "%d regression(s) detected — rerun with --allow-regression "
                "to accept an intentional trade-off",
                len(regressions),
            )
            return 1
        if regressions:
            reporter.info(
                "%d regression(s) allowed by --allow-regression",
                len(regressions),
            )
        return 0
    if args.bench_command == "ingest":
        canonical = results_dir()
        total = 0
        with ResultsStore(db_path) as store:
            for raw in args.paths:
                path = Path(raw)
                count = ingest_artifact(store, path)
                total += count
                reporter.info("%s: %d cell(s)", path, count)
                if args.relocate and path.resolve().parent != canonical.resolve():
                    target = canonical / path.name
                    path.replace(target)
                    reporter.info("relocated %s -> %s", path, target)
        reporter.info("ingested %d cell(s) into %s", total, db_path)
        return 0
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], tuple[str, Any]]]] = {
    "table1": ("Table 1 — dataset properties", _run_table1),
    "fig6": ("Figure 6 — B-BPFI assignment trade-offs", _run_fig6),
    "fig10": ("Figure 10 — BSI/BCI partitioning metrics", _run_fig10),
    "fig11": ("Figure 11a-c — throughput vs batch interval", _run_fig11),
    "fig11d": ("Figure 11d — throughput vs Zipf exponent", _run_fig11d),
    "fig12": ("Figure 12 — resource elasticity", _run_fig12),
    "fig13": ("Figure 13 — latency distribution", _run_fig13),
    "fig14a": ("Figure 14a — post-sort throughput", _run_fig14a),
    "fig14b": ("Figure 14b — partitioning overhead", _run_fig14b),
    "ingest": ("Vectorized ingest kernels — python oracle vs numpy wall-clock", _run_ingest),
    "speedup": ("Serial vs parallel execution backend wall-clock", _run_speedup),
    "streaming": ("Streaming dispatch — eager vs streamed plan→dispatch wall-clock", _run_streaming),
    "shootout": ("Partitioner shoot-out — all techniques head-to-head", _run_shootout),
    "quickstart": ("Quickstart demo — engine run (supports --trace/--metrics)", _run_quickstart),
    "sharded": ("Sharded topology demo — N engines behind a shard router", _run_sharded),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prompt (SIGMOD 2020) reproduction experiment runner",
    )

    log_flags = argparse.ArgumentParser(add_help=False)
    log_flags.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="stream repro.* diagnostics to stderr at this level",
    )
    log_flags.add_argument(
        "--quiet", action="store_true", help="suppress normal stdout reporting"
    )

    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the run (chrome://tracing)",
    )
    obs_flags.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a Prometheus-text metrics snapshot of the run",
    )
    obs_flags.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="write a combined span+metric JSONL log of the run",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser(
        "run",
        help="run one experiment and print its table",
        parents=[log_flags, obs_flags],
    )
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--dataset",
        default="tweets",
        choices=["tweets", "tpch", "synd", "debs", "gcm"],
        help="dataset for fig10",
    )
    run.add_argument(
        "--direction", default="out", choices=["out", "in"], help="ramp for fig12"
    )
    run.add_argument(
        "--quick", action="store_true", help="reduced-scale run for fig11/fig11d"
    )
    run.add_argument(
        "--no-save", action="store_true", help="skip writing benchmarks/results JSON"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the speedup bench (default: auto)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=2,
        help="engine count for the sharded demo (default: 2)",
    )
    run.add_argument(
        "--router",
        default="hash",
        choices=list(ROUTER_NAMES),
        help="shard router strategy for the sharded demo",
    )

    quick = sub.add_parser(
        "quickstart",
        help="run the quickstart demo",
        parents=[log_flags, obs_flags],
    )
    quick.add_argument(
        "--backend",
        default=ExecutorKind.SERIAL.value,
        choices=list(EXECUTOR_NAMES),
        help="execution backend for map/reduce tasks",
    )
    quick.add_argument(
        "--partitioner",
        default="prompt",
        choices=list(PARTITIONER_NAMES),
        help="partitioning technique for the demo run (default: prompt)",
    )
    quick.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the parallel backend (default: auto)",
    )
    quick.add_argument(
        "--task-retries",
        type=int,
        default=2,
        help="retry budget per task for transient failures (parallel backend)",
    )
    quick.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="straggler deadline in real seconds per task attempt",
    )
    quick.add_argument(
        "--speculate",
        action="store_true",
        help="duplicate stragglers past the deadline and race the copies "
        "(requires --task-timeout)",
    )
    quick.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="batches the driver may keep in flight: 2+ overlaps batch "
        "k+1's ingest/partition with batch k's execution (results stay "
        "byte-identical; default 1 = strictly sequential)",
    )
    quick.add_argument(
        "--ingest-kernel",
        default=None,
        choices=["python", "numpy"],
        help="ingest/placement implementation: 'numpy' enables the "
        "vectorized batch kernels (bit-identical outputs, falls back to "
        "python with a warning when numpy is absent; default: leave the "
        "partitioner's own choice)",
    )
    quick.add_argument(
        "--streaming-dispatch",
        action="store_true",
        help="stream Algorithm 2's plan into Map dispatch: each "
        "finalized block's Map task launches while the plan tail is "
        "still running (results stay byte-identical; the parallel "
        "executor truly overlaps, others drain eagerly)",
    )

    bench = sub.add_parser(
        "bench",
        help="persistent experiment matrix (SQLite results store)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    db_flags = argparse.ArgumentParser(add_help=False)
    db_flags.add_argument(
        "--db",
        metavar="PATH",
        default=None,
        help="results store path (default: benchmarks/results/results.db)",
    )

    bench_fill = bench_sub.add_parser(
        "fill",
        help="run the grid's missing/invalidated cells (resumable)",
        parents=[log_flags, db_flags],
    )
    bench_fill.add_argument(
        "--grid",
        default="quick",
        choices=sorted(GRIDS),
        help="which declared grid to fill (default: quick)",
    )
    bench_fill.add_argument(
        "--force",
        action="store_true",
        help="re-run every cell even if already recorded for this SHA/env",
    )

    bench_report = bench_sub.add_parser(
        "report",
        help="render metric trajectories across stored runs",
        parents=[log_flags, db_flags],
    )
    bench_report.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table (for EXPERIMENTS.md)",
    )
    bench_report.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="only these metric names (repeatable; default: all)",
    )

    bench_regress = bench_sub.add_parser(
        "regress",
        help="flag cells outside their per-environment noise band",
        parents=[log_flags, db_flags],
    )
    bench_regress.add_argument(
        "--k",
        type=float,
        default=3.0,
        help="band half-width in IQR multiples (default: 3.0)",
    )
    bench_regress.add_argument(
        "--min-history",
        type=int,
        default=3,
        help="prior same-hash rows required before a cell can regress "
        "(default: 3)",
    )
    bench_regress.add_argument(
        "--allow-regression",
        action="store_true",
        help="report regressions but exit 0 — the documented escape "
        "hatch for intentional performance trade-offs",
    )

    bench_ingest = bench_sub.add_parser(
        "ingest",
        help="backfill BENCH_*.json artifacts into the store",
        parents=[log_flags, db_flags],
    )
    bench_ingest.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="artifact JSON files (e.g. benchmarks/results/BENCH_*.json)",
    )
    bench_ingest.add_argument(
        "--relocate",
        action="store_true",
        help="move ingested artifacts into benchmarks/results/ (unifies "
        "stray root-level artifacts on the one canonical directory)",
    )

    trace = sub.add_parser("trace", help="inspect a written trace file")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="print a per-phase time breakdown and the slowest tasks",
        parents=[log_flags],
    )
    summarize.add_argument("path", help="Chrome trace-event JSON written by --trace")
    summarize.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many slowest tasks to list (default: 5)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    reporter = _configure_logging(args)
    if args.command == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            reporter.info("%-8s  %s", name, description)
        return 0
    if args.command == "trace":
        summary = summarize_trace(args.path, top_k=args.top)
        reporter.info("%s", format_trace_summary(summary))
        return 0
    if args.command == "bench":
        return _bench_main(args, reporter)
    if args.command == "quickstart":
        text, _ = _run_quickstart(args)
        reporter.info("%s", text)
        return 0

    _, runner = EXPERIMENTS[args.experiment]
    text, payload = runner(args)
    reporter.info("%s", text)
    if not args.no_save:
        path = save_results(f"cli_{args.experiment}", payload)
        reporter.info("\nresults saved to %s", path)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
