"""Differential harness: sharded runs are byte-identical per tenant.

The sharded topology's whole contract is that *where* a tenant's tuples
are processed never leaks into *what* the system answers.  Every case
runs the multi-tenant union stream through a
:class:`~repro.engine.sharding.ShardedEngine` and compares, tenant by
tenant and window by window, against N independent single-engine runs
over each tenant's own tagged stream:

- byte-identical per-tenant window answers (pickled bytes of the
  canonically-ordered mappings, so key order and accumulator types
  match exactly, not just dict equality),
- coverage across router strategies × executors × pipeline depths,
- a shard killed mid-run (worker-pool poison, per-shard blast radius),
- a tenant rebalanced between shards at a batch boundary, with the
  window that spans the handoff reconstructed exactly.

The suite also pins the merge-stage invariants: merged answers come
out in canonical (tenant, key) order and equal the union of the
per-tenant slices.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.sharding import (
    ShardedEngine,
    canonical_order,
    crash_shard,
    kill_shard,
    tenant_slice,
)
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import MultiTenantSource, TenantStream, synd_source

pytest.importorskip("numpy")

NUM_BATCHES = 6
NUM_TENANTS = 4
INTERVAL = 0.5

#: tenants with different skews and rates, so shards see unequal work
TENANT_SPECS = [
    ("alpha", 1.4, 320.0, 101),
    ("bravo", 0.8, 260.0, 102),
    ("charlie", 1.6, 300.0, 103),
    ("delta", 1.1, 240.0, 104),
]


def _tenant_source(exponent: float, rate: float, seed: int):
    return synd_source(exponent, num_keys=60, rate=rate, seed=seed)


def _union() -> MultiTenantSource:
    return MultiTenantSource(
        [
            TenantStream(name, _tenant_source(z, rate, seed))
            for name, z, rate, seed in TENANT_SPECS
        ]
    )


def _query():
    return wordcount_query(window_length=1.5)  # 3 batches per window


def _config(**overrides) -> EngineConfig:
    base = dict(batch_interval=INTERVAL, num_blocks=4, num_reducers=4)
    base.update(overrides)
    return EngineConfig(**base)


def _reference_answers(config: EngineConfig) -> dict[str, list[bytes]]:
    """Per-tenant single-engine runs: tenant -> canonical pickled windows."""
    from repro.workloads import TenantTaggedSource

    out: dict[str, list[bytes]] = {}
    for name, z, rate, seed in TENANT_SPECS:
        source = TenantTaggedSource(name, _tenant_source(z, rate, seed))
        engine = MicroBatchEngine(make_partitioner("prompt"), _query(), config)
        result = engine.run(source, num_batches=NUM_BATCHES)
        out[name] = [
            pickle.dumps(canonical_order(w)) for w in result.window_answers
        ]
    return out


def _assert_matches_reference(sharded, config: EngineConfig) -> None:
    reference = _reference_answers(config)
    assert len(sharded.window_answers) == NUM_BATCHES
    for name, _, _, _ in TENANT_SPECS:
        mine = [pickle.dumps(w) for w in sharded.tenant_answers(name)]
        assert mine == reference[name], f"tenant {name} diverged"


# ----------------------------------------------------------------------
# router strategies x partitioners (serial, depth 1)
@pytest.mark.parametrize("router", ["hash", "consistent-hash", "key-range"])
@pytest.mark.parametrize("partitioner", ["prompt", "hash"])
def test_sharded_equals_per_tenant_runs(router, partitioner):
    config = _config()
    sharded = ShardedEngine(
        partitioner, _query(), config, num_shards=2, router=router
    ).run(_union(), num_batches=NUM_BATCHES)
    # the reference uses the same partitioner technique
    reference: dict[str, list[bytes]] = {}
    from repro.workloads import TenantTaggedSource

    for name, z, rate, seed in TENANT_SPECS:
        source = TenantTaggedSource(name, _tenant_source(z, rate, seed))
        engine = MicroBatchEngine(make_partitioner(partitioner), _query(), config)
        result = engine.run(source, num_batches=NUM_BATCHES)
        reference[name] = [
            pickle.dumps(canonical_order(w)) for w in result.window_answers
        ]
    for name, _, _, _ in TENANT_SPECS:
        mine = [pickle.dumps(w) for w in sharded.tenant_answers(name)]
        assert mine == reference[name], f"tenant {name} diverged under {router}"


@pytest.mark.parametrize("num_shards", [1, 3])
def test_shard_count_does_not_change_answers(num_shards):
    config = _config()
    sharded = ShardedEngine(
        "prompt", _query(), config, num_shards=num_shards
    ).run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)


# ----------------------------------------------------------------------
# executors x pipeline depths
def test_parallel_executor_shards_match_reference():
    config = _config(executor="parallel", executor_workers=2)
    sharded = ShardedEngine(
        "prompt", _query(), config, num_shards=2, router="consistent-hash"
    ).run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)
    assert all(r.backend_name == "parallel" for r in sharded.shard_results)


def test_pipelined_shards_match_reference():
    config = _config(pipeline_depth=2)
    sharded = ShardedEngine(
        "prompt", _query(), config, num_shards=2, router="key-range"
    ).run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)


# ----------------------------------------------------------------------
# faults: shard killed mid-run, blast radius one shard
def test_shard_killed_mid_run_still_byte_identical():
    config = _config(executor="parallel", executor_workers=2)
    sharded = ShardedEngine(
        "prompt",
        _query(),
        config,
        num_shards=2,
        router="hash",
        shard_faults=[kill_shard(0, batch_index=2)],
    ).run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)
    # the poison killed shard 0's pool and only shard 0's pool
    resurrections = [
        r.executor_pool_resurrections for r in sharded.shard_results
    ]
    assert resurrections[0] >= 1, "shard 0's pool was never killed"
    assert resurrections[1] == 0, "blast radius leaked to shard 1"


def test_crash_fault_retries_in_place_with_shard_blast_radius():
    # task-attempt faults are a parallel-backend mechanism (the serial
    # executor is the clean reference and never consults the fault
    # table), so the crash profile is exercised under the pool
    config = _config(executor="parallel", executor_workers=2)
    sharded = ShardedEngine(
        "prompt",
        _query(),
        config,
        num_shards=2,
        shard_faults=[crash_shard(1, batch_index=1, times=1)],
    ).run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)
    retries = [r.executor_task_retries for r in sharded.shard_results]
    assert retries[1] >= 1 and retries[0] == 0


def test_shard_faults_must_be_scoped():
    from repro.engine.faults import TaskFaultInjector

    with pytest.raises(ValueError, match="shard-scoped"):
        ShardedEngine(
            "prompt",
            _query(),
            _config(),
            num_shards=2,
            shard_faults=[TaskFaultInjector().crash(0, "map", 0)],
        )


# ----------------------------------------------------------------------
# rebalance: a hot tenant migrates at a batch boundary
@pytest.mark.parametrize("router", ["hash", "consistent-hash"])
def test_rebalanced_tenant_still_byte_identical(router):
    config = _config()
    engine = ShardedEngine(
        "prompt", _query(), config, num_shards=2, router=router
    )
    hot = "charlie"
    home = engine.router.route(hot)
    away = (home + 1) % 2
    # migrate mid-window: window_length=1.5 spans batches {1,2,3}, the
    # handoff at batch 3 splits window 3 across both shards
    engine.rebalance(hot, away, at_batch=3)
    sharded = engine.run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)
    assert sharded.tenant_shards[hot] == tuple(sorted({home, away}))


def test_rebalance_composes_with_shard_kill():
    config = _config(executor="parallel", executor_workers=2)
    engine = ShardedEngine(
        "prompt",
        _query(),
        config,
        num_shards=2,
        shard_faults=[kill_shard(1, batch_index=3)],
    )
    hot = "alpha"
    home = engine.router.route(hot)
    engine.rebalance(hot, (home + 1) % 2, at_batch=2)
    sharded = engine.run(_union(), num_batches=NUM_BATCHES)
    _assert_matches_reference(sharded, config)


# ----------------------------------------------------------------------
# merge-stage invariants
def test_merged_answers_are_canonically_ordered():
    sharded = ShardedEngine(
        "prompt", _query(), _config(), num_shards=2
    ).run(_union(), num_batches=NUM_BATCHES)
    for window in sharded.window_answers:
        assert pickle.dumps(window) == pickle.dumps(canonical_order(window))
        # merged == union of tenant slices, nothing lost or invented
        rebuilt: dict = {}
        for name, _, _, _ in TENANT_SPECS:
            rebuilt.update(tenant_slice(window, name))
        assert canonical_order(rebuilt) == window


def test_sharded_config_guards():
    from repro.extensions import BatchSizingConfig

    with pytest.raises(ValueError, match="batch_sizing"):
        ShardedEngine(
            "prompt",
            _query(),
            _config(batch_sizing=BatchSizingConfig()),
            num_shards=2,
        )
