"""Heavy-hitter key splitting — the D-Choices/W-Choices refinement.

Nasir et al.'s follow-up work ("When two choices are not enough",
ICDE'16) observes that splitting *every* key (as PKG does) wrecks key
locality for the long tail that never needed balancing.  The refined
scheme splits **only detected heavy hitters** over ``d`` candidate
blocks and routes everything else by plain hashing:

- a :class:`~repro.core.sketches.SpaceSavingSketch` tracks the stream's
  hot keys online (the per-tuple decision constraint of
  tuple-at-a-time systems — Section 2.2.4 — applies, so the detector
  must be streaming);
- a tuple whose key is currently *guaranteed* above the frequency
  threshold picks the least-loaded of its ``d`` candidates;
- all other tuples go to ``hash(key)``.

Compared to PK2/PK5 this keeps KSR near 1 for the tail while still
defusing the head — it slots between hashing and PK5 on both axes,
which is exactly where the paper's Figure 10/11 narrative puts the
"improved key-splitting" family.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.hashing import CandidateCache, hash_to_bucket
from ..core.sketches import SpaceSavingSketch
from ..core.tuples import Key, StreamTuple
from .base import StreamingPartitioner

__all__ = ["HeavyHitterSplitPartitioner"]


class HeavyHitterSplitPartitioner(StreamingPartitioner):
    """Split detected heavy hitters over ``d`` choices; hash the rest."""

    name = "pkh"

    def __init__(
        self,
        d: int = 5,
        *,
        threshold: float = 0.01,
        sketch_capacity: int = 128,
        cache_size: int = 65_536,
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if sketch_capacity < 1:
            raise ValueError("sketch_capacity must be >= 1")
        self.d = d
        self.threshold = threshold
        self.sketch_capacity = sketch_capacity
        self._sketch = SpaceSavingSketch(sketch_capacity)
        self._candidate_cache = CandidateCache(cache_size)

    def reset(self) -> None:
        self._sketch = SpaceSavingSketch(self.sketch_capacity)
        self._candidate_cache.clear()

    def _is_heavy(self, key: Key) -> bool:
        total = self._sketch.total
        if total < self.sketch_capacity:
            return False  # not enough evidence yet
        return self._sketch.guaranteed(key) > self.threshold * total

    def _candidates(self, key: Key, num_blocks: int) -> list[int]:
        return self._candidate_cache.get(key, num_blocks, self.d)

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        self._sketch.add(t.key)
        if self._is_heavy(t.key):
            candidates = self._candidates(t.key, len(blocks))
            return min(candidates, key=lambda i: (blocks[i].size, i))
        return hash_to_bucket(t.key, len(blocks))
