"""Hash partitioning / Key Grouping (Section 2.2.3).

One hash function maps each key to a fixed block, giving perfect key
locality (KSR = 1, no per-key aggregation across blocks) but no control
over block sizes: under skew, the blocks owning hot keys dwarf the rest,
and the same effect repeats at the Reduce stage.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.hashing import hash_to_bucket
from ..core.tuples import StreamTuple
from .base import StreamingPartitioner

__all__ = ["HashPartitioner"]


class HashPartitioner(StreamingPartitioner):
    """Fixed key-to-block assignment via one stable hash function."""

    name = "hash"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        return hash_to_bucket(t.key, len(blocks), seed=self.seed)
