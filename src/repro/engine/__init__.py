"""Simulated distributed micro-batch stream processing engine."""

from .backpressure import BackpressureConfig, BackpressureMonitor, run_is_stable
from .checkpoint import (
    CheckpointManager,
    WindowSnapshot,
    restore_window,
    snapshot_window,
)
from .cluster import Cluster, ClusterConfig, makespan
from .engine import EngineConfig, MicroBatchEngine, RunResult
from .faults import FailureInjector, RecoveryEvent, recover_batch
from .invariants import InvariantViolation, check_run_invariants
from .lateness import LatenessConfig, LatenessMonitor
from .receiver import Receiver
from .scheduler import PipelineScheduler, ScheduledJob
from .simulation import Event, EventLoop, SimulationError
from .state import BatchState, StateStore
from .stats import BatchRecord, RunStats, percentile
from .tasks import (
    BatchExecution,
    MapTaskResult,
    ReduceTaskResult,
    TaskCostModel,
    execute_batch_tasks,
    execute_map_task,
)
from .topology import Topology
from .windows import WindowedAggregator

__all__ = [
    "BackpressureConfig",
    "BackpressureMonitor",
    "BatchExecution",
    "BatchRecord",
    "BatchState",
    "CheckpointManager",
    "Cluster",
    "ClusterConfig",
    "EngineConfig",
    "Event",
    "EventLoop",
    "FailureInjector",
    "InvariantViolation",
    "LatenessConfig",
    "LatenessMonitor",
    "MapTaskResult",
    "MicroBatchEngine",
    "PipelineScheduler",
    "Receiver",
    "RecoveryEvent",
    "ReduceTaskResult",
    "RunResult",
    "RunStats",
    "ScheduledJob",
    "SimulationError",
    "StateStore",
    "TaskCostModel",
    "Topology",
    "WindowSnapshot",
    "WindowedAggregator",
    "check_run_invariants",
    "execute_batch_tasks",
    "execute_map_task",
    "makespan",
    "percentile",
    "recover_batch",
    "restore_window",
    "run_is_stable",
    "snapshot_window",
]
