"""Persistent results store: hashing, recording, artifact backfill."""

from __future__ import annotations

import json

import pytest

from repro.bench.store import (
    CellResult,
    GRID_AXES,
    ResultsStore,
    artifact_cells,
    config_hash,
    current_git_sha,
    environment_fingerprint,
    environment_hash,
    ingest_artifact,
)


# ----------------------------------------------------------------------
# identity
def test_config_hash_is_order_independent():
    a = config_hash({"workload": "tweets", "partitioner": "prompt"})
    b = config_hash({"partitioner": "prompt", "workload": "tweets"})
    assert a == b
    assert len(a) == 16


def test_config_hash_normalizes_types():
    # int/float and None/"" must hash identically: a SQLite round-trip
    # or a JSON reload must not invalidate the cell
    assert config_hash({"d": 2}) == config_hash({"d": 2.0})
    assert config_hash({"x": None}) == config_hash({"x": ""})


def test_config_hash_distinguishes_params():
    assert config_hash({"d": 1}) != config_hash({"d": 2})


def test_environment_fingerprint_fields():
    env = environment_fingerprint()
    assert set(env) == {
        "cpu_count", "python", "implementation", "platform", "numpy", "numba",
    }
    assert env["cpu_count"] >= 1
    assert environment_hash(env) == environment_hash(env)


def test_current_git_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "cafe0123")
    assert current_git_sha() == "cafe0123"


def test_current_git_sha_from_repo(monkeypatch):
    monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
    sha = current_git_sha()
    # this repo IS a git checkout, so a real 40-char SHA comes back
    assert sha == "unknown" or len(sha) == 40


# ----------------------------------------------------------------------
# store round-trip
def _cell(**over):
    base = dict(
        params={"workload": "tweets", "partitioner": "prompt",
                "backend": "serial", "pipeline_depth": 1},
        metrics={"latency_mean_seconds": 0.5, "stable": True},
        obs={"engine.batches_total": 4},
        git_sha="sha-1",
        env={"cpu_count": 4, "python": "3.11", "numpy": False},
    )
    base.update(over)
    return CellResult(**base)


def test_record_and_read_back(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        cell_id = store.record(_cell())
        assert store.cell_count() == 1
        row = store.cells()[0]
        assert row["id"] == cell_id
        assert row["git_sha"] == "sha-1"
        assert row["params"]["workload"] == "tweets"
        assert row["obs"] == {"engine.batches_total": 4}
        metrics = store.metrics_for(cell_id)
        assert metrics["latency_mean_seconds"] == 0.5
        assert metrics["stable"] == 1.0  # bools become 0/1 trajectories


def test_record_drops_nan_metrics(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        cid = store.record(_cell(metrics={"good": 1.0, "bad": float("nan")}))
        assert store.metrics_for(cid) == {"good": 1.0}


def test_completed_hashes_keyed_by_sha_and_env(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        cell = _cell()
        store.record(cell)
        chash = cell.config_hash
        ehash = environment_hash(cell.env)
        assert store.completed_hashes(git_sha="sha-1", env_hash=ehash) == {chash}
        # a new SHA invalidates: nothing complete there yet
        assert store.completed_hashes(git_sha="sha-2", env_hash=ehash) == set()
        # so does a new environment
        assert store.completed_hashes(git_sha="sha-1", env_hash="feed") == set()


def test_history_and_git_shas_in_insert_order(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        cell = _cell()
        for i, sha in enumerate(["sha-1", "sha-2", "sha-3"]):
            store.record(
                _cell(git_sha=sha, metrics={"lat": float(i)}), created_at=100.0 + i
            )
        hist = store.history(cell.config_hash, "lat")
        assert [h["git_sha"] for h in hist] == ["sha-1", "sha-2", "sha-3"]
        assert [h["value"] for h in hist] == [0.0, 1.0, 2.0]
        assert store.git_shas() == ["sha-1", "sha-2", "sha-3"]


def test_history_filters_by_env(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        cell = _cell()
        other_env = {"cpu_count": 64, "python": "3.12", "numpy": True}
        store.record(_cell(metrics={"lat": 1.0}))
        store.record(_cell(metrics={"lat": 9.0}, env=other_env))
        here = store.history(cell.config_hash, "lat",
                             env_hash=environment_hash(cell.env))
        assert [h["value"] for h in here] == [1.0]


def test_default_label_joins_grid_axes():
    cell = _cell(params={axis: axis[:2] for axis in GRID_AXES})
    assert cell.default_label() == "wo/pa/ba/in/pi/fa"
    anon = _cell(params={"alpha": 1.5})
    assert anon.default_label() == anon.config_hash


# ----------------------------------------------------------------------
# artifact backfill
def test_artifact_cells_rows_list():
    payload = [
        {"Technique": "prompt", "Throughput": 100.0, "Stable": True},
        {"Technique": "hash", "Throughput": 60.0, "Stable": True},
    ]
    cells = artifact_cells("BENCH_x", payload)
    assert len(cells) == 2
    first = cells[0]
    assert first.params["Technique"] == "prompt"
    # the well-known alias also fills the canonical axis
    assert first.params["partitioner"] == "prompt"
    assert first.params["artifact"] == "BENCH_x"
    assert first.metrics["Throughput"] == 100.0
    assert first.metrics["Stable"] == 1.0
    assert first.source == "artifact:BENCH_x"


def test_artifact_cells_nested_sections():
    payload = {
        "gate": {"GeomeanSpeedup": 3.4},
        "rows": [{"Row": "a", "Speedup": 3.0}, {"Row": "b", "Speedup": 4.0}],
    }
    cells = artifact_cells("BENCH_y", payload)
    sections = sorted(c.params.get("section", "") for c in cells)
    assert sections == ["gate", "rows", "rows"]


def test_artifact_cells_mixed_mapping_keeps_scalar_slice():
    payload = {"total_runtime": 12.5, "rows": [{"Metric": "x", "V": 1.0}]}
    cells = artifact_cells("BENCH_z", payload)
    assert any(c.metrics.get("total_runtime") == 12.5 for c in cells)


def test_artifact_cells_extra_params_join_identity():
    cells = artifact_cells(
        "BENCH_w", [{"V": 1.0}], extra_params={"workload": "tweets"}
    )
    assert cells[0].params["workload"] == "tweets"
    # identity differs from the same artifact without the extra params
    other = artifact_cells("BENCH_w", [{"V": 1.0}])
    assert cells[0].config_hash != other[0].config_hash


def test_artifact_cells_skips_metricless_rows():
    assert artifact_cells("BENCH_n", [{"Name": "only", "Kind": "strings"}]) == []


def test_ingest_artifact_file(tmp_path):
    path = tmp_path / "BENCH_demo.json"
    path.write_text(json.dumps([{"Technique": "prompt", "Latency": 0.2}]))
    with ResultsStore(tmp_path / "r.db") as store:
        count = ingest_artifact(store, path, git_sha="sha-a")
        assert count == 1
        row = store.cells()[0]
        assert row["git_sha"] == "sha-a"
        assert row["source"] == "artifact:BENCH_demo"
        assert row["params"]["artifact"] == "BENCH_demo"


def test_ingest_artifact_rejects_malformed_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with ResultsStore(tmp_path / "r.db") as store:
        with pytest.raises(json.JSONDecodeError):
            ingest_artifact(store, path)
        assert store.cell_count() == 0
