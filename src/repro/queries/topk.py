"""TopKCount: the k most frequent words over a sliding window (Section 7.1).

The per-key computation is identical to WordCount; the top-k selection
is a post-processing step over the window's aggregated output (it is
not distributable per-key, so it runs on the driver after the window
merge — the standard micro-batch formulation).
"""

from __future__ import annotations

import heapq
from typing import Any, Mapping

from ..core.tuples import Key, _order_token
from .base import CountAggregator, Query, WindowSpec
from .wordcount import count_one

__all__ = ["topk_query", "select_top_k"]


def topk_query(k: int = 10, window_length: float = 30.0) -> Query:
    """Build the TopKCount query (per-key counting part)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return Query(
        name=f"top{k}count",
        aggregator=CountAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=count_one,  # module-level: picklable for parallel backends
    )


def select_top_k(window_output: Mapping[Key, int], k: int) -> list[tuple[Key, int]]:
    """The driver-side top-k selection over a window's key counts.

    Ties break on the key's stable order token so results are
    deterministic across runs.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return heapq.nsmallest(
        k, window_output.items(), key=lambda kv: (-kv[1], _order_token(kv[0]))
    )
