"""Heavy-hitter key splitting (pkh): tail locality, head balancing."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.hashing import candidate_buckets, hash_to_bucket
from repro.core.metrics import evaluate_partition
from repro.core.tuples import StreamTuple
from repro.partitioners import (
    HashPartitioner,
    HeavyHitterSplitPartitioner,
    PK5Partitioner,
)

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


def _skewed(total=4000, keys=100, seed=2):
    return make_tuples(zipfish_freqs(keys, total), shuffle_seed=seed)


def test_validation():
    with pytest.raises(ValueError):
        HeavyHitterSplitPartitioner(d=0)
    with pytest.raises(ValueError):
        HeavyHitterSplitPartitioner(threshold=0.0)
    with pytest.raises(ValueError):
        HeavyHitterSplitPartitioner(threshold=1.0)
    with pytest.raises(ValueError):
        HeavyHitterSplitPartitioner(sketch_capacity=0)


def test_all_tuples_placed():
    part = HeavyHitterSplitPartitioner()
    tuples = _skewed()
    batch = part.partition(tuples, 8, INFO)
    batch.validate(expected_tuples=len(tuples))


def test_cold_keys_follow_hashing():
    part = HeavyHitterSplitPartitioner(threshold=0.5)  # nothing is "heavy"
    tuples = _skewed(total=1000)
    batch = part.partition(tuples, 8, INFO)
    for key in batch.distinct_keys():
        expected = hash_to_bucket(key, 8)
        assert key in batch.blocks[expected]
    assert batch.split_keys == {}


def test_heavy_key_splits_within_candidates():
    part = HeavyHitterSplitPartitioner(d=3, threshold=0.05)
    tuples = _skewed(total=5000, keys=50, seed=4)
    batch = part.partition(tuples, 16, INFO)
    hot = "k0"  # ~20% of the stream under 1/rank skew
    spread = batch.split_keys.get(hot)
    assert spread is not None, "the head key should have been split"
    allowed = set(candidate_buckets(hot, 16, 3)) | {hash_to_bucket(hot, 16)}
    assert set(spread) <= allowed


def test_tail_locality_better_than_pk5():
    tuples = _skewed(total=6000, keys=300, seed=5)
    pkh = evaluate_partition(
        HeavyHitterSplitPartitioner(d=5).partition(tuples, 8, INFO)
    )
    pk5 = evaluate_partition(PK5Partitioner().partition(tuples, 8, INFO))
    assert pkh.ksr < pk5.ksr


def test_size_balance_better_than_hash_under_skew():
    tuples = _skewed(total=6000, keys=50, seed=6)
    pkh = evaluate_partition(
        HeavyHitterSplitPartitioner(d=5, threshold=0.02).partition(tuples, 8, INFO)
    )
    hashed = evaluate_partition(HashPartitioner().partition(tuples, 8, INFO))
    assert pkh.bsi < hashed.bsi


def test_reset_clears_sketch_state():
    part = HeavyHitterSplitPartitioner()
    part.partition(_skewed(total=1000), 4, INFO)
    assert part._sketch.total > 0
    part.reset()
    assert part._sketch.total == 0
    assert not part._candidate_cache


def test_detector_needs_evidence_before_splitting():
    """The very first tuples are never 'heavy' (cold-start hashing)."""
    part = HeavyHitterSplitPartitioner(threshold=0.01, sketch_capacity=64)
    tuples = [StreamTuple(ts=i * 1e-3, key="hot") for i in range(10)]
    batch = part.partition(tuples, 8, INFO)
    # fewer than capacity observations: everything hashed together
    assert batch.split_keys == {}
