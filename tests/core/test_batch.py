"""DataBlock / PartitionedBatch structure and invariants."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo, DataBlock, PartitionedBatch
from repro.core.tuples import StreamTuple


def _t(key, weight=1):
    return StreamTuple(ts=0.0, key=key, weight=weight)


def test_batch_info_interval():
    info = BatchInfo(index=2, t_start=4.0, t_end=6.0)
    assert info.interval == 2.0


def test_empty_block():
    block = DataBlock(0)
    assert block.size == 0
    assert block.cardinality == 0
    assert block.tuple_count() == 0
    assert list(block.tuples()) == []
    assert "a" not in block


def test_add_fragment_accumulates():
    block = DataBlock(0)
    block.add_fragment("a", [_t("a"), _t("a")])
    block.add_fragment("a", [_t("a", weight=3)])
    assert block.size == 5
    assert block.cardinality == 1
    assert block.tuple_count() == 3
    assert len(block.fragment("a")) == 3


def test_add_empty_fragment_is_noop():
    block = DataBlock(0)
    block.add_fragment("a", [])
    assert block.cardinality == 0


def test_add_tuple():
    block = DataBlock(0)
    block.add_tuple(_t("x", weight=2))
    assert block.size == 2
    assert "x" in block


def test_remove_fragment():
    block = DataBlock(0)
    block.add_fragment("a", [_t("a", weight=2), _t("a")])
    block.add_fragment("b", [_t("b")])
    chain = block.remove_fragment("a")
    assert len(chain) == 2
    assert block.size == 1
    assert block.cardinality == 1
    assert block.remove_fragment("missing") == []


def test_fragment_sizes():
    block = DataBlock(0)
    block.add_fragment("a", [_t("a", weight=2)])
    block.add_fragment("b", [_t("b"), _t("b")])
    assert block.fragment_sizes() == {"a": 2, "b": 2}


def _mini_batch():
    info = BatchInfo(0, 0.0, 1.0)
    b0, b1 = DataBlock(0), DataBlock(1)
    b0.add_fragment("a", [_t("a"), _t("a")])
    b0.add_fragment("b", [_t("b")])
    b1.add_fragment("a", [_t("a")])
    b1.add_fragment("c", [_t("c")])
    return PartitionedBatch(info=info, blocks=[b0, b1])


def test_compute_split_keys():
    batch = _mini_batch()
    batch.compute_split_keys()
    assert batch.split_keys == {"a": (0, 1)}
    assert batch.is_split("a")
    assert not batch.is_split("b")


def test_totals_and_distinct_keys():
    batch = _mini_batch()
    assert batch.total_size == 5
    assert batch.total_tuples == 5
    assert batch.num_blocks == 2
    assert batch.distinct_keys() == {"a", "b", "c"}
    assert batch.key_fragment_count() == 4


def test_validate_passes_on_consistent_batch():
    batch = _mini_batch()
    batch.compute_split_keys()
    batch.validate(expected_tuples=5)


def test_validate_detects_tuple_loss():
    batch = _mini_batch()
    with pytest.raises(AssertionError, match="holds 5 tuples"):
        batch.validate(expected_tuples=6)


def test_validate_detects_bogus_split_entry():
    batch = _mini_batch()
    batch.split_keys = {"b": (0, 1)}  # b is only in block 0
    with pytest.raises(AssertionError, match="missing from block"):
        batch.validate()


def test_validate_detects_single_block_split_entry():
    batch = _mini_batch()
    batch.split_keys = {"b": (0,)}
    with pytest.raises(AssertionError, match="lists"):
        batch.validate()
