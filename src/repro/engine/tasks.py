"""Map/Reduce task execution and the task cost model.

Eqn. 1 models the processing time of a batch as the sum of the longest
Map task and the longest Reduce task; the paper's whole argument is that
both task times grow monotonically with their input *size* (Problems I
and II) and that per-key aggregation across blocks adds Reduce overhead
(key locality, Sections 2.2.2/3.2).  The cost model encodes exactly that
dependence:

- ``MapTime  = map_fixed + map_per_tuple * |block| + map_per_key * ||block||``
- ``ReduceTime = reduce_fixed + reduce_per_tuple * |bucket|
                + reduce_per_fragment * fragments(bucket)``

where ``fragments(bucket)`` counts the (Map task, key) pairs whose
output lands in the bucket: the per-key partial results that must be
fetched and merged.  Shuffle-style partitioning scatters every hot key
over all blocks, inflating that term; hashing keeps it minimal but lets
``|block|`` and ``|bucket|`` skew — the trade-off Figure 10/11 measures.

Constants are calibrated so a simulated 4x4-core cluster sustains rates
in the tens of thousands of tuples per second with second-scale batch
intervals — laptop-scale stand-ins for the paper's EC2 numbers; the
*relative* behaviour between techniques is what carries over.

The module is factored into **pure per-task units** so execution
backends (:mod:`repro.engine.executors`) can dispatch the same work
serially or across worker processes and obtain bit-identical results:

- :func:`run_map_task` — one Map task over one data block,
- :func:`shuffle_map_results` — the deterministic driver-side shuffle,
- :func:`run_reduce_task` — one Reduce task over one bucket,
- :func:`derive_task_seed` — the per-task RNG seed, derived stably from
  ``(run_seed, batch_index, kind, task_id)`` so any future stochastic
  operator behaves identically under every backend.

:func:`execute_batch_tasks` strings them together in-process (the
serial reference semantics every other backend must match).
"""

from __future__ import annotations

import hashlib
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Collection, Sequence

from ..core.batch import DataBlock, PartitionedBatch
from ..core.reduce_allocator import BucketAssignment, KeyCluster
from ..core.tuples import Key
from ..obs.tracing import NULL_TRACER, Tracer, WorkerSpan
from ..partitioners.base import Partitioner
from ..queries.base import Aggregator, Query
from .topology import ClusterTopology

#: shared no-op context for untraced per-task loops — entering it costs
#: one bytecode-level call, versus building a fresh generator-backed
#: context manager per task through NullTracer.span (the dominant
#: dispatch-loop overhead when tracing is off)
_NULL_CM = nullcontext()

__all__ = [
    "TaskCostModel",
    "MapTaskResult",
    "ReduceTaskResult",
    "BucketInput",
    "BatchExecution",
    "derive_task_seed",
    "execute_map_task",
    "run_map_task",
    "shuffle_map_results",
    "run_reduce_task",
    "execute_batch_tasks",
]

#: (clusters, split_keys, num_buckets) -> BucketAssignment
ReduceAllocation = Callable[[Sequence[KeyCluster], Collection[Key], int], BucketAssignment]


def derive_task_seed(run_seed: int, batch_index: int, kind: str, task_id: int) -> int:
    """Stable 63-bit per-task seed from ``(run_seed, batch_index, kind, task_id)``.

    Uses BLAKE2b (never Python's salted ``hash``) so the same task gets
    the same seed in any process, interpreter restart, or backend —
    the determinism contract parallel execution must uphold.
    """
    material = f"{run_seed}:{batch_index}:{kind}:{task_id}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


@dataclass(frozen=True, slots=True)
class TaskCostModel:
    """Per-task simulated-time coefficients (seconds)."""

    map_fixed: float = 2e-3
    map_per_tuple: float = 8e-5
    map_per_key: float = 1e-4
    reduce_fixed: float = 2e-3
    reduce_per_tuple: float = 6e-5
    reduce_per_fragment: float = 5e-4
    #: extra cost per fragment fetched from a *remote* node; only
    #: charged when a ClusterTopology is supplied to execute_batch_tasks
    network_per_remote_fragment: float = 0.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def map_time(self, tuple_weight: int, key_count: int) -> float:
        return self.map_fixed + self.map_per_tuple * tuple_weight + self.map_per_key * key_count

    def reduce_time(
        self, bucket_weight: int, fragment_count: int, remote_fragments: int = 0
    ) -> float:
        return (
            self.reduce_fixed
            + self.reduce_per_tuple * bucket_weight
            + self.reduce_per_fragment * fragment_count
            + self.network_per_remote_fragment * remote_fragments
        )


@dataclass(slots=True)
class MapTaskResult:
    """Outcome of one Map task over one data block."""

    block_index: int
    input_weight: int
    input_cardinality: int
    clusters: list[KeyCluster]
    assignment: BucketAssignment
    duration: float
    # per-key aggregated partial value from this block (map-side results)
    partials: dict[Key, object]
    #: deterministic per-task seed (see :func:`derive_task_seed`)
    task_seed: int = 0
    #: measured wall-clock of the task body (real time, not simulated)
    wall_seconds: float = 0.0
    #: worker-side span measurement when tracing is on (observational
    #: wall-clock only — excluded from equality like the other measured
    #: fields, so traced runs compare identical to untraced ones)
    span: WorkerSpan | None = field(default=None, compare=False)


@dataclass(slots=True)
class ReduceTaskResult:
    """Outcome of one Reduce task over one bucket."""

    bucket_index: int
    input_weight: int
    fragment_count: int
    key_count: int
    duration: float
    # final per-key aggregate for keys owned by this bucket
    results: dict[Key, object]
    # fragments fetched across the network (0 without a topology)
    remote_fragments: int = 0
    #: deterministic per-task seed (see :func:`derive_task_seed`)
    task_seed: int = 0
    #: measured wall-clock of the task body (real time, not simulated)
    wall_seconds: float = 0.0
    #: worker-side span measurement when tracing is on (observational
    #: wall-clock only — excluded from equality like the other measured
    #: fields, so traced runs compare identical to untraced ones)
    span: WorkerSpan | None = field(default=None, compare=False)


@dataclass(slots=True)
class BucketInput:
    """Everything the shuffle delivers to one Reduce task."""

    bucket_index: int
    weight: int
    fragment_count: int
    remote_fragments: int
    # per-key list of map-side partials, in deterministic arrival order
    partials: dict[Key, list[object]]


@dataclass(slots=True)
class BatchExecution:
    """Everything produced by running one batch's Map-Reduce computation."""

    map_results: list[MapTaskResult]
    reduce_results: list[ReduceTaskResult]
    #: which execution backend produced this batch ("serial"/"parallel")
    backend: str = "serial"
    #: fault-tolerance tallies for this batch's dispatch (the parallel
    #: backend fills them; the serial reference has nothing to retry,
    #: resurrect, or speculate, so they stay 0)
    task_attempts: int = 0
    task_retries: int = 0
    pool_resurrections: int = 0
    speculative_wins: int = 0
    timeout_trips: int = 0
    #: driver→worker dispatch bytes for this batch: pickled payload
    #: bytes summed over every launched attempt, plus any run-context
    #: broadcasts (installs × blob size) that happened during the batch.
    #: Serial execution ships nothing, so all three stay 0.
    payload_bytes: int = 0
    context_installs: int = 0
    context_bytes: int = 0
    #: real ``perf_counter`` stamps set by the async submission path
    #: (:meth:`~repro.engine.executors.ExecutionBackend.submit_batch`):
    #: when the driver handed the batch to the backend and when the
    #: backend finished computing it.  Pure wall-clock observations —
    #: the pipelined driver derives its overlap accounting from them;
    #: both stay 0.0 on the synchronous ``run_batch`` path.
    submitted_at: float = 0.0
    completed_at: float = 0.0

    @property
    def map_durations(self) -> list[float]:
        return [m.duration for m in self.map_results]

    @property
    def reduce_durations(self) -> list[float]:
        return [r.duration for r in self.reduce_results]

    @property
    def map_wall_seconds(self) -> list[float]:
        """Measured wall-clock of each Map task (real time)."""
        return [m.wall_seconds for m in self.map_results]

    @property
    def reduce_wall_seconds(self) -> list[float]:
        """Measured wall-clock of each Reduce task (real time)."""
        return [r.wall_seconds for r in self.reduce_results]

    def batch_output(self) -> dict[Key, object]:
        """The batch's per-key aggregate (union of all Reduce outputs)."""
        out: dict[Key, object] = {}
        for r in self.reduce_results:
            overlap = out.keys() & r.results.keys()
            if overlap:
                raise AssertionError(
                    f"key locality violated: keys {sorted(map(repr, overlap))[:5]} "
                    f"reduced by multiple tasks"
                )
            out.update(r.results)
        return out


def execute_map_task(
    block: DataBlock,
    query: Query,
    cost_model: TaskCostModel,
) -> tuple[list[KeyCluster], dict[Key, object], float]:
    """Apply the query's Map function over one block.

    Returns the intermediate key clusters, the map-side per-key partial
    aggregates, and the task duration.  The Map stage is charged for
    every *input* tuple — filtered-out tuples still cost their scan.

    Cluster sizes model the shuffle payload: for map-side-combining
    (algebraic) queries a fragment collapses to one partial record, so
    the cluster size is 1; holistic queries ship the full values list,
    so the size is the emitted tuple count.
    """
    clusters: list[KeyCluster] = []
    partials: dict[Key, object] = {}
    for key, chain in sorted(
        ((k, block.fragment(k)) for k in block.keys),
        key=lambda kv: repr(kv[0]),
    ):
        emitted = 0
        acc = query.aggregator.zero()
        for t in chain:
            mapped = query.map_value(key, t.value)
            if mapped is None:
                continue
            emitted += 1
            acc = query.aggregator.add(acc, mapped)
        if emitted:
            size = 1 if query.map_side_combine else emitted
            clusters.append(KeyCluster(key=key, size=size))
            partials[key] = acc
    duration = cost_model.map_time(block.size, block.cardinality)
    return clusters, partials, duration


def run_map_task(
    block: DataBlock,
    query: Query,
    allocate: ReduceAllocation,
    num_reducers: int,
    split_keys: Collection[Key],
    cost_model: TaskCostModel,
    task_seed: int = 0,
) -> MapTaskResult:
    """One complete Map task: map the block, then route its clusters.

    Pure in its inputs (``allocate`` must be a pure callable), so the
    result is identical whether it runs inline or in a worker process.
    ``split_keys`` may be any superset of the block's split keys — only
    membership of the block's own cluster keys is consulted.
    """
    started = time.perf_counter()
    clusters, partials, duration = execute_map_task(block, query, cost_model)
    block_split = {c.key for c in clusters if c.key in split_keys}
    assignment = allocate(clusters, block_split, num_reducers)
    return MapTaskResult(
        block_index=block.index,
        input_weight=block.size,
        input_cardinality=block.cardinality,
        clusters=clusters,
        assignment=assignment,
        duration=duration,
        partials=partials,
        task_seed=task_seed,
        wall_seconds=time.perf_counter() - started,
    )


def shuffle_map_results(
    map_results: Sequence[MapTaskResult],
    num_reducers: int,
    topology: ClusterTopology | None = None,
) -> list[BucketInput]:
    """Gather every Map task's fragments per Reduce bucket (driver-side).

    Iterates Map results in block order and each task's assignment in
    its own deterministic allocation order, so the per-bucket partials
    dictionaries have a stable insertion order — the property that makes
    downstream Reduce outputs byte-identical across backends.  Asserts
    key locality: a key routed to two buckets is a hard failure.
    """
    weights = [0] * num_reducers
    fragments = [0] * num_reducers
    remote = [0] * num_reducers
    partials: list[dict[Key, list[object]]] = [dict() for _ in range(num_reducers)]
    owner: dict[Key, int] = {}
    for m in map_results:
        cluster_size = {c.key: c.size for c in m.clusters}
        for key, bucket in m.assignment.assignment.items():
            prior = owner.setdefault(key, bucket)
            if prior != bucket:
                raise AssertionError(
                    f"key locality violated: {key!r} sent to buckets {prior} and {bucket}"
                )
            weights[bucket] += cluster_size[key]
            fragments[bucket] += 1
            if topology is not None and not topology.is_local(m.block_index, bucket):
                remote[bucket] += 1
            partials[bucket].setdefault(key, []).append(m.partials[key])
    return [
        BucketInput(
            bucket_index=j,
            weight=weights[j],
            fragment_count=fragments[j],
            remote_fragments=remote[j],
            partials=partials[j],
        )
        for j in range(num_reducers)
    ]


def run_reduce_task(
    bucket: BucketInput,
    aggregator: Aggregator,
    cost_model: TaskCostModel,
    task_seed: int = 0,
) -> ReduceTaskResult:
    """One complete Reduce task: merge each key's partials in order."""
    started = time.perf_counter()
    results: dict[Key, object] = {}
    for key, parts in bucket.partials.items():
        acc = parts[0]
        for part in parts[1:]:
            acc = aggregator.merge(acc, part)
        results[key] = acc
    duration = cost_model.reduce_time(
        bucket.weight, bucket.fragment_count, bucket.remote_fragments
    )
    return ReduceTaskResult(
        bucket_index=bucket.bucket_index,
        input_weight=bucket.weight,
        fragment_count=bucket.fragment_count,
        key_count=len(bucket.partials),
        duration=duration,
        results=results,
        remote_fragments=bucket.remote_fragments,
        task_seed=task_seed,
        wall_seconds=time.perf_counter() - started,
    )


def execute_batch_tasks(
    batch: PartitionedBatch,
    query: Query,
    partitioner: Partitioner,
    num_reducers: int,
    cost_model: TaskCostModel,
    topology: ClusterTopology | None = None,
    run_seed: int = 0,
    tracer: Tracer = NULL_TRACER,
) -> BatchExecution:
    """Run the full Map -> shuffle -> Reduce computation of one batch.

    Each Map task routes its clusters to Reduce buckets through the
    technique's own allocator (hashing for all baselines, Algorithm 3
    for Prompt).  Reduce tasks then merge, per key, the partial results
    of every contributing Map task.  With a ``topology``, fragments
    fetched from Map tasks on other nodes additionally pay the cost
    model's network term.

    This is the serial reference implementation; execution backends in
    :mod:`repro.engine.executors` reuse the same per-task units and must
    reproduce its output bit-for-bit.
    """
    if num_reducers < 1:
        raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
    allocate = partitioner.reduce_allocation()
    split = set(batch.split_keys)
    batch_index = batch.info.index
    traced = tracer.enabled
    map_results = []
    for block in batch.blocks:
        with (
            tracer.span(
                "map_task", task_id=block.index, batch=batch_index, attempt=0
            )
            if traced
            else _NULL_CM
        ):
            map_results.append(
                run_map_task(
                    block,
                    query,
                    allocate,
                    num_reducers,
                    {k for k in split if k in block},
                    cost_model,
                    task_seed=derive_task_seed(
                        run_seed, batch_index, "map", block.index
                    ),
                )
            )
    with tracer.span("shuffle", batch=batch_index):
        buckets = shuffle_map_results(map_results, num_reducers, topology)
    reduce_results = []
    for bucket in buckets:
        with (
            tracer.span(
                "reduce_task", task_id=bucket.bucket_index,
                batch=batch_index, attempt=0,
            )
            if traced
            else _NULL_CM
        ):
            reduce_results.append(
                run_reduce_task(
                    bucket,
                    query.aggregator,
                    cost_model,
                    task_seed=derive_task_seed(
                        run_seed, batch_index, "reduce", bucket.bucket_index
                    ),
                )
            )
    return BatchExecution(
        map_results=map_results, reduce_results=reduce_results, backend="serial"
    )
