"""Cross-feature engine runs: controllers composed, all techniques."""

from __future__ import annotations

import pytest

from repro.core.config import EarlyReleaseConfig, ElasticityConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.lateness import LatenessConfig
from repro.engine.tasks import TaskCostModel
from repro.extensions.batch_sizing import BatchSizingConfig
from repro.partitioners import PARTITIONER_NAMES, make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, DelayedSource, synd_source


def _source(rate=1_500.0, seed=5):
    return synd_source(0.8, num_keys=300, arrival=ConstantRate(rate), seed=seed)


def test_every_registered_technique_runs_end_to_end():
    """Smoke: all registry names (incl. ablation variants) drive the engine."""
    config = EngineConfig(
        batch_interval=0.5, num_blocks=3, num_reducers=3, track_outputs=True
    )
    answers = {}
    for name in PARTITIONER_NAMES:
        engine = MicroBatchEngine(
            make_partitioner(name),
            wordcount_query(window_length=1.0),
            config,
        )
        result = engine.run(_source(rate=800), 3)
        assert len(result.stats.records) == 3, name
        answers[name] = result.window_answers[-1]
    # techniques that cut at the heartbeat all agree exactly
    heartbeat_cut = [n for n in PARTITIONER_NAMES if not n.startswith("prompt")]
    reference = answers[heartbeat_cut[0]]
    for name in heartbeat_cut[1:]:
        assert answers[name] == reference, name
    # accumulator techniques agree among themselves (same cutoff framing)
    prompt_like = [n for n in PARTITIONER_NAMES if n.startswith("prompt")]
    for name in prompt_like[1:]:
        assert answers[name] == answers["prompt"], name


def test_elasticity_and_batch_sizing_compose():
    """Both controllers active: resizing + task scaling cooperate."""
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=8, cores_per_node=4),
        cost_model=TaskCostModel(map_fixed=0.1, reduce_fixed=0.1, map_per_tuple=6e-4),
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=2, grace=1,
            max_map_tasks=16, max_reduce_tasks=16,
        ),
        batch_sizing=BatchSizingConfig(
            target_ratio=0.8, min_interval=0.5, max_interval=4.0
        ),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    result = engine.run(_source(rate=3_000.0), 16)
    tail = result.stats.records[-4:]
    # jointly stabilized: load within bounds at the end
    assert all(r.load <= 1.05 for r in tail)
    # and at least one of the two dials moved
    moved_interval = any(
        abs(r.batch_interval - 1.0) > 1e-9 for r in result.stats.records
    )
    moved_tasks = any(r.map_tasks != 2 for r in result.stats.records)
    assert moved_interval or moved_tasks


def test_lateness_with_prompt_early_release():
    """Cutoff framing and the delay contract interact coherently."""
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=4,
        num_reducers=4,
        early_release=EarlyReleaseConfig(slack_fraction=0.05),
        lateness=LatenessConfig(max_delay=0.2),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    source = DelayedSource(
        _source(rate=2_000.0), max_delay=0.3, delayed_fraction=0.3, seed=9
    )
    result = engine.run(source, 8)
    assert result.lateness is not None
    assert result.lateness.total > 0
    # nothing processed violated the contract by construction
    assert result.stats.total_tuples == (
        result.lateness.on_time + result.lateness.late_accepted
    )


def test_topology_with_elasticity():
    """Remote-fragment pricing keeps working as task counts change."""
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=4, cores_per_node=4),
        cost_model=TaskCostModel(
            map_per_tuple=4e-4, network_per_remote_fragment=1e-4
        ),
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=2, grace=1,
            max_map_tasks=8, max_reduce_tasks=8,
        ),
        use_topology=True,
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    result = engine.run(_source(rate=4_000.0), 12)
    assert result.stats.records[-1].map_tasks >= 2
