"""Late-tuple handling: the bounded-delay assumption made operational.

Section 2.1 assumes "the delay between the timestamp of a tuple and its
ingestion time cannot exceed a maximum delay", and Section 8 clarifies
the guarantee: "a maximum delay (i.e., a small percentage of the batch
interval) can be defined to all delayed tuples from the source to be
included in the correct batch.  Cases where the data tuples are
expected to be delayed more than the batch-interval are to be handled
outside of Prompt's execution engine, e.g., via revision tuples."

The monitor enforces exactly that contract at the receiver: a tuple
whose source timestamp lags the current batch's start by at most
``max_delay`` is *late but accepted* (coarse-grained ordering — it
counts toward the batch that ingests it); anything older is overdue and
is dropped (and counted), to be compensated outside the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.batch import BatchInfo
from ..core.tuples import StreamTuple

__all__ = ["LatenessConfig", "LatenessMonitor"]


@dataclass(frozen=True, slots=True)
class LatenessConfig:
    """The source-to-ingestion delay contract."""

    #: maximum tolerated (timestamp -> batch start) lag, in seconds;
    #: the paper suggests a small fraction of the batch interval
    max_delay: float
    #: drop tuples beyond the contract (True, the paper's reading) or
    #: accept them anyway while still counting them (False — useful for
    #: measuring how much revision-tuple traffic a source would cause)
    drop_overdue: bool = True

    def __post_init__(self) -> None:
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")


class LatenessMonitor:
    """Classifies ingested tuples against the delay contract."""

    def __init__(self, config: LatenessConfig) -> None:
        self.config = config
        self.on_time = 0
        self.late_accepted = 0
        self.overdue = 0

    @property
    def total(self) -> int:
        return self.on_time + self.late_accepted + self.overdue

    def admit(
        self, tuples: Sequence[StreamTuple], info: BatchInfo
    ) -> list[StreamTuple]:
        """Filter one batch's ingested tuples per the contract.

        A tuple is *on time* if its timestamp falls at/after the batch
        start, *late* if it lags by at most ``max_delay`` (accepted into
        this batch — coarse-grained ordering), *overdue* beyond that.
        """
        horizon = info.t_start - self.config.max_delay
        admitted: list[StreamTuple] = []
        for t in tuples:
            if t.ts >= info.t_start:
                self.on_time += 1
                admitted.append(t)
            elif t.ts >= horizon:
                self.late_accepted += 1
                admitted.append(t)
            else:
                self.overdue += 1
                if not self.config.drop_overdue:
                    admitted.append(t)
        return admitted

    def drop_rate(self) -> float:
        """Fraction of ingested tuples that violated the contract."""
        total = self.total
        return self.overdue / total if total else 0.0
