"""Execution backends: seeds, registry, fallback policy, pool lifecycle."""

from __future__ import annotations

import pickle

import pytest

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.engine.executors import (
    EXECUTOR_NAMES,
    ParallelExecutor,
    SerialExecutor,
    _is_infrastructure_error,
    make_executor,
)
from repro.engine.tasks import TaskCostModel, derive_task_seed, execute_batch_tasks
from repro.partitioners import HashPartitioner
from repro.queries.base import Query, SumAggregator
from repro.queries.wordcount import count_one

INFO = BatchInfo(0, 0.0, 1.0)


def _tuples(n=40, keys=5):
    return [
        StreamTuple(ts=i * 0.01, key=f"k{i % keys}", value=i) for i in range(n)
    ]


def _batch(tuples=None, p=3):
    part = HashPartitioner()
    return part.partition(tuples if tuples is not None else _tuples(), p, INFO), part


def _query(**kw):
    kw.setdefault("map_fn", count_one)
    return Query(name="q", aggregator=SumAggregator(), **kw)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_task_seed_is_stable():
    assert derive_task_seed(0, 0, "map", 0) == derive_task_seed(0, 0, "map", 0)


def test_task_seed_distinguishes_every_coordinate():
    base = derive_task_seed(1, 2, "map", 3)
    assert derive_task_seed(9, 2, "map", 3) != base
    assert derive_task_seed(1, 9, "map", 3) != base
    assert derive_task_seed(1, 2, "reduce", 3) != base
    assert derive_task_seed(1, 2, "map", 9) != base


def test_task_seed_fits_in_63_bits():
    for args in [(0, 0, "map", 0), (2**40, 10**6, "reduce", 4096)]:
        seed = derive_task_seed(*args)
        assert 0 <= seed < 2**63


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_make_executor_builds_both_backends():
    assert isinstance(make_executor("serial"), SerialExecutor)
    parallel = make_executor("parallel", max_workers=2, run_seed=5)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.max_workers == 2
    assert parallel.run_seed == 5
    parallel.close()


def test_make_executor_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("gpu")


def test_executor_names_cover_registry():
    for name in EXECUTOR_NAMES:
        make_executor(name).close()


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(0)


# ----------------------------------------------------------------------
# serial backend
# ----------------------------------------------------------------------
def test_serial_executor_matches_reference_function():
    batch, part = _batch()
    query = _query()
    with SerialExecutor(run_seed=3) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    reference = execute_batch_tasks(
        batch, query, part, 2, TaskCostModel(), run_seed=3
    )
    assert execution.batch_output() == reference.batch_output()
    assert execution.map_durations == reference.map_durations
    assert execution.backend == "serial"


# ----------------------------------------------------------------------
# parallel backend
# ----------------------------------------------------------------------
def test_parallel_executor_matches_serial_on_one_batch():
    batch, part = _batch()
    query = _query()
    serial = execute_batch_tasks(batch, query, part, 3, TaskCostModel())
    with ParallelExecutor(2) as backend:
        parallel = backend.run_batch(batch, query, part, 3, TaskCostModel())
    assert backend.fallbacks == 0
    assert parallel.backend == "parallel"
    assert pickle.dumps(parallel.batch_output()) == pickle.dumps(
        serial.batch_output()
    )
    assert parallel.map_durations == serial.map_durations
    assert parallel.reduce_durations == serial.reduce_durations


def test_parallel_pool_is_reused_across_batches():
    part = HashPartitioner()
    with ParallelExecutor(2) as backend:
        for k in range(3):
            info = BatchInfo(k, float(k), float(k + 1))
            batch = part.partition(_tuples(), 3, info)
            backend.run_batch(batch, _query(), part, 2, TaskCostModel())
        assert backend._pool is not None
        pool = backend._pool
        batch = part.partition(_tuples(), 3, BatchInfo(9, 9.0, 10.0))
        backend.run_batch(batch, _query(), part, 2, TaskCostModel())
        assert backend._pool is pool
    assert backend._pool is None  # context exit shut the pool down


def test_unpicklable_query_falls_back_to_serial():
    batch, part = _batch()
    query = _query(map_fn=lambda k, v: 1)  # lambdas cannot be pickled
    with ParallelExecutor(2) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 1
    assert backend.last_fallback_reason is not None
    assert execution.backend == "serial"
    reference = execute_batch_tasks(batch, query, part, 2, TaskCostModel())
    assert execution.batch_output() == reference.batch_output()


def test_unpicklable_query_raises_when_fallback_disabled():
    batch, part = _batch()
    query = _query(map_fn=lambda k, v: 1)
    with ParallelExecutor(2, fallback_to_serial=False) as backend:
        with pytest.raises(Exception):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 0


def _raise_for_k3(key, value):
    if key == "k3":
        raise RuntimeError("application bug in map_fn")
    return 1


def test_application_errors_propagate_instead_of_falling_back():
    batch, part = _batch()
    query = _query(map_fn=_raise_for_k3)
    with ParallelExecutor(2) as backend:
        with pytest.raises(RuntimeError, match="application bug"):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 0  # a masked bug would be worse than a crash


def test_infrastructure_error_classifier():
    assert _is_infrastructure_error(pickle.PicklingError("x"))
    assert _is_infrastructure_error(TypeError("cannot pickle '_thread.lock'"))
    assert _is_infrastructure_error(
        AttributeError("Can't pickle local object 'f.<locals>.<lambda>'")
    )
    assert not _is_infrastructure_error(TypeError("bad operand type"))
    assert not _is_infrastructure_error(AttributeError("no attribute 'foo'"))
    assert not _is_infrastructure_error(RuntimeError("boom"))
    assert not _is_infrastructure_error(AssertionError("key locality violated"))


def test_parallel_rejects_zero_reducers():
    batch, part = _batch()
    with ParallelExecutor(2) as backend:
        with pytest.raises(ValueError):
            backend.run_batch(batch, _query(), part, 0, TaskCostModel())


def test_close_is_idempotent():
    backend = ParallelExecutor(2)
    backend.close()
    backend.close()
