#!/usr/bin/env python3
"""Quickstart: run a windowed WordCount through the micro-batch engine.

Streams a synthetic tweet-word workload through the simulated engine
under Prompt's partitioning scheme for a dozen one-second batches via
the one-shot :func:`repro.run` entry point, then prints per-batch
execution records plus the final sliding window's hottest words — the
smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.bench import render_run
from repro.queries import select_top_k, wordcount_query
from repro.workloads import tweets_source


def main() -> None:
    # One call: a 5,000 words/second tweet stream, a 10-second sliding
    # WordCount window, Prompt partitioning, 12 one-second batches on
    # the default simulated 4-node x 4-core cluster.  Extra keywords
    # (batch_interval, num_blocks, num_reducers here) become
    # EngineConfig fields — executor="parallel" would fan the tasks
    # out over a process pool with bit-identical results.
    result = repro.run(
        tweets_source(rate=5_000.0, seed=42),
        wordcount_query(window_length=10.0),
        partitioner="prompt",
        num_batches=12,
        batch_interval=1.0,
        num_blocks=8,
        num_reducers=8,
    )

    print("batch  tuples  keys   processing  load(W)  latency")
    for record in result.stats.records:
        print(
            f"{record.index:>5}  {record.tuple_count:>6}  {record.key_count:>5}"
            f"  {record.processing_time:>9.3f}s  {record.load:>6.2f}  {record.latency:>6.3f}s"
        )

    print(f"\nthroughput: {result.stats.throughput():,.0f} tuples/s")
    print(f"mean latency: {result.stats.mean_latency():.3f}s")
    print(f"stable (no back-pressure): {result.stable}")

    print("\ntop words in the final window:")
    for word, count in select_top_k(result.final_window_answer(), 5):
        print(f"  {word:>8}  {count}")

    print()
    print(render_run(result, title="run report"))


if __name__ == "__main__":
    main()
