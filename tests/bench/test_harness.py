"""Throughput search: bracketing, bisection, monotone stability."""

from __future__ import annotations

import pytest

from repro.bench.harness import ThroughputSearch, run_at_rate
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig
from repro.engine.tasks import TaskCostModel
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source


def _search(**kw):
    # deliberately heavy cost model so saturation happens at ~1-2k t/s
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=1, cores_per_node=2),
        cost_model=TaskCostModel(map_per_tuple=4e-4, reduce_per_tuple=2e-4),
        track_outputs=False,
    )
    defaults = dict(
        query=wordcount_query(),
        config=config,
        source_factory=lambda rate: synd_source(
            0.8, num_keys=200, arrival=ConstantRate(rate), seed=2
        ),
        num_batches=3,
        tolerance=0.15,
        initial_rate=1000.0,
    )
    defaults.update(kw)
    return ThroughputSearch(**defaults)


def test_run_at_rate_returns_result():
    search = _search()
    result = run_at_rate(
        make_partitioner("hash"),
        search.query,
        search.config,
        search.source_factory,
        200.0,
        2,
    )
    assert len(result.stats.records) == 2


def test_find_max_rate_brackets_the_boundary():
    search = _search()
    result = search.find_max_rate("prompt")
    assert result.max_rate > 0
    # the found rate is stable, a notch above is not
    assert search.stable_at(make_partitioner("prompt"), result.lo)
    assert not search.stable_at(make_partitioner("prompt"), result.hi * 1.3)


def test_search_respects_probe_cap():
    search = _search(max_probes=3, tolerance=0.0001)
    result = search.find_max_rate("hash")
    assert result.probes <= 3


def test_compare_orders_results_like_input():
    search = _search(tolerance=0.25)
    results = search.compare(["hash", "prompt"])
    assert [r.technique for r in results] == ["hash", "prompt"]


def test_search_handles_initial_rate_above_capacity():
    search = _search(initial_rate=50_000.0)
    result = search.find_max_rate("prompt")
    assert 0 < result.max_rate < 50_000.0
