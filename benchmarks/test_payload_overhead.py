"""Dispatch-payload microbenchmark: legacy vs worker-resident context.

Runs a broadcast-table WordCount (the Map function closes over a
20k-entry lookup table — the canonical run-invariant state) through the
parallel backend in both dispatch modes and records driver->worker
bytes per launched task attempt, in a light variant and a CPU-heavy
variant.  The bench asserts byte-identical outputs before reporting any
number, so the artifact can never show a byte saving obtained by
changing the answer.

This is also the regression gate for the worker-resident run context:
the light-workload row must show bytes/task at least 3x smaller under
resident-context (delta) dispatch than under legacy full-payload
dispatch, and the invariant slice must have been broadcast once per
run, not once per task.

Artifact: ``benchmarks/results/BENCH_payload_overhead.json``.
"""

from __future__ import annotations

from repro.bench import bench_payload_overhead, format_table


def test_payload_overhead(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_payload_overhead(
            rate=1_200.0,
            num_batches=5,
            num_keys=2_000,
            vocab_size=20_000,
            exponent=1.4,
            num_blocks=8,
            workers=2,
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "BENCH_payload_overhead",
        format_table(rows, title="Driver->worker payload bytes per task"),
        rows,
        store=dict(backend="parallel", partitioner="prompt"),
    )
    assert len(rows) == 2
    for row in rows:
        # output equality is asserted inside the bench; re-check the flag
        assert row["OutputsIdentical"] is True
        assert row["LegacyPayloadBytes"] > 0
        assert row["ResidentPayloadBytes"] > 0
        # same seeded workload => same task attempt count in both modes
        assert row["LegacyTaskAttempts"] == row["ResidentTaskAttempts"]
        # the broadcast happened once per pool generation (one clean run
        # => one install), and it actually carried the invariant slice
        assert row["ContextInstalls"] == 1
        assert row["ContextBytes"] > 0
    light = next(r for r in rows if r["Workload"] == "wordcount-light")
    # The acceptance gate: delta dispatch must cut per-task dispatch
    # bytes by at least 3x on the light workload, where payload size is
    # the whole story.  (The heavy row typically shows the same ratio —
    # payload composition is identical — but only the light row gates.)
    assert light["BytesPerTaskReduction"] >= 3.0, (
        f"expected >=3x bytes/task reduction, got "
        f"{light['BytesPerTaskReduction']:.2f}x "
        f"({light['LegacyBytesPerTask']:.0f} -> "
        f"{light['ResidentBytesPerTask']:.0f} bytes/task)"
    )
