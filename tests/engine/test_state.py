"""Batch state store: immutability, replication, eviction."""

from __future__ import annotations

import pytest

from repro.core.tuples import StreamTuple
from repro.engine.state import StateStore


def _tuples(n=3):
    return [StreamTuple(ts=i * 0.1, key=f"k{i}", value=i) for i in range(n)]


def test_put_and_get():
    store = StateStore()
    store.put(0, {"a": 1})
    state = store.get(0)
    assert state.index == 0
    assert dict(state.output) == {"a": 1}
    assert not state.recoverable
    assert 0 in store
    assert len(store) == 1


def test_output_is_immutable():
    store = StateStore()
    store.put(0, {"a": 1})
    with pytest.raises(TypeError):
        store.get(0).output["a"] = 2


def test_put_copies_the_mapping():
    store = StateStore()
    source = {"a": 1}
    store.put(0, source)
    source["a"] = 99
    assert store.get(0).output["a"] == 1


def test_duplicate_put_rejected():
    store = StateStore()
    store.put(0, {})
    with pytest.raises(ValueError, match="already has preserved state"):
        store.put(0, {})


def test_get_missing_raises_keyerror():
    with pytest.raises(KeyError):
        StateStore().get(5)


def test_replication_required_when_enabled():
    store = StateStore(replicate_inputs=True)
    with pytest.raises(ValueError, match="no input tuples"):
        store.put(0, {})
    store.put(1, {"a": 1}, _tuples())
    assert store.get(1).recoverable
    assert len(store.get(1).replicated_input) == 3


def test_drop_output_keeps_replicated_input():
    store = StateStore(replicate_inputs=True)
    store.put(0, {"a": 1}, _tuples())
    store.drop_output(0)
    state = store.get(0)
    assert dict(state.output) == {}
    assert state.recoverable


def test_restore_reinstates_output():
    store = StateStore(replicate_inputs=True)
    store.put(0, {"a": 1}, _tuples())
    store.drop_output(0)
    store.restore(0, {"a": 1})
    assert dict(store.get(0).output) == {"a": 1}


def test_evict_through_releases_expired_states():
    store = StateStore()
    for i in range(5):
        store.put(i, {})
    assert store.evict_through(2) == 3
    assert len(store) == 2
    assert 3 in store and 4 in store


def test_put_after_eviction_point_rejected():
    store = StateStore()
    store.put(0, {})
    store.evict_through(1)
    with pytest.raises(ValueError, match="already evicted"):
        store.put(1, {})
    store.put(2, {})  # beyond the eviction point is fine
