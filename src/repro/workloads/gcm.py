"""GCM: Google Cluster Monitoring task-event stream.

Table 1: 16 GB, 600k distinct keys (job ids).  Real cluster traces are
dominated by a few enormous jobs emitting task events continuously
while most jobs are tiny — a heavy tail we model with Zipf exponent
1.2 over the job universe.  Values are ``(cpu, memory)`` normalized
resource requests in (0, 1], log-normally spread the way the public
trace's request distributions are.
"""

from __future__ import annotations

import numpy as np

from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, ZipfKeyedSource

__all__ = ["gcm_source"]


def _resource_values(rng: np.random.Generator, count: int) -> list[tuple[float, float]]:
    cpu = np.minimum(1.0, rng.lognormal(mean=-3.0, sigma=1.0, size=count))
    mem = np.minimum(1.0, rng.lognormal(mean=-3.5, sigma=1.2, size=count))
    return [(float(c), float(m)) for c, m in zip(cpu, mem)]


def gcm_source(
    *,
    num_jobs: int = 15_000,
    arrival: ArrivalProcess | None = None,
    rate: float = 10_000.0,
    job_skew: float = 1.2,
    seed: int = 0,
) -> ZipfKeyedSource:
    """Build the synthetic cluster-monitoring stream (key = job id)."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="GCM",
        paper_size="16GB",
        paper_cardinality="600K",
        scaled_cardinality=num_jobs,
        description="Task events with heavy-tailed job sizes; value = (cpu, mem).",
    )
    return ZipfKeyedSource(
        name="gcm",
        arrival=arrival,
        num_keys=num_jobs,
        exponent=job_skew,
        seed=seed,
        value_sampler=_resource_values,
        dataset=props,
    )
