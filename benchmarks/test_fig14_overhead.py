"""Figure 14: what Prompt's machinery costs.

(a) throughput of Prompt vs the post-sort ablation — frequency-aware
buffering hides the sort inside batching, post-sort pays it inside the
heartbeat; (b) measured Algorithm 2 latency as % of the batch interval
(paper: bounded by 5%, hidden entirely by Early Batch Release).
"""

from __future__ import annotations

from repro.bench import (
    fig14a_post_sort_throughput,
    fig14b_partition_overhead,
    format_table,
)


def test_fig14a_post_sort_throughput(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: fig14a_post_sort_throughput(
            num_batches=3,
            num_keys=40_000,
            exponent=0.6,
            tolerance=0.1,
            initial_rate=6_000.0,
            cost_scale=2.0,
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "fig14a_post_sort",
        format_table(rows, title="Figure 14a: Prompt vs post-sort throughput"),
        rows,
        store=dict(workload="synd-z1.4", backend="serial"),
    )
    by_name = {r["Technique"]: r["MaxThroughput"] for r in rows}
    assert by_name["prompt"] >= by_name["prompt-postsort"]


def test_fig14b_partition_overhead(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: fig14b_partition_overhead(
            rates=(5_000.0, 10_000.0, 20_000.0, 40_000.0)
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        "fig14b_overhead",
        format_table(rows, title="Figure 14b: Algorithm 2 cost as % of a 1 s batch interval"),
        rows,
        store=dict(partitioner="prompt"),
    )
    for row in rows:
        # Phase attribution: buffering (Alg 1) and planning (Alg 2) are
        # reported separately, and together never exceed the measured
        # end-to-end wall-clock of the partition call.
        assert row["Alg1WallSeconds"] > 0.0, row
        assert row["Alg2WallSeconds"] > 0.0, row
        assert (
            row["Alg1WallSeconds"] + row["Alg2WallSeconds"]
            <= row["TotalWallSeconds"] * 1.05
        ), row
        # Figure 14b's bound applies to the plan step alone.
        assert row["OverheadPct"] < 5.0, row
