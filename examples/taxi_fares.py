#!/usr/bin/env python3
"""DEBS-style taxi analytics: total fare per taxi over a sliding window.

Streams synthetic New York taxi trips (reported at drop-off, as in the
DEBS 2015 Grand Challenge) through the engine running *DEBS Query 1*:
total fare per taxi over a long window with a short slide, maintained
incrementally with inverse-Reduce as batches expire.

Also demonstrates fault tolerance: batch 4's state is deliberately
lost and recomputed from the replicated input — the window answer is
unaffected (exactly-once, Section 8 of the paper).

Run:  python examples/taxi_fares.py
"""

from __future__ import annotations

from repro import EngineConfig, MicroBatchEngine, make_partitioner
from repro.engine import FailureInjector
from repro.queries import debs_query1, select_top_k
from repro.workloads import debs_taxi_source


def main() -> None:
    # Query 1 at a 1/1200 time scale: the paper's 2 h window / 5 min
    # slide becomes 6 s / 0.25 s of simulated time.
    query = debs_query1(time_scale=1 / 1200.0)
    print(f"window: {query.window.length:.1f}s sliding every "
          f"{query.window.slide:.2f}s (scaled from 2h/5min)")

    injector = FailureInjector(fail_batches=[4])
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        query,
        EngineConfig(
            batch_interval=0.5,
            num_blocks=8,
            num_reducers=8,
            replicate_inputs=True,  # enables recovery of lost batch state
        ),
        failure_injector=injector,
    )

    source = debs_taxi_source(num_taxis=2_000, rate=6_000.0, seed=7)
    result = engine.run(source, num_batches=16)

    for event in result.recoveries:
        status = "identical" if event.matched_original else "DIVERGED"
        print(f"batch {event.batch_index}: state lost, recomputed "
              f"{event.recovered_keys} keys from replicated input -> {status}")

    answer = result.final_window_answer()
    print(f"\ntaxis with fares in the final window: {len(answer)}")
    print("top-5 earners:")
    for taxi, fare in select_top_k(answer, 5):
        print(f"  taxi {taxi:>6}: ${fare:,.2f}")

    print(f"\nmean end-to-end latency: {result.stats.mean_latency():.3f}s")
    print(f"stable: {result.stable}")


if __name__ == "__main__":
    main()
