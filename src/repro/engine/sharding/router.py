"""Deterministic shard routers: tenant -> shard, with rebalance epochs.

The routing tier in front of the N engines.  Three strategies, all
stateless pure functions of the tenant id (so per-tenant results stay
reproducible, cf. Partial Key Grouping's argument for deterministic
routing):

- ``hash`` — :func:`~repro.core.hashing.stable_hash` modulo N; the
  simplest balanced assignment.
- ``consistent-hash`` — a ring of virtual nodes; adding a shard moves
  only the tenants whose ring arc it claims, not a full reshuffle.
- ``key-range`` — contiguous ranges over the 32-bit stable-hash space;
  shard i owns ``[i * 2^32 / N, (i + 1) * 2^32 / N)``.

Every router builds on :func:`stable_hash` (seeded CRC32 over the
canonical key bytes), so routing is identical across processes and
platforms and survives pickling — the same contract the partitioner
registry honours.

:class:`RoutingTable` layers *rebalance epochs* on top: a pre-declared
:class:`Rebalance` moves one tenant to a new shard from a given batch
index onward, making the effective route a pure function of
``(tenant, batch_index)`` — the deterministic handoff the sharded
driver's migration protocol needs.
"""

from __future__ import annotations

import abc
from bisect import bisect_left
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ...core.hashing import stable_hash

__all__ = [
    "ROUTER_NAMES",
    "ROUTE_SEED",
    "ConsistentHashRouter",
    "HashRouter",
    "KeyRangeRouter",
    "Rebalance",
    "RoutingTable",
    "ShardRouter",
    "make_router",
]

#: seed decoupling the routing tier's hash stream from the engine's
#: bucket hashing, so shard choice never correlates with reduce buckets
ROUTE_SEED = 0x5A4D


class ShardRouter(abc.ABC):
    """Maps a tenant id to one of ``num_shards`` shards, deterministically."""

    name: str = "router"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    @abc.abstractmethod
    def route(self, tenant: Hashable) -> int:
        """The shard index in ``[0, num_shards)`` owning ``tenant``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashRouter(ShardRouter):
    """``stable_hash(tenant) % N`` — balanced, oblivious to shard churn."""

    name = "hash"

    def __init__(self, num_shards: int, *, seed: int = ROUTE_SEED) -> None:
        super().__init__(num_shards)
        self.seed = seed

    def route(self, tenant: Hashable) -> int:
        return stable_hash(tenant, self.seed) % self.num_shards


class ConsistentHashRouter(ShardRouter):
    """Virtual-node hash ring: route to the first point at or past the key.

    Each shard owns ``vnodes`` points on the 32-bit ring; a tenant maps
    to the owner of the first point clockwise from its hash.  Growing
    the ring from N to N+1 shards relocates only the tenants whose arcs
    the new shard's points claim (~1/(N+1) of them in expectation).
    """

    name = "consistent-hash"

    def __init__(
        self, num_shards: int, *, vnodes: int = 64, seed: int = ROUTE_SEED
    ) -> None:
        super().__init__(num_shards)
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(vnodes):
                point = stable_hash(f"shard-{shard}-vnode-{replica}", seed)
                points.append((point, shard))
        points.sort()
        self._points = tuple(p for p, _ in points)
        self._owners = tuple(s for _, s in points)

    def route(self, tenant: Hashable) -> int:
        ix = bisect_left(self._points, stable_hash(tenant, self.seed))
        if ix == len(self._points):  # wrap past the top of the ring
            ix = 0
        return self._owners[ix]


class KeyRangeRouter(ShardRouter):
    """Contiguous equal ranges over the 32-bit stable-hash space."""

    name = "key-range"

    _SPACE = 1 << 32

    def __init__(self, num_shards: int, *, seed: int = ROUTE_SEED) -> None:
        super().__init__(num_shards)
        self.seed = seed

    def route(self, tenant: Hashable) -> int:
        h = stable_hash(tenant, self.seed) % self._SPACE
        return (h * self.num_shards) >> 32

    def range_of(self, shard: int) -> tuple[int, int]:
        """The half-open hash range ``[lo, hi)`` shard ``shard`` owns."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard must be in [0, {self.num_shards})")
        lo = -(-shard * self._SPACE // self.num_shards)
        hi = -(-(shard + 1) * self._SPACE // self.num_shards)
        return lo, hi


_ROUTERS: dict[str, type[ShardRouter]] = {
    HashRouter.name: HashRouter,
    ConsistentHashRouter.name: ConsistentHashRouter,
    KeyRangeRouter.name: KeyRangeRouter,
}

#: every registered router strategy, in registry order
ROUTER_NAMES: tuple[str, ...] = tuple(_ROUTERS)


def make_router(name: str, num_shards: int, **kwargs: object) -> ShardRouter:
    """Construct a router by registry name (see :data:`ROUTER_NAMES`)."""
    cls = _ROUTERS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown router {name!r}; choose from {', '.join(ROUTER_NAMES)}"
        )
    return cls(num_shards, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class Rebalance:
    """Move ``tenant`` to ``to_shard`` from batch ``at_batch`` onward.

    Declared before the run starts, so the handoff is deterministic: the
    tenant's tuples in batches ``< at_batch`` route to its original
    shard, tuples in batches ``>= at_batch`` to the new one, and the
    cross-shard window merge stitches the two halves back together
    exactly (the merge operates on raw accumulators, so a window
    spanning the boundary is reconstructed without approximation).
    """

    tenant: Hashable
    to_shard: int
    at_batch: int

    def __post_init__(self) -> None:
        if self.to_shard < 0:
            raise ValueError(f"to_shard must be >= 0, got {self.to_shard}")
        if self.at_batch < 0:
            raise ValueError(f"at_batch must be >= 0, got {self.at_batch}")


class RoutingTable:
    """A router plus rebalance epochs: route as a function of batch index."""

    def __init__(
        self, router: ShardRouter, rebalances: Iterable[Rebalance] = ()
    ) -> None:
        self.router = router
        self.rebalances: tuple[Rebalance, ...] = tuple(rebalances)
        moves: dict[Hashable, list[tuple[int, int]]] = {}
        for r in self.rebalances:
            if r.to_shard >= router.num_shards:
                raise ValueError(
                    f"rebalance target shard {r.to_shard} out of range "
                    f"for {router.num_shards} shards"
                )
            moves.setdefault(r.tenant, []).append((r.at_batch, r.to_shard))
        for plan in moves.values():
            plan.sort()
        self._moves = moves

    def shard_for(self, tenant: Hashable, batch_index: int) -> int:
        """The shard owning ``tenant``'s tuples in batch ``batch_index``."""
        shard = self.router.route(tenant)
        for at_batch, to_shard in self._moves.get(tenant, ()):
            if batch_index >= at_batch:
                shard = to_shard
        return shard

    def assignment(
        self, tenants: Sequence[Hashable], batch_index: int = 0
    ) -> dict[Hashable, int]:
        """Tenant -> shard map for one batch (diagnostics and tests)."""
        return {t: self.shard_for(t, batch_index) for t in tenants}
