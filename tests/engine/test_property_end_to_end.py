"""Property: partitioning never changes query semantics, end to end.

For random mixes of keys/values and any technique, the engine's batch
outputs must equal the direct per-key reference aggregation — the
strongest correctness statement the system makes (key locality plus
fragment merging plus windowing all have to cooperate).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.engine.tasks import TaskCostModel, execute_batch_tasks
from repro.partitioners import make_partitioner
from repro.queries.base import Query, SumAggregator

TECHNIQUES = ("time", "shuffle", "hash", "pk2", "pk5", "pkh", "cam", "prompt",
              "prompt-zigzag", "prompt-sketch")


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 120))
    keys = draw(st.lists(st.integers(0, 25), min_size=n, max_size=n))
    values = draw(st.lists(st.integers(-10, 10), min_size=n, max_size=n))
    return [
        StreamTuple(ts=i / max(1, n), key=k, value=v)
        for i, (k, v) in enumerate(zip(keys, values))
    ]


@given(
    tuples=workloads(),
    technique=st.sampled_from(TECHNIQUES),
    num_blocks=st.integers(1, 6),
    num_reducers=st.integers(1, 5),
)
@settings(max_examples=120, deadline=None)
def test_property_batch_output_equals_reference(
    tuples, technique, num_blocks, num_reducers
):
    query = Query(name="sum", aggregator=SumAggregator())
    partitioner = make_partitioner(technique)
    batch = partitioner.partition(tuples, num_blocks, BatchInfo(0, 0.0, 1.0))
    batch.validate(expected_tuples=len(tuples))
    execution = execute_batch_tasks(
        batch, query, partitioner, num_reducers, TaskCostModel()
    )
    assert execution.batch_output() == query.reference_output(tuples)


@given(
    tuples=workloads(),
    technique=st.sampled_from(("shuffle", "hash", "prompt")),
)
@settings(max_examples=60, deadline=None)
def test_property_filtered_queries_stay_correct(tuples, technique):
    """Map-side filtering composes with any partitioning."""
    query = Query(
        name="positive-sum",
        aggregator=SumAggregator(),
        map_fn=lambda k, v: v if v > 0 else None,
    )
    partitioner = make_partitioner(technique)
    batch = partitioner.partition(tuples, 4, BatchInfo(0, 0.0, 1.0))
    execution = execute_batch_tasks(batch, query, partitioner, 3, TaskCostModel())
    assert execution.batch_output() == query.reference_output(tuples)


@given(
    tuples=workloads(),
    technique=st.sampled_from(("shuffle", "prompt")),
)
@settings(max_examples=60, deadline=None)
def test_property_holistic_queries_stay_correct(tuples, technique):
    """Without map-side combine (holistic), outputs still match."""
    query = Query(
        name="sum-holistic",
        aggregator=SumAggregator(),
        map_side_combine=False,
    )
    partitioner = make_partitioner(technique)
    batch = partitioner.partition(tuples, 3, BatchInfo(0, 0.0, 1.0))
    execution = execute_batch_tasks(batch, query, partitioner, 4, TaskCostModel())
    assert execution.batch_output() == query.reference_output(tuples)
