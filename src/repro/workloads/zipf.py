"""Bounded Zipf and Zipf-Mandelbrot key samplers.

SynD draws keys "from the Zipf distribution with exponent values
z in {0.1, ..., 2.0} and distinct keys up to 1e7" (Section 7.1).
``numpy.random.zipf`` is unbounded and undefined for z <= 1, so we
implement the bounded form directly: ``P(i) ∝ 1 / (i + q)^z`` over a
fixed universe of ``K`` ranks (``q=0`` gives plain Zipf; ``q>0`` the
Zipf-Mandelbrot variant used for English word frequencies).

Sampling uses inverse-CDF over the precomputed cumulative weights —
O(K) setup once, O(log K) per draw, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

__all__ = ["ZipfSampler"]


@dataclass(frozen=True)
class _Table:
    cdf: np.ndarray


class ZipfSampler:
    """Vectorized bounded Zipf(-Mandelbrot) sampler over ranks [0, K)."""

    def __init__(
        self,
        num_keys: int,
        exponent: float,
        *,
        shift: float = 0.0,
        seed: int = 0,
    ) -> None:
        if np is None:
            raise ModuleNotFoundError(
                "ZipfSampler needs numpy; install the 'fast' extra (numpy) "
                "to generate workloads"
            )
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        if shift < 0:
            raise ValueError(f"shift must be >= 0, got {shift}")
        self.num_keys = num_keys
        self.exponent = exponent
        self.shift = shift
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, num_keys + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks + shift, exponent)
        self._probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._probabilities)

    @property
    def probabilities(self) -> np.ndarray:
        """The rank probability vector (rank 0 is the hottest key)."""
        return self._probabilities

    def expected_top_share(self, top: int = 1) -> float:
        """Probability mass of the ``top`` hottest ranks (skew gauge)."""
        if top < 1:
            raise ValueError("top must be >= 1")
        return float(self._probabilities[: min(top, self.num_keys)].sum())

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks (int64 array in [0, num_keys))."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def reseed(self, seed: int) -> None:
        """Reset the random stream (fresh run, same distribution)."""
        self._rng = np.random.default_rng(seed)
