"""Failure injection and exactly-once recovery (Section 8)."""

from __future__ import annotations

import pytest

from repro.core.tuples import StreamTuple
from repro.engine.faults import FailureInjector, recover_batch
from repro.engine.state import StateStore
from repro.queries.base import Query, SumAggregator


def _query():
    return Query(name="sum", aggregator=SumAggregator())


def _tuples():
    return [
        StreamTuple(ts=0.0, key="a", value=1),
        StreamTuple(ts=0.1, key="b", value=2),
        StreamTuple(ts=0.2, key="a", value=3),
    ]


def test_recover_batch_recomputes_from_replica():
    store = StateStore(replicate_inputs=True)
    query = _query()
    tuples = _tuples()
    store.put(0, query.reference_output(tuples), tuples)
    store.drop_output(0)
    recovered = recover_batch(store, 0, query)
    assert dict(recovered) == {"a": 4, "b": 2}
    assert dict(store.get(0).output) == {"a": 4, "b": 2}


def test_recover_unreplicated_state_fails():
    store = StateStore()
    store.put(0, {"a": 1})
    with pytest.raises(RuntimeError, match="unrecoverable"):
        recover_batch(store, 0, _query())


def test_injector_exactly_once():
    store = StateStore(replicate_inputs=True)
    query = _query()
    tuples = _tuples()
    store.put(3, query.reference_output(tuples), tuples)
    injector = FailureInjector([3])
    assert injector.should_fail(3)
    assert not injector.should_fail(2)
    event = injector.fail_and_recover(store, 3, query)
    assert event.matched_original
    assert event.recovered_keys == 2
    assert injector.events == [event]


def test_injector_detects_nondeterministic_query():
    """A query whose recomputation differs flags the mismatch."""
    store = StateStore(replicate_inputs=True)
    tuples = _tuples()
    query = _query()
    store.put(0, {"a": 999}, tuples)  # wrong original state
    injector = FailureInjector([0])
    event = injector.fail_and_recover(store, 0, query)
    assert not event.matched_original


def test_injector_empty_by_default():
    injector = FailureInjector()
    assert not injector.should_fail(0)
    assert injector.events == []
