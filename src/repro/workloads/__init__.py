"""Workload generators: arrival processes and the Section 7.1 datasets."""

from .adversarial import HotKeyFlipSource, hot_key_flip_source
from .arrival import (
    ArrivalProcess,
    ConstantRate,
    PiecewiseRate,
    RampRate,
    ScaledRate,
    SinusoidalRate,
)
from .churn import KeyChurnSource, key_churn_source
from .debs_taxi import debs_taxi_source
from .elastic import ElasticWorkloadSource
from .gcm import gcm_source
from .late import DelayedSource
from .replay import ReplaySource
from .source import DatasetProperties, StreamSource, ZipfKeyedSource
from .synd import SYND_EXPONENTS, synd_source
from .tenants import (
    MultiTenantSource,
    TenantStream,
    TenantTaggedSource,
    tenant_of,
)
from .tpch import tpch_lineitem_source
from .tweets import tweets_source
from .zipf import ZipfSampler

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "DatasetProperties",
    "DelayedSource",
    "ElasticWorkloadSource",
    "HotKeyFlipSource",
    "KeyChurnSource",
    "MultiTenantSource",
    "PiecewiseRate",
    "RampRate",
    "ReplaySource",
    "SYND_EXPONENTS",
    "ScaledRate",
    "SinusoidalRate",
    "StreamSource",
    "TenantStream",
    "TenantTaggedSource",
    "ZipfKeyedSource",
    "ZipfSampler",
    "debs_taxi_source",
    "gcm_source",
    "hot_key_flip_source",
    "key_churn_source",
    "synd_source",
    "tenant_of",
    "tpch_lineitem_source",
    "tweets_source",
]
