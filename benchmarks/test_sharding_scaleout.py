"""Sharded topology scale-out: weak scaling over the shard axis.

Offers N shards an aggregate rate ∝ N and requires flat per-shard load
with ~linear aggregate throughput — the scale-out claim of the sharded
topology, measured on the engine's simulated clock.  The bench refuses
to time anything until a fixed-rate 1-vs-2-shard replay proves the
topology answer-preserving (byte-identical merged windows), so these
rows can never drift away from the differential suite's contract.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.bench import format_table
from repro.bench.sharding import (
    DEFAULT_SHARD_COUNTS,
    bench_sharding_scaleout,
    scaleout_gate,
)


def test_sharding_scaleout(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_sharding_scaleout(),
        rounds=1,
        iterations=1,
    )
    gate = scaleout_gate(rows)
    payload = {"rows": rows, "gate": gate}
    record_experiment(
        "BENCH_sharding_scaleout",
        format_table(
            rows,
            columns=[
                "Shards",
                "Router",
                "OfferedRate",
                "TotalTuples",
                "AggThroughput",
                "MeanShardLoad",
                "MaxShardShare",
                "Stable",
            ],
            title="Sharded scale-out: aggregate rate ∝ N, per-shard load flat",
        )
        + "\n\n"
        + format_table(
            [gate],
            title="Gate: stable, answers identical, >=0.8·N throughput",
        ),
        payload,
        store=dict(topology="sharded", router="hash"),
    )

    # Coverage: the whole default shard axis ran, identity-checked.
    assert [r["Shards"] for r in rows] == list(DEFAULT_SHARD_COUNTS)
    assert all(r["AnswersIdentical"] for r in rows)

    assert gate["GatePassed"], gate
