"""Cross-shard window merge in deterministic (tenant, key) order.

Per-shard window answers hold *raw accumulator values* (the engine's
:class:`~repro.engine.windows.WindowedAggregator` never finalizes), so
combining shards is exact: keys owned by one shard pass through
unchanged, and a key that lived on two shards inside one window — a
tenant rebalanced at a batch boundary — is reconstructed with
``aggregator.merge``, the same associative/commutative combine the
reduce stage itself uses.

Output ordering is canonical: rows sort by the type-qualified order
tokens of ``(tenant, key)`` (see :func:`~repro.core.tuples._order_token`),
so a merged answer is bit-identical no matter how many shards produced
it or in which order they ran.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Sequence

from ...core.tuples import _order_token
from ...queries.base import Aggregator

__all__ = [
    "canonical_order",
    "merge_window_answers",
    "tenant_slice",
]


def _sort_token(key: Hashable) -> tuple[str, str]:
    """(tenant token, key token) for tagged keys; (token, "") otherwise."""
    if isinstance(key, tuple) and len(key) == 2:
        return (_order_token(key[0]), _order_token(key[1]))
    return (_order_token(key), "")


def _intern_key(key: Hashable, interned: dict) -> Hashable:
    """Map equal keys (and key components) to one canonical object.

    Serial runs reuse the same tenant-string object across every tuple;
    parallel runs get distinct-but-equal strings back from worker
    unpickling.  Pickle memoizes by object *identity*, so those two
    equal answers would still serialize to different bytes.  Interning
    through one table makes the object graph a pure function of the
    values, restoring byte-identity.
    """
    if isinstance(key, tuple):
        key = tuple(_intern_key(part, interned) for part in key)
    try:
        return interned.setdefault(key, key)
    except TypeError:  # unhashable component — leave as-is
        return key


def canonical_order(answer: Mapping[Hashable, Any]) -> dict[Hashable, Any]:
    """The same mapping with keys in canonical (tenant, key) order.

    Python dicts preserve insertion order, so two runs that computed
    equal answers in different key orders pickle differently; canonical
    order makes byte comparison meaningful.  Keys are also interned
    (see :func:`_intern_key`) so the pickled bytes depend only on the
    values, not on which process originally built the key objects.
    Used by both the merge stage and the differential suite.
    """
    interned: dict = {}
    return {
        _intern_key(k, interned): answer[k]
        for k in sorted(answer, key=_sort_token)
    }


def merge_window_answers(
    per_shard: Sequence[Mapping[Hashable, Any]], aggregator: Aggregator
) -> dict[Hashable, Any]:
    """Combine one window's per-shard answers into the cross-shard answer."""
    merged: dict[Hashable, Any] = {}
    for answer in per_shard:
        for key, acc in answer.items():
            if key in merged:
                merged[key] = aggregator.merge(merged[key], acc)
            else:
                merged[key] = acc
    return canonical_order(merged)


def tenant_slice(
    answer: Mapping[Hashable, Any], tenant: Hashable
) -> dict[Hashable, Any]:
    """One tenant's rows of a merged answer, in canonical key order."""
    return canonical_order(
        {
            k: v
            for k, v in answer.items()
            if isinstance(k, tuple) and len(k) == 2 and k[0] == tenant
        }
    )
