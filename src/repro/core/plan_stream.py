"""Streaming plan emission: hand finalized blocks to dispatch as they exist.

Algorithm 2's placement passes decide every fragment's destination well
before the driver historically saw any of it — ``partition`` returned
only once the whole :class:`~repro.core.batch.PartitionedBatch` was
materialized, so the first Map task could not launch until the plan
*tail* (rebalance + split-key table + per-block tuple copies) had run.
This module splits that boundary:

- planners build the placement on :class:`LedgerBlock`\\ s — blocks that
  duck-type :class:`~repro.core.batch.DataBlock` for every operation the
  placement passes use, but record fragments as *segment references*
  ``(chain, start, stop)`` into the accumulator's existing tuple chains
  instead of copying tuples around;
- once the placement is final (after the rebalance pass, when the
  split-key reference table is known), each block is materialized and
  **yielded** — in block-index order — so the dispatcher can pickle and
  launch its Map task while later blocks are still being copied out;
- the generator's ``return`` value is the completed
  :class:`PartitionedBatch`, identical byte-for-byte to what the eager
  planner builds, because materialization replays the exact
  fragment-insertion and intra-fragment segment order of the eager path.

:class:`PlanStream` is the consumer-facing handle: it times every
generator resumption (the plan *CPU* time, which is what the
Early-Batch-Release audit must charge — not the overlapped wall-clock)
and stamps it onto the finished batch.  :func:`eager_plan_stream` wraps
an already-complete batch in the same interface so every partitioner
supports streaming consumers for free.
"""

from __future__ import annotations

import time
from typing import Generator, Iterator, Sequence

from .batch import BatchInfo, DataBlock, PartitionedBatch
from .tuples import Key, StreamTuple

__all__ = [
    "LedgerBlock",
    "PlanStream",
    "SegmentChain",
    "eager_plan_stream",
    "split_segment_chain",
]

#: what a streaming planner yields per finalized block: the block and
#: the subset of the batch's split keys present in it (known at yield
#: time because emission starts only after the reference table exists)
Emission = tuple[DataBlock, set]

#: the generator protocol streaming planners implement
PlanGenerator = Generator[Emission, None, PartitionedBatch]


class SegmentChain:
    """A key fragment as a list of segments into existing tuple chains.

    Each segment ``(chain, start, stop, weight)`` references a span of
    an accumulator chain (or any tuple sequence) without copying it.
    Concatenating the segments in insertion order reproduces exactly the
    tuple list the eager :class:`DataBlock` would hold, because the
    placement passes append fragments in the same order either way.
    """

    __slots__ = ("segments", "weight", "count")

    def __init__(self) -> None:
        self.segments: list[tuple[Sequence[StreamTuple], int, int, int]] = []
        self.weight = 0
        self.count = 0

    def append(
        self, chain: Sequence[StreamTuple], start: int, stop: int, weight: int
    ) -> None:
        if stop <= start:
            return
        self.segments.append((chain, start, stop, weight))
        self.weight += weight
        self.count += stop - start

    def extend(self, other: "SegmentChain") -> None:
        self.segments.extend(other.segments)
        self.weight += other.weight
        self.count += other.count

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[StreamTuple]:
        for chain, start, stop, _ in self.segments:
            yield from chain[start:stop]

    def to_list(self) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        for chain, start, stop, _ in self.segments:
            out.extend(chain[start:stop])
        return out

    # -- the rebalance pass's split, in segment space -------------------
    def split(self, cut: int) -> tuple["SegmentChain", "SegmentChain", int]:
        """Split into (head, tail, head_weight) exactly like
        ``_split_with_weight``: unit-weight chains split by count, and
        weighted chains take the shortest prefix reaching ``cut``.
        """
        head = SegmentChain()
        tail = SegmentChain()
        if cut <= 0:
            tail.extend(self)
            return head, tail, 0
        if self.weight == self.count:  # every weight is 1 (enforced >= 1)
            remaining = cut
            for chain, start, stop, _ in self.segments:
                if remaining <= 0:
                    tail.append(chain, start, stop, stop - start)
                    continue
                take = min(remaining, stop - start)
                head.append(chain, start, start + take, take)
                remaining -= take
                if take < stop - start:
                    tail.append(chain, start + take, stop, stop - (start + take))
            return head, tail, head.weight
        acc = 0
        split_done = False
        for chain, start, stop, seg_weight in self.segments:
            if split_done:
                tail.append(chain, start, stop, seg_weight)
                continue
            if acc + seg_weight < cut:
                head.append(chain, start, stop, seg_weight)
                acc += seg_weight
                continue
            # the cut lands inside this segment: per-tuple walk, exactly
            # the eager path's ``acc >= cut`` predicate
            before = acc
            for i in range(start, stop):
                acc += chain[i].weight
                if acc >= cut:
                    head.append(chain, start, i + 1, acc - before)
                    tail.append(chain, i + 1, stop, seg_weight - (acc - before))
                    split_done = True
                    break
        return head, tail, acc


class LedgerBlock:
    """Duck-types :class:`DataBlock` for the placement passes.

    Fragments are :class:`SegmentChain`\\ s; ``size`` / ``cardinality``
    / ``fragment_sizes`` / ``__contains__`` behave identically to the
    eager block, so ``_zigzag_pass`` and ``_rebalance_sizes`` run on
    either representation unchanged.
    """

    __slots__ = ("index", "_fragments", "_weight")

    def __init__(self, index: int) -> None:
        self.index = index
        self._fragments: dict[Key, SegmentChain] = {}
        self._weight = 0

    # -- mutation (mirrors DataBlock exactly, including empty skips) ----
    def add_fragment(self, key: Key, tuples: Sequence[StreamTuple]) -> None:
        if not tuples:
            return
        self.add_segment(key, tuples, 0, len(tuples), sum(t.weight for t in tuples))

    def add_segment(
        self,
        key: Key,
        chain: Sequence[StreamTuple],
        start: int,
        stop: int,
        weight: int,
    ) -> None:
        """Append ``chain[start:stop]`` (known ``weight``) to ``key``."""
        if stop <= start:
            return
        fragment = self._fragments.get(key)
        if fragment is None:
            fragment = self._fragments[key] = SegmentChain()
        fragment.append(chain, start, stop, weight)
        self._weight += weight

    def install_fragment(
        self,
        key: Key,
        tuples: "SegmentChain | Sequence[StreamTuple]",
        weight: int,
    ) -> None:
        if isinstance(tuples, SegmentChain):
            if not tuples.count:
                return
            fragment = self._fragments.get(key)
            if fragment is None:
                fragment = self._fragments[key] = SegmentChain()
            fragment.extend(tuples)
            self._weight += tuples.weight
            return
        self.add_segment(key, tuples, 0, len(tuples), weight)

    def remove_fragment(self, key: Key) -> SegmentChain:
        fragment = self._fragments.pop(key, None)
        if fragment is None:
            return SegmentChain()
        self._weight -= fragment.weight
        return fragment

    # -- inspection -----------------------------------------------------
    @property
    def size(self) -> int:
        return self._weight

    @property
    def cardinality(self) -> int:
        return len(self._fragments)

    def fragment_sizes(self) -> dict[Key, int]:
        return {k: f.weight for k, f in self._fragments.items()}

    def __contains__(self, key: Key) -> bool:
        return key in self._fragments

    def materialize(self) -> DataBlock:
        """Copy the planned fragments into a real :class:`DataBlock`.

        This is the single per-tuple copy of the streaming path; it
        replays fragment-dict insertion order and intra-fragment segment
        order, so the result is indistinguishable from the eager block.
        """
        block = DataBlock(self.index)
        for key, fragment in self._fragments.items():
            block.install_fragment(key, fragment.to_list(), fragment.weight)
        return block


def split_segment_chain(
    chain: SegmentChain, cut: int, total_weight: int | None = None
) -> tuple[SegmentChain, SegmentChain, int]:
    """``_split_with_weight``-shaped adapter over :meth:`SegmentChain.split`."""
    return chain.split(cut)


# ----------------------------------------------------------------------
class PlanStream:
    """Pull-based handle over a streaming plan generator.

    ``next_emission()`` resumes the generator and returns the next
    ``(DataBlock, block_split_keys)`` pair, or ``None`` once the plan is
    complete; ``result()`` drains whatever remains and returns the
    finished :class:`PartitionedBatch`.  Every resumption is timed, and
    the accumulated generator-resident seconds are stamped onto the
    batch as ``plan_elapsed`` — plan *CPU* time, not overlapped
    wall-clock, which keeps the Fig. 14b overhead attribution and the
    Early-Batch-Release slack audit honest under streaming dispatch.
    """

    __slots__ = ("info", "buffer_elapsed", "_gen", "_batch", "_done", "_elapsed", "_stamp")

    def __init__(
        self,
        info: BatchInfo,
        gen: PlanGenerator,
        *,
        buffer_elapsed: float = 0.0,
        stamp_timing: bool = True,
    ) -> None:
        self.info = info
        self.buffer_elapsed = buffer_elapsed
        self._gen = gen
        self._batch: PartitionedBatch | None = None
        self._done = False
        self._elapsed = 0.0
        self._stamp = stamp_timing

    @property
    def batch_index(self) -> int:
        return self.info.index

    @property
    def plan_elapsed(self) -> float:
        """Generator-resident seconds spent planning so far."""
        return self._elapsed

    def next_emission(self) -> Emission | None:
        """Resume the plan; returns the next finalized block or ``None``."""
        if self._done:
            return None
        started = time.perf_counter()
        try:
            emission = next(self._gen)
        except StopIteration as stop:
            self._elapsed += time.perf_counter() - started
            self._done = True
            batch = stop.value
            if batch is None:  # pragma: no cover - planner contract
                raise RuntimeError("plan generator returned no batch") from None
            if self._stamp:
                batch.buffer_elapsed = self.buffer_elapsed
                batch.plan_elapsed = self._elapsed
            self._batch = batch
            return None
        self._elapsed += time.perf_counter() - started
        return emission

    def result(self) -> PartitionedBatch:
        """Drain any remaining emissions and return the finished batch."""
        while not self._done:
            self.next_emission()
        assert self._batch is not None
        return self._batch


def eager_plan_stream(batch: PartitionedBatch) -> PlanStream:
    """Wrap an already-complete batch in the streaming interface.

    The default ``Partitioner.partition_stream`` path: emissions replay
    the finished plan's blocks in order, timing fields are left exactly
    as the eager planner stamped them.
    """

    def _replay() -> PlanGenerator:
        split_keys = batch.split_keys
        for block in batch.blocks:
            yield block, {k for k in split_keys if k in block}
        return batch

    return PlanStream(batch.info, _replay(), stamp_timing=False)
