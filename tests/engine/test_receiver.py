"""Receiver: batch framing, early-release cut-offs, carry-over."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.config import EarlyReleaseConfig
from repro.core.early_release import EarlyReleaseController
from repro.engine.receiver import Receiver
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source


def _source(rate=1000.0, seed=0):
    return synd_source(0.5, num_keys=50, arrival=ConstantRate(rate), seed=seed)


def test_collect_without_cutoff_spans_full_interval():
    receiver = Receiver(_source(), use_cutoff=False)
    tuples, window = receiver.collect(BatchInfo(0, 0.0, 1.0))
    assert len(tuples) == 1000
    assert all(0.0 <= t.ts < 1.0 for t in tuples)
    assert window.heartbeat == 1.0


def test_collect_with_cutoff_holds_back_slack_tuples():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.10))
    receiver = Receiver(_source(), early_release=ctl, use_cutoff=True)
    tuples, window = receiver.collect(BatchInfo(0, 0.0, 1.0))
    assert window.cutoff == pytest.approx(0.9)
    assert all(t.ts < 0.9 for t in tuples)
    assert len(tuples) == pytest.approx(900, abs=5)


def test_carryover_lands_in_next_batch():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.10))
    receiver = Receiver(_source(), early_release=ctl, use_cutoff=True)
    first, _ = receiver.collect(BatchInfo(0, 0.0, 1.0))
    second, _ = receiver.collect(BatchInfo(1, 1.0, 2.0))
    # second batch spans [0.9, 1.9): includes the held-back slack tuples
    assert any(t.ts < 1.0 for t in second)
    assert len(first) + len(second) == pytest.approx(1900, abs=5)


def test_consecutive_batches_cover_stream_without_loss():
    receiver = Receiver(_source(), use_cutoff=False)
    total = 0
    seen_ts = []
    for k in range(5):
        tuples, _ = receiver.collect(BatchInfo(k, float(k), float(k + 1)))
        total += len(tuples)
        seen_ts.extend(t.ts for t in tuples)
    assert total == 5000
    assert seen_ts == sorted(seen_ts)


def test_intervals_must_advance():
    receiver = Receiver(_source(), use_cutoff=False)
    receiver.collect(BatchInfo(1, 1.0, 2.0))
    with pytest.raises(ValueError, match="must advance"):
        receiver.collect(BatchInfo(0, 0.0, 1.0))


def test_reset_restarts_stream():
    receiver = Receiver(_source(), use_cutoff=False)
    a, _ = receiver.collect(BatchInfo(0, 0.0, 1.0))
    receiver.reset()
    b, _ = receiver.collect(BatchInfo(0, 0.0, 1.0))
    assert [t.key for t in a] == [t.key for t in b]
