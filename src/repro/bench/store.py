"""Persistent experiment results: one SQLite store for every bench.

Every benchmark used to end at a one-off ``BENCH_*.json`` artifact that
nothing aggregated — the perf trajectory across PRs was invisible, so a
regression could only be caught by a hard per-bench gate.  This module
is the durable half of the experiment matrix
(:mod:`repro.bench.matrix`): each executed grid cell becomes rows in
``benchmarks/results/results.db`` keyed by a *stable config hash*, so
re-runs are resumable (a cell already recorded for the current git SHA
and environment is skipped) and the history of any metric can be read
back for trend reports and noise-band regression checks
(:mod:`repro.bench.regress`).

Schema (``SCHEMA_VERSION`` = 1):

``cells``
    one row per executed cell occurrence: ``config_hash`` (sha256 of
    the canonical params JSON, 16 hex chars), the declared grid axes
    (workload, partitioner, backend, ingest_kernel, pipeline_depth,
    fault_profile), the full params JSON, a human ``label``, the git
    SHA the code ran at, the environment fingerprint (cpu count,
    python version, numpy/numba presence) plus its hash, and an ``obs``
    snapshot from :meth:`MetricsRegistry.as_dict` so a latency
    regression can be *explained* (e.g. by a retry or resurrection
    spike) instead of just flagged.

``metrics``
    one ``(cell_id, name, value)`` row per recorded scalar.

Artifacts written by the standalone benches are backfilled through
:func:`artifact_cells` / ``repro bench ingest`` — string/bool columns
become cell params, numeric columns become metric rows — so the
pre-store ``BENCH_*.json`` history joins the same trajectory.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import logging
import os
import platform
import sqlite3
import subprocess
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from .reporting import results_dir

__all__ = [
    "CellResult",
    "GRID_AXES",
    "ResultsStore",
    "SCHEMA_VERSION",
    "artifact_cells",
    "config_hash",
    "current_git_sha",
    "default_store_path",
    "environment_fingerprint",
    "environment_hash",
]

log = logging.getLogger(__name__)

SCHEMA_VERSION = 1

#: the declared grid axes, in canonical column order
GRID_AXES: tuple[str, ...] = (
    "workload",
    "partitioner",
    "backend",
    "ingest_kernel",
    "pipeline_depth",
    "fault_profile",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    id INTEGER PRIMARY KEY,
    config_hash TEXT NOT NULL,
    workload TEXT NOT NULL DEFAULT '',
    partitioner TEXT NOT NULL DEFAULT '',
    backend TEXT NOT NULL DEFAULT '',
    ingest_kernel TEXT NOT NULL DEFAULT '',
    pipeline_depth INTEGER NOT NULL DEFAULT 1,
    fault_profile TEXT NOT NULL DEFAULT 'none',
    label TEXT NOT NULL,
    params_json TEXT NOT NULL,
    git_sha TEXT NOT NULL,
    env_hash TEXT NOT NULL,
    env_json TEXT NOT NULL,
    obs_json TEXT NOT NULL DEFAULT '{}',
    source TEXT NOT NULL DEFAULT 'matrix',
    schema_version INTEGER NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_cells_hash ON cells (config_hash, env_hash, git_sha);
CREATE TABLE IF NOT EXISTS metrics (
    cell_id INTEGER NOT NULL REFERENCES cells (id) ON DELETE CASCADE,
    name TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_metrics_cell ON metrics (cell_id, name);
"""


# ----------------------------------------------------------------------
# identity: config hashes, environment fingerprints, git SHA
def _canonical(params: Mapping[str, Any]) -> dict[str, Any]:
    """Order- and type-stable view of a params mapping.

    Keys sort lexicographically; values normalize so that e.g. the int
    ``2`` and the float ``2.0`` hash identically and ``None`` matches
    the empty string a SQLite round-trip would hand back.
    """
    out: dict[str, Any] = {}
    for key in sorted(params):
        value = params[key]
        if value is None:
            value = ""
        elif isinstance(value, bool):
            value = str(value)
        elif isinstance(value, float) and value.is_integer():
            value = int(value)
        out[str(key)] = value
    return out


def config_hash(params: Mapping[str, Any]) -> str:
    """Stable 16-hex-char key for one grid cell's parameters."""
    blob = json.dumps(_canonical(params), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def environment_fingerprint() -> dict[str, Any]:
    """What about this machine could move a measurement."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "numpy": importlib.util.find_spec("numpy") is not None,
        "numba": importlib.util.find_spec("numba") is not None,
    }


def environment_hash(env: Mapping[str, Any] | None = None) -> str:
    """16-hex-char key for an environment fingerprint."""
    return config_hash(env if env is not None else environment_fingerprint())


def current_git_sha(root: Path | str | None = None) -> str:
    """The repo's HEAD SHA; ``REPRO_GIT_SHA`` overrides (CI detached
    checkouts), ``"unknown"`` when neither is available."""
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _as_int(value: Any, default: int) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def default_store_path() -> Path:
    """``benchmarks/results/results.db`` — the one canonical store."""
    return results_dir() / "results.db"


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellResult:
    """One executed cell, ready to be recorded.

    ``params`` is the full identity (hashed into ``config_hash``);
    ``metrics`` the scalar measurements; ``obs`` the
    ``MetricsRegistry.as_dict()`` snapshot explaining them.
    """

    params: Mapping[str, Any]
    metrics: Mapping[str, float]
    obs: Mapping[str, Any] = field(default_factory=dict)
    git_sha: str = ""
    env: Mapping[str, Any] = field(default_factory=dict)
    source: str = "matrix"
    label: str = ""

    @property
    def config_hash(self) -> str:
        return config_hash(self.params)

    def default_label(self) -> str:
        if self.label:
            return self.label
        axes = [str(self.params.get(a, "")) for a in GRID_AXES]
        if any(axes):
            return "/".join(a or "-" for a in axes)
        return self.config_hash


class ResultsStore:
    """SQLite-backed persistent store for experiment-matrix results."""

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        if self.path.parent and str(self.path) != ":memory:":
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- writes --------------------------------------------------------
    def record(self, cell: CellResult, *, created_at: float | None = None) -> int:
        """Append one cell occurrence plus its metric rows; returns id."""
        env = dict(cell.env) if cell.env else environment_fingerprint()
        sha = cell.git_sha or current_git_sha()
        params = _canonical(cell.params)
        cur = self._conn.execute(
            "INSERT INTO cells (config_hash, workload, partitioner, backend,"
            " ingest_kernel, pipeline_depth, fault_profile, label,"
            " params_json, git_sha, env_hash, env_json, obs_json, source,"
            " schema_version, created_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                cell.config_hash,
                str(params.get("workload", "")),
                str(params.get("partitioner", "")),
                str(params.get("backend", "")),
                str(params.get("ingest_kernel", "")),
                _as_int(params.get("pipeline_depth"), 1),
                str(params.get("fault_profile", "none") or "none"),
                cell.default_label(),
                json.dumps(params, sort_keys=True),
                sha,
                environment_hash(env),
                json.dumps(env, sort_keys=True),
                json.dumps(dict(cell.obs), sort_keys=True, default=str),
                cell.source,
                SCHEMA_VERSION,
                time.time() if created_at is None else created_at,
            ),
        )
        cell_id = int(cur.lastrowid)
        rows = [
            (cell_id, str(name), float(value))
            for name, value in cell.metrics.items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value == value  # NaN never joins a trajectory
        ]
        bools = [
            (cell_id, str(name), 1.0 if value else 0.0)
            for name, value in cell.metrics.items()
            if isinstance(value, bool)
        ]
        self._conn.executemany(
            "INSERT INTO metrics (cell_id, name, value) VALUES (?, ?, ?)",
            rows + bools,
        )
        self._conn.commit()
        return cell_id

    # -- reads ---------------------------------------------------------
    def completed_hashes(
        self, *, git_sha: str | None = None, env_hash: str | None = None
    ) -> set[str]:
        """Config hashes already recorded (optionally for one SHA/env).

        This is the resume set: ``fill`` skips a cell whose hash is
        complete for the current git SHA + environment, so a second
        run in a row executes zero cells, while a new SHA (a new PR)
        re-runs the grid and extends every trajectory by one point.
        """
        query = "SELECT DISTINCT config_hash FROM cells WHERE 1=1"
        args: list[str] = []
        if git_sha is not None:
            query += " AND git_sha = ?"
            args.append(git_sha)
        if env_hash is not None:
            query += " AND env_hash = ?"
            args.append(env_hash)
        return {row[0] for row in self._conn.execute(query, args)}

    def cell_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0])

    def metric_count(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM metrics").fetchone()[0])

    def metric_names(self) -> list[str]:
        return [
            r[0]
            for r in self._conn.execute(
                "SELECT DISTINCT name FROM metrics ORDER BY name"
            )
        ]

    def git_shas(self) -> list[str]:
        """Distinct SHAs in first-recorded order (the PR trajectory)."""
        return [
            r[0]
            for r in self._conn.execute(
                "SELECT git_sha FROM cells GROUP BY git_sha ORDER BY MIN(id)"
            )
        ]

    def cells(self, config_hash: str | None = None) -> list[dict[str, Any]]:
        """Cell rows (dicts), oldest first."""
        query = (
            "SELECT id, config_hash, label, params_json, git_sha, env_hash,"
            " env_json, obs_json, source, created_at FROM cells"
        )
        args: list[str] = []
        if config_hash is not None:
            query += " WHERE config_hash = ?"
            args.append(config_hash)
        query += " ORDER BY id"
        out = []
        for row in self._conn.execute(query, args):
            out.append(
                {
                    "id": row[0],
                    "config_hash": row[1],
                    "label": row[2],
                    "params": json.loads(row[3]),
                    "git_sha": row[4],
                    "env_hash": row[5],
                    "env": json.loads(row[6]),
                    "obs": json.loads(row[7]),
                    "source": row[8],
                    "created_at": row[9],
                }
            )
        return out

    def metrics_for(self, cell_id: int) -> dict[str, float]:
        return {
            name: value
            for name, value in self._conn.execute(
                "SELECT name, value FROM metrics WHERE cell_id = ? ORDER BY name",
                (cell_id,),
            )
        }

    def history(
        self,
        config_hash: str,
        metric: str,
        *,
        env_hash: str | None = None,
    ) -> list[dict[str, Any]]:
        """``(git_sha, value, created_at)`` rows for one trajectory,
        oldest first (insert order, which is also wall-clock order)."""
        query = (
            "SELECT c.git_sha, m.value, c.created_at, c.id FROM cells c"
            " JOIN metrics m ON m.cell_id = c.id"
            " WHERE c.config_hash = ? AND m.name = ?"
        )
        args: list[Any] = [config_hash, metric]
        if env_hash is not None:
            query += " AND c.env_hash = ?"
            args.append(env_hash)
        query += " ORDER BY c.id"
        return [
            {"git_sha": sha, "value": value, "created_at": at, "cell_id": cid}
            for sha, value, at, cid in self._conn.execute(query, args)
        ]

    def trajectories(
        self, *, env_hash: str | None = None
    ) -> list[dict[str, Any]]:
        """Every (cell, metric) series: label, hash, metric, values."""
        query = (
            "SELECT c.config_hash, c.label, m.name, m.value, c.git_sha, c.id"
            " FROM cells c JOIN metrics m ON m.cell_id = c.id"
        )
        args: list[str] = []
        if env_hash is not None:
            query += " WHERE c.env_hash = ?"
            args.append(env_hash)
        query += " ORDER BY c.id"
        series: dict[tuple[str, str], dict[str, Any]] = {}
        for chash, label, name, value, sha, _cid in self._conn.execute(query, args):
            entry = series.setdefault(
                (chash, name),
                {
                    "config_hash": chash,
                    "label": label,
                    "metric": name,
                    "values": [],
                    "git_shas": [],
                },
            )
            entry["values"].append(value)
            entry["git_shas"].append(sha)
        return [series[k] for k in sorted(series, key=lambda k: (series[k]["label"], k[1]))]

    def __len__(self) -> int:
        return self.cell_count()


# ----------------------------------------------------------------------
# artifact backfill: BENCH_*.json → store rows
_PARAM_ALIASES = {
    "technique": "partitioner",
    "strategy": "partitioner",
    "workload": "workload",
    "scenario": "workload",
    "dataset": "workload",
    "backend": "backend",
    "kernel": "ingest_kernel",
}


def _leaf_tables(payload: Any, section: str = "") -> Iterator[tuple[str, Mapping[str, Any]]]:
    """Yield ``(section, row)`` for every row-shaped mapping in a
    BENCH artifact: lists of dicts become rows, nested dicts recurse,
    and a flat dict of scalars (e.g. a gate summary) is one row."""
    if isinstance(payload, Mapping):
        scalars = {
            k: v
            for k, v in payload.items()
            if isinstance(v, (int, float, str, bool))
        }
        nested = {k: v for k, v in payload.items() if isinstance(v, (Mapping, list))}
        if scalars and not nested:
            yield section, payload
            return
        if scalars:  # mixed mapping: the scalar slice is its own row
            yield section, scalars
        for key, value in nested.items():
            sub = f"{section}.{key}" if section else str(key)
            yield from _leaf_tables(value, sub)
    elif isinstance(payload, list):
        if payload and all(isinstance(r, Mapping) for r in payload):
            for row in payload:
                yield section, row
        # lists of scalars (technique names, bin cardinalities) carry
        # no per-cell measurements — skipped by design


def _split_row(row: Mapping[str, Any]) -> tuple[dict[str, Any], dict[str, float]]:
    params: dict[str, Any] = {}
    metrics: dict[str, float] = {}
    for key, value in row.items():
        if isinstance(value, bool):
            metrics[str(key)] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            if value == value:  # drop NaN
                metrics[str(key)] = float(value)
        elif isinstance(value, str):
            params[str(key)] = value
    return params, metrics


def artifact_cells(
    name: str,
    payload: Any,
    *,
    extra_params: Mapping[str, Any] | None = None,
) -> list[CellResult]:
    """Turn one ``BENCH_*.json``-style payload into store cells.

    String/bool columns identify the cell (params; well-known names
    like ``Technique`` also fill the canonical grid axes), numeric
    columns become metric rows.  ``extra_params`` (e.g. the grid axes a
    bench knows about itself) joins every cell's identity.
    """
    cells: list[CellResult] = []
    for section, row in _leaf_tables(payload):
        params, metrics = _split_row(row)
        if not metrics:
            continue
        if extra_params:
            for key, value in extra_params.items():
                params.setdefault(str(key), value)
        for key, value in list(params.items()):
            axis = _PARAM_ALIASES.get(key.lower())
            if axis is not None:
                params.setdefault(axis, value)
        params["artifact"] = name
        if section:
            params["section"] = section
        label_bits = [name]
        if section:
            label_bits.append(section)
        for axis in ("workload", "partitioner", "backend"):
            if params.get(axis):
                label_bits.append(str(params[axis]))
        cells.append(
            CellResult(
                params=params,
                metrics=metrics,
                source=f"artifact:{name}",
                label=":".join(label_bits),
            )
        )
    return cells


def ingest_artifact(
    store: ResultsStore,
    path: Path | str,
    *,
    git_sha: str | None = None,
    env: Mapping[str, Any] | None = None,
    extra_params: Mapping[str, Any] | None = None,
) -> int:
    """Backfill one JSON artifact file into ``store``; returns the
    number of cells recorded."""
    path = Path(path)
    payload = json.loads(path.read_text())
    sha = git_sha or current_git_sha()
    fingerprint = dict(env) if env is not None else environment_fingerprint()
    count = 0
    for cell in artifact_cells(path.stem, payload, extra_params=extra_params):
        store.record(replace(cell, git_sha=sha, env=fingerprint))
        count += 1
    log.info("ingested %d cell(s) from %s", count, path)
    return count


def append_artifact_rows(
    name: str,
    payload: Any,
    *,
    store_path: Path | str | None = None,
    extra_params: Mapping[str, Any] | None = None,
) -> int:
    """``save_results`` companion: mirror an artifact into the store.

    Called by the benchmark ``record_experiment`` fixture so every
    ``BENCH_*.json`` write also extends the persistent trajectory.
    Setting ``REPRO_BENCH_STORE=0`` disables the mirroring (e.g. for
    local one-off runs that should not pollute the history).
    """
    if os.environ.get("REPRO_BENCH_STORE", "1") == "0":
        return 0
    sha = current_git_sha()
    env = environment_fingerprint()
    with ResultsStore(store_path) as store:
        count = 0
        for cell in artifact_cells(name, payload, extra_params=extra_params):
            store.record(replace(cell, git_sha=sha, env=env))
            count += 1
    return count
