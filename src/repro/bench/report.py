"""Human-readable run reports: summaries and ASCII sparklines.

``render_run`` turns a :class:`~repro.engine.engine.RunResult` into the
kind of terminal report an operator would want after a run: volume,
latency, stability, per-batch load as a sparkline, scaling actions, and
the recovery/lateness ledgers when those features were active.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.engine import RunResult

__all__ = ["sparkline", "render_run"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """Render values as a unicode sparkline.

    ``lo``/``hi`` pin the scale (defaults: the data's own range); flat
    data renders as a run of middle bars.
    """
    if not values:
        return ""
    floor = min(values) if lo is None else lo
    ceil = max(values) if hi is None else hi
    span = ceil - floor
    if span <= 0:
        return _BARS[3] * len(values)
    out = []
    for v in values:
        frac = (v - floor) / span
        index = min(len(_BARS) - 1, max(0, int(frac * len(_BARS))))
        out.append(_BARS[index])
    return "".join(out)


def render_run(result: RunResult, *, title: str = "run report") -> str:
    """A multi-line text report for one engine run."""
    stats = result.stats
    lines = [title, "=" * len(title)]
    if not stats.records:
        lines.append("(no batches executed)")
        return "\n".join(lines)

    loads = stats.loads()
    latencies = stats.latencies()
    first, last = stats.records[0], stats.records[-1]
    lines += [
        f"batches:        {len(stats.records)}  "
        f"(intervals {first.batch_interval:.2f}s … {last.batch_interval:.2f}s)",
        f"tuples:         {stats.total_tuples:,}  "
        f"({stats.throughput():,.0f}/s sustained)",
        f"latency:        mean {stats.mean_latency():.3f}s   "
        f"p95 {stats.p95_latency():.3f}s",
        f"load W:         mean {stats.mean_load():.2f}   "
        f"max {max(loads):.2f}   {sparkline(loads, lo=0.0, hi=max(1.0, max(loads)))}",
        f"queue delay:    max {stats.max_queue_delay():.3f}s",
        f"stable:         {'yes' if result.stable else 'NO (back-pressure at batch ' + str(result.backpressure.triggered_at) + ')'}",
    ]
    tasks = stats.task_count_series()
    if len({(m, r) for _, m, r in tasks}) > 1:
        lines.append(
            f"map tasks:      {sparkline([m for _, m, _ in tasks])}  "
            f"({tasks[0][1]} → {tasks[-1][1]})"
        )
        lines.append(
            f"reduce tasks:   {sparkline([r for _, _, r in tasks])}  "
            f"({tasks[0][2]} → {tasks[-1][2]})"
        )
    acted = [d for d in result.scaling_history if d.acted]
    if acted:
        lines.append(f"scaling:        {len(acted)} actions; last: {acted[-1].reason}")
    if result.recoveries:
        ok = sum(1 for e in result.recoveries if e.matched_original)
        lines.append(
            f"recoveries:     {len(result.recoveries)} "
            f"({ok} matched the lost state exactly)"
        )
    if result.lateness is not None and result.lateness.total:
        monitor = result.lateness
        lines.append(
            f"lateness:       {monitor.late_accepted:,} late accepted, "
            f"{monitor.overdue:,} overdue ({monitor.drop_rate():.1%} dropped)"
        )
    overheads = stats.partition_overhead_fractions()
    if overheads and max(overheads) > 0:
        lines.append(
            f"partitioning:   max {100 * max(overheads):.2f}% of the interval "
            f"(early-release misses: {result.early_release.miss_rate():.0%})"
        )
    return "\n".join(lines)
