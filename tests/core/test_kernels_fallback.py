"""Fallback and feature-flag behavior of the ingest kernels.

This module is deliberately numpy-free: it runs on the tier-1 CI leg
that installs no numpy, where ``ingest_kernel="numpy"`` must degrade
to the pure-Python oracle with a warning instead of failing the run.
When numpy *is* present the same behavior is forced by monkeypatching
``kernels.HAVE_NUMPY``, so both environments exercise the path.
"""

from __future__ import annotations

import pickle
import random
import warnings

import pytest

from repro.core import kernels
from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.partitioners.prompt import PromptPartitioner


def _gen_batch(rng, n, num_keys):
    ts = sorted(rng.uniform(0.0, 1.0) for _ in range(n))
    tuples = [
        StreamTuple(ts=ts[i], key=f"k{int(rng.paretovariate(1.1)) % num_keys}")
        for i in range(n)
    ]
    return tuples, BatchInfo(index=0, t_start=0.0, t_end=1.0)


def _snapshot(batch):
    blocks = [
        (
            b.index,
            b.size,
            b.cardinality,
            [
                (key, [(t.ts, t.key, t.value, t.weight) for t in b.fragment(key)])
                for key in b.keys
            ],
        )
        for b in batch.blocks
    ]
    return pickle.dumps((blocks, list(batch.split_keys.items())))


def test_no_numpy_fallback_warns_and_matches(monkeypatch):
    """Without numpy the request degrades to the oracle, loudly."""
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        fallback = PromptPartitioner(ingest_kernel="numpy")
    assert fallback.ingest_kernel == "python"

    oracle = PromptPartitioner(ingest_kernel="python")
    rng = random.Random(123)
    tuples, info = _gen_batch(rng, 400, 30)
    assert _snapshot(oracle.partition(tuples, 4, info)) == _snapshot(
        fallback.partition(tuples, 4, info)
    )

    # the kernel entry points refuse outright rather than mis-compute
    with pytest.raises(RuntimeError):
        kernels.accumulate_batch(tuples, info, oracle.accumulator)
    with pytest.raises(RuntimeError):
        kernels.plan_greedy(oracle.batch_partitioner, [], 4, info)


def test_engine_config_numpy_request_degrades(monkeypatch):
    """EngineConfig(ingest_kernel='numpy') warns once and still runs."""
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    partitioner = PromptPartitioner()
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        partitioner.configure_ingest("numpy")
    assert partitioner.ingest_kernel == "python"
    rng = random.Random(7)
    tuples, info = _gen_batch(rng, 100, 10)
    batch = partitioner.partition(tuples, 3, info)
    assert batch.total_tuples == 100


def test_configure_ingest_rejects_unknown_kernel():
    with pytest.raises(ValueError, match="ingest_kernel"):
        PromptPartitioner(ingest_kernel="fortran")


def test_numba_flag_without_numba_warns(monkeypatch):
    """REPRO_NUMBA=1 degrades (loudly) when numba is not importable."""
    if not kernels.HAVE_NUMPY:
        pytest.skip("flag resolution short-circuits before numba without numpy")
    monkeypatch.setenv("REPRO_NUMBA", "1")
    import builtins

    real_import = builtins.__import__

    def _no_numba(name, *args, **kwargs):
        if name == "numba":
            raise ImportError("no numba in this environment")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", _no_numba)
    with pytest.warns(RuntimeWarning, match="numba is not importable"):
        assert kernels._numba_jit() is None


def test_numba_flag_off_is_silent(monkeypatch):
    monkeypatch.delenv("REPRO_NUMBA", raising=False)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels._numba_jit() is None
