"""Deterministic hashing utilities.

Python's built-in ``hash`` is salted per process for ``str`` keys, which
would make partitioning decisions (and therefore every experiment)
non-reproducible across runs.  All partitioners route through
:func:`stable_hash`, a seeded CRC32 over the key's canonical byte form.
Multiple independent hash functions (the *d* candidate assignments of
key-splitting baselines) come from distinct seeds.
"""

from __future__ import annotations

import zlib
from typing import Hashable

__all__ = ["stable_hash", "hash_to_bucket", "candidate_buckets", "CandidateCache"]

_SEED_MIX = 0x9E3779B9  # golden-ratio constant to decorrelate seeds


def _key_bytes(key: Hashable) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8", "surrogatepass")
    if isinstance(key, int):
        return key.to_bytes((key.bit_length() + 8) // 8 + 1, "little", signed=True)
    return repr(key).encode("utf-8", "surrogatepass")


def stable_hash(key: Hashable, seed: int = 0) -> int:
    """A process-stable 32-bit hash of ``key`` under ``seed``."""
    return zlib.crc32(_key_bytes(key), (seed * _SEED_MIX) & 0xFFFFFFFF)


def hash_to_bucket(key: Hashable, num_buckets: int, seed: int = 0) -> int:
    """Map ``key`` to one of ``num_buckets`` buckets."""
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    return stable_hash(key, seed) % num_buckets


def candidate_buckets(key: Hashable, num_buckets: int, d: int) -> list[int]:
    """The *d* candidate buckets of key-splitting schemes (PK2: d=2, PK5: d=5).

    Candidates are produced by ``d`` independent hash functions; they may
    collide onto the same bucket for small ``num_buckets``, exactly as
    with ``d`` real hash functions.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return [hash_to_bucket(key, num_buckets, seed=i + 1) for i in range(d)]


class CandidateCache:
    """Bounded LRU memo for :func:`candidate_buckets`.

    Key-splitting partitioners memoize each key's candidate list; an
    unbounded dict grows with the *lifetime* vocabulary, which under key
    churn (drifting vocabularies) is unbounded.  This cache evicts the
    least-recently-used entry past ``capacity`` — a cache miss only
    recomputes a CRC32 list, so eviction never changes any assignment.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # dicts preserve insertion order; re-inserting on hit keeps the
        # least-recently-used entry first for O(1) eviction.
        self._entries: dict[tuple, list[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def get(self, key: Hashable, num_buckets: int, d: int) -> list[int]:
        """The candidate list for ``(key, num_buckets, d)``, memoized."""
        entries = self._entries
        cache_key = (key, num_buckets, d)
        cached = entries.pop(cache_key, None)
        if cached is None:
            cached = candidate_buckets(key, num_buckets, d)
            if len(entries) >= self.capacity:
                entries.pop(next(iter(entries)))
        entries[cache_key] = cached
        return cached
