"""Legacy setup shim.

The execution environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs (which must build a wheel) fail.
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
``setup.py develop`` path, which needs neither network nor wheel.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
