"""Pipeline scheduler: FIFO execution, queueing, completion callbacks."""

from __future__ import annotations

import pytest

from repro.engine.scheduler import PipelineScheduler
from repro.engine.simulation import EventLoop


def test_job_starts_immediately_when_idle():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    done = []
    loop.schedule(1.0, lambda: sched.submit(0, 0.4, done.append))
    loop.run()
    job = done[0]
    assert job.ready_at == 1.0
    assert job.start == 1.0
    assert job.finish == pytest.approx(1.4)
    assert job.queue_delay == 0.0


def test_jobs_queue_fifo_behind_long_job():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    done = []
    loop.schedule(1.0, lambda: sched.submit(0, 2.5, done.append))
    loop.schedule(2.0, lambda: sched.submit(1, 0.5, done.append))
    loop.schedule(3.0, lambda: sched.submit(2, 0.5, done.append))
    loop.run()
    assert [j.index for j in done] == [0, 1, 2]
    assert done[1].start == pytest.approx(3.5)
    assert done[1].queue_delay == pytest.approx(1.5)
    assert done[2].start == pytest.approx(4.0)


def test_queue_depth():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    depths = []
    loop.schedule(1.0, lambda: sched.submit(0, 5.0))
    loop.schedule(2.0, lambda: sched.submit(1, 1.0))
    loop.schedule(2.0, lambda: depths.append(sched.queue_depth(2.0)))
    loop.run()
    assert depths == [1]  # job 1 waiting, job 0 running


def test_completion_fires_before_same_time_heartbeat():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    order = []
    loop.schedule(1.0, lambda: sched.submit(0, 1.0, lambda j: order.append("finish")))
    loop.schedule(2.0, lambda: order.append("heartbeat"), priority=0)
    loop.run()
    assert order == ["finish", "heartbeat"]


def test_zero_duration_job():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    done = []
    loop.schedule(1.0, lambda: sched.submit(0, 0.0, done.append))
    loop.run()
    assert done[0].finish == 1.0


def test_negative_duration_rejected():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    loop.schedule(0.0, lambda: sched.submit(0, 1.0))
    loop.run()
    with pytest.raises(ValueError):
        sched.submit(1, -0.5)


def test_jobs_listing_and_busy_until():
    loop = EventLoop()
    sched = PipelineScheduler(loop)
    loop.schedule(0.0, lambda: sched.submit(0, 2.0))
    loop.run()
    assert len(sched.jobs) == 1
    assert sched.busy_until == pytest.approx(2.0)
