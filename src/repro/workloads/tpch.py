"""TPC-H LineItem as a stream of recent orders.

Table 1: 100 GB, 1M distinct keys (part ids).  TPC-H's lineitem is
generated with *uniform* part references — the paper uses it as the
low-skew counterpoint to Tweets/SynD (visible in Figure 10b/d, where
even hashing balances reasonably).  Values follow the Q1/Q6-relevant
columns: ``(quantity, extendedprice, discount)`` with TPC-H's ranges —
quantity uniform in [1, 50], discount uniform in [0, 0.10], price
proportional to quantity.
"""

from __future__ import annotations

import numpy as np

from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, ZipfKeyedSource

__all__ = ["tpch_lineitem_source"]


def _lineitem_values(
    rng: np.random.Generator, count: int
) -> list[tuple[int, float, float]]:
    quantity = rng.integers(1, 51, size=count)
    unit_price = rng.uniform(900.0, 1100.0, size=count)
    discount = np.round(rng.uniform(0.0, 0.10, size=count), 2)
    return [
        (int(q), round(float(q * p), 2), float(d))
        for q, p, d in zip(quantity, unit_price, discount)
    ]


def tpch_lineitem_source(
    *,
    num_parts: int = 20_000,
    arrival: ArrivalProcess | None = None,
    rate: float = 10_000.0,
    seed: int = 0,
) -> ZipfKeyedSource:
    """Build the streaming LineItem source (key = part id, near-uniform)."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="TPC-H",
        paper_size="100GB",
        paper_cardinality="1M",
        scaled_cardinality=num_parts,
        description="LineItem rows; near-uniform part keys, Q1/Q6 columns.",
    )
    return ZipfKeyedSource(
        name="tpch-lineitem",
        arrival=arrival,
        num_keys=num_parts,
        # A whisper of skew: dbgen part popularity is uniform, but real
        # order streams repeat popular parts slightly.
        exponent=0.1,
        seed=seed,
        value_sampler=_lineitem_values,
        dataset=props,
    )
