"""Multi-tenant wrappers: tagging, interleave determinism, replay."""

from __future__ import annotations

import pytest

from repro.workloads import (
    ConstantRate,
    MultiTenantSource,
    TenantStream,
    TenantTaggedSource,
    synd_source,
    tenant_of,
)

pytest.importorskip("numpy")


def _tenants(n=3, rate=300.0, keys=40):
    return [
        TenantStream(
            f"t{i}",
            synd_source(exponent=1.2, rate=rate, seed=50 + i, num_keys=keys),
        )
        for i in range(n)
    ]


def test_tagged_source_wraps_every_key():
    t = _tenants(1)[0]
    tagged = TenantTaggedSource(t.tenant, t.source)
    out = tagged.tuples_between(0.0, 0.5)
    assert out
    assert all(tup.key[0] == "t0" for tup in out)
    assert all(tenant_of(tup.key) == "t0" for tup in out)


def test_tenant_of_rejects_untagged_keys():
    with pytest.raises(ValueError, match="tagged key"):
        tenant_of("bare-key")


def test_union_is_timestamp_sorted_and_tagged():
    union = MultiTenantSource(_tenants())
    out = union.tuples_between(0.0, 0.5)
    assert out
    assert [t.ts for t in out] == sorted(t.ts for t in out)
    assert {tenant_of(t.key) for t in out} == {"t0", "t1", "t2"}


def test_union_replays_identically_after_reset():
    union = MultiTenantSource(_tenants())
    first = [union.tuples_between(i * 0.5, (i + 1) * 0.5) for i in range(4)]
    union.reset()
    second = [union.tuples_between(i * 0.5, (i + 1) * 0.5) for i in range(4)]
    assert first == second


def test_union_slice_equals_tenant_reference_stream():
    """A tenant's tuples in the union == its TenantTaggedSource stream.

    This is the ingestion half of the sharding differential contract:
    both wrappers pull the underlying source over the same intervals,
    so the per-tenant RNG streams advance identically.
    """
    union = MultiTenantSource(_tenants())
    ref = TenantTaggedSource(
        "t1", synd_source(exponent=1.2, rate=300.0, seed=51, num_keys=40)
    )
    for i in range(4):
        t0, t1 = i * 0.5, (i + 1) * 0.5
        mine = [t for t in union.tuples_between(t0, t1) if t.key[0] == "t1"]
        theirs = ref.tuples_between(t0, t1)
        assert mine == theirs


def test_union_rejects_duplicate_and_empty_tenants():
    with pytest.raises(ValueError, match="at least one"):
        MultiTenantSource([])
    t = _tenants(1)[0]
    with pytest.raises(ValueError, match="duplicate"):
        MultiTenantSource([t, TenantStream("t0", t.source)])


def test_union_preserves_weights_and_values():
    union = MultiTenantSource(_tenants(2))
    for tup in union.tuples_between(0.0, 0.5):
        assert tup.weight == 1


def test_tenant_ids_exposed_in_declaration_order():
    union = MultiTenantSource(_tenants(3))
    assert union.tenant_ids == ("t0", "t1", "t2")


def test_same_rate_tenants_tie_break_by_position():
    """Equal timestamps interleave by tenant position, deterministically."""
    tenants = [
        TenantStream(
            f"t{i}",
            synd_source(
                exponent=1.2, arrival=ConstantRate(100.0), seed=9, num_keys=10
            ),
        )
        for i in range(2)
    ]
    union = MultiTenantSource(tenants)
    out = union.tuples_between(0.0, 0.2)
    # identical seeds -> identical timestamps; t0 must always lead
    by_ts: dict[float, list[str]] = {}
    for t in out:
        by_ts.setdefault(t.ts, []).append(t.key[0])
    for order in by_ts.values():
        assert order == sorted(order)
