"""Property-based oracle for the choice-based key splitters.

A seeded fuzz sweep over random Zipf instances (3000+ technique runs)
checks the invariants every PKG-family partitioner must uphold, plus
the calibrated quality ordering:

- **conservation**: every tuple is placed exactly once — per-key block
  fragments sum back to the input frequency vector;
- **choice bound**: a key assigned by d choices can touch at most
  ``min(d, B)`` blocks, so per-key fragments and KSR are both bounded
  by the choice degree (W-Choices degrades to the trivial ``B`` bound);
- **monotone balance**: more choices can only help balance — the mean
  BSI over seeds is non-increasing from PK2 to PK5 to W-Choices.  The
  ordering holds *in expectation*, not per instance, so it is asserted
  over the seed population with 5% multiplicative slack (calibrated:
  the observed gaps are > 2x, the slack only absorbs sampling noise).

Instances stay small (<= 120 keys, <= ~400 tuples, 8 blocks) so the
full sweep costs seconds; the W-Choices instance is configured with a
tiny sketch and near-zero threshold so head detection engages within
the first few tuples of every instance.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchInfo
from repro.core.metrics import evaluate_partition
from repro.partitioners.key_split import (
    PK2Partitioner,
    PK5Partitioner,
    WChoicesPartitioner,
)

from ..conftest import make_tuples

INFO = BatchInfo(0, 0.0, 1.0)
NUM_SEEDS = 1000
NUM_BLOCKS = 8

#: (name, factory, choice degree d; None = unbounded / all blocks)
TECHNIQUES = (
    ("pk2", lambda: PK2Partitioner(), 2),
    ("pk5", lambda: PK5Partitioner(), 5),
    (
        "w-choices",
        lambda: WChoicesPartitioner(threshold=1e-6, sketch_capacity=8),
        None,
    ),
)


def _zipf_instance(seed: int):
    """One random Zipf frequency vector plus its shuffled tuple list."""
    rng = random.Random(seed)
    num_keys = rng.randint(20, 120)
    total = rng.randint(200, 400)
    exponent = rng.uniform(0.8, 1.8)
    weights = [(i + 1) ** -exponent for i in range(num_keys)]
    scale = total / sum(weights)
    freqs = {f"k{i}": max(1, round(w * scale)) for i, w in enumerate(weights)}
    return freqs, make_tuples(freqs, shuffle_seed=seed)


@pytest.fixture(scope="module")
def oracle_records():
    """One partition per (seed, technique): the whole sweep, computed once."""
    records = []
    for seed in range(NUM_SEEDS):
        freqs, tuples = _zipf_instance(seed)
        for name, factory, degree in TECHNIQUES:
            part = factory()
            part.reset()
            batch = part.partition(tuples, NUM_BLOCKS, INFO)
            batch.validate(expected_tuples=len(tuples))
            placed: dict[str, int] = {}
            spans: dict[str, int] = {}
            for block in batch.blocks:
                for key, size in block.fragment_sizes().items():
                    placed[key] = placed.get(key, 0) + size
                    spans[key] = spans.get(key, 0) + 1
            quality = evaluate_partition(batch)
            records.append(
                {
                    "seed": seed,
                    "technique": name,
                    "placed_ok": placed == freqs,
                    "max_span": max(spans.values()),
                    "bound": NUM_BLOCKS if degree is None else min(degree, NUM_BLOCKS),
                    "bsi": quality.bsi,
                    "ksr": quality.ksr,
                }
            )
    return records


def test_sweep_covers_three_thousand_instances(oracle_records):
    assert len(oracle_records) == NUM_SEEDS * len(TECHNIQUES) >= 3000


def test_every_tuple_placed_exactly_once(oracle_records):
    bad = [r for r in oracle_records if not r["placed_ok"]]
    assert not bad, f"conservation violated on {len(bad)} instances: {bad[:3]}"


def test_key_spans_respect_choice_bound(oracle_records):
    bad = [r for r in oracle_records if r["max_span"] > r["bound"]]
    assert not bad, f"choice bound violated on {len(bad)} instances: {bad[:3]}"


def test_ksr_bounded_by_choice_degree(oracle_records):
    for r in oracle_records:
        assert 1.0 <= r["ksr"] <= r["bound"] + 1e-9, r


def test_mean_balance_monotone_in_choices(oracle_records):
    means = {}
    for name, _, _ in TECHNIQUES:
        values = [r["bsi"] for r in oracle_records if r["technique"] == name]
        means[name] = sum(values) / len(values)
    # more choices -> better expected balance, with 5% sampling slack
    assert means["pk5"] <= means["pk2"] * 1.05
    assert means["w-choices"] <= means["pk5"] * 1.05
