"""CLI: argument handling and experiment dispatch."""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, main
from repro.engine.sharding import ROUTER_NAMES
from repro.partitioners import PARTITIONER_NAMES, make_partitioner


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_requires_known_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_table1(capsys):
    assert main(["run", "table1", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Tweets" in out


def test_run_fig6(capsys):
    assert main(["run", "fig6", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Prompt (Algorithm 2)" in out


def test_run_fig10_with_dataset(capsys):
    assert main(["run", "fig10", "--dataset", "tpch", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "tpch" in out
    assert "prompt" in out


def test_run_fig14b(capsys):
    assert main(["run", "fig14b", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "OverheadPct" in out


def test_run_saves_results(tmp_path, capsys, monkeypatch):
    import repro.bench.reporting as reporting
    import repro.cli as cli

    monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
    monkeypatch.setattr(cli, "save_results", reporting.save_results)
    assert main(["run", "fig6"]) == 0
    assert (tmp_path / "cli_fig6.json").exists()


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_quickstart_quiet_suppresses_reporting(capsys):
    assert main(["quickstart", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_quickstart_writes_trace_and_metrics(tmp_path, capsys):
    import json

    from repro.obs import parse_prometheus

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.prom"
    assert main(
        ["quickstart", "--trace", str(trace), "--metrics", str(metrics)]
    ) == 0
    out = capsys.readouterr().out
    assert f"trace written to {trace}" in out
    assert f"metrics written to {metrics}" in out
    events = json.loads(trace.read_text())["traceEvents"]
    assert {e["name"] for e in events} >= {"run", "batch", "map_task", "shuffle"}
    samples = parse_prometheus(metrics.read_text())
    assert samples["prompt_batches_total"] == 12.0


def test_run_quickstart_experiment_with_trace(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(
        ["run", "quickstart", "--no-save", "--trace", str(trace)]
    ) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert trace.exists()


def test_trace_summarize(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["quickstart", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-phase breakdown:" in out
    for phase in ("run", "batch", "partition", "map_task", "reduce_task"):
        assert phase in out
    assert "slowest tasks:" in out


def test_trace_summarize_streaming_dispatch_section(tmp_path, capsys):
    """--streaming-dispatch traces carry plan_emit spans and the
    summarizer renders its dispatch section from them."""
    trace = tmp_path / "t.json"
    assert main(
        ["quickstart", "--streaming-dispatch", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()
    assert main(["trace", "summarize", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "dispatch:" in out
    assert "plan emissions" in out
    assert "batch=0" in out


def test_log_level_streams_diagnostics_to_stderr(capsys):
    assert main(["quickstart", "--log-level", "info"]) == 0
    captured = capsys.readouterr()
    assert "throughput" in captured.out
    assert "repro.engine" in captured.err


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_every_registry_name_round_trips(name):
    """Each registry name must parse as ``--partitioner``, construct,
    and survive the pickling the parallel backend's run context needs."""
    from repro.cli import _build_parser

    args = _build_parser().parse_args(["quickstart", "--partitioner", name])
    assert args.partitioner == name
    part = make_partitioner(name)
    assert part.name == name or name.startswith("prompt")
    restored = pickle.loads(pickle.dumps(part))
    assert restored.name == part.name
    allocation = part.reduce_allocation()
    assert pickle.loads(pickle.dumps(allocation)) is not None


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_every_registry_name_is_documented(name):
    """doc-sync: the API reference must list every technique."""
    api = (Path(__file__).resolve().parents[1] / "docs" / "api.md").read_text()
    assert f"`{name}`" in api, f"{name} missing from docs/api.md"


def test_quickstart_accepts_a_partitioner(capsys):
    assert main(["quickstart", "--partitioner", "d-choices"]) == 0
    assert "throughput" in capsys.readouterr().out


def test_quickstart_rejects_unknown_partitioner():
    with pytest.raises(SystemExit):
        main(["quickstart", "--partitioner", "nonesuch"])


# ----------------------------------------------------------------------
# shard routers: the sharded demo's --router axis
@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_every_router_name_round_trips(name):
    """Each router name must parse as ``--router``, construct through
    the registry, and survive pickling (routers ride inside the
    sharded engine, which the spec path may itself pickle)."""
    from repro.cli import _build_parser
    from repro.engine.sharding import make_router

    args = _build_parser().parse_args(["run", "sharded", "--router", name])
    assert args.router == name
    router = make_router(name, 3)
    restored = pickle.loads(pickle.dumps(router))
    assert [restored.route(f"t{i}") for i in range(20)] == [
        router.route(f"t{i}") for i in range(20)
    ]


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_every_router_name_is_documented(name):
    """doc-sync: the API reference must list every router strategy."""
    api = (Path(__file__).resolve().parents[1] / "docs" / "api.md").read_text()
    assert f"`{name}`" in api, f"{name} missing from docs/api.md"


def test_run_rejects_unknown_router():
    with pytest.raises(SystemExit):
        main(["run", "sharded", "--router", "nonesuch", "--no-save"])


def test_run_sharded_demo(capsys):
    pytest.importorskip("numpy")
    assert main(["run", "sharded", "--quick", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Sharded topology" in out
    assert "merged answers identical to a single-engine run: True" in out


# ----------------------------------------------------------------------
# repro bench: the persistent experiment matrix
def _seed_bench_history(db, values, *, metric="latency_mean_seconds"):
    """Fill the tiny grid once per historical value at synthetic SHAs."""
    from repro.bench.matrix import TINY_GRID, fill
    from repro.bench.store import ResultsStore, environment_fingerprint

    env = environment_fingerprint()
    with ResultsStore(db) as store:
        for i, value in enumerate(values):
            fill(
                store, TINY_GRID, git_sha=f"hist-{i}", env=env,
                runner=lambda c, g, v=value: ({metric: v}, {}),
            )


def test_bench_fill_is_resumable(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbead")
    db = str(tmp_path / "r.db")
    assert main(["bench", "fill", "--grid", "tiny", "--db", db]) == 0
    first = capsys.readouterr().out
    assert "1 cell(s) executed, 0 already complete" in first
    # the acceptance criterion: the second run executes nothing
    assert main(["bench", "fill", "--grid", "tiny", "--db", db]) == 0
    second = capsys.readouterr().out
    assert "0 cell(s) executed, 1 already complete" in second


def test_bench_fill_force_reruns(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "feedbead")
    db = str(tmp_path / "r.db")
    assert main(["bench", "fill", "--grid", "tiny", "--db", db]) == 0
    capsys.readouterr()
    assert main(["bench", "fill", "--grid", "tiny", "--db", db, "--force"]) == 0
    assert "1 cell(s) executed" in capsys.readouterr().out


def test_bench_fill_rejects_unknown_grid(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "fill", "--grid", "nonesuch"])


def test_bench_report_text_and_markdown(tmp_path, capsys):
    db = str(tmp_path / "r.db")
    _seed_bench_history(db, [1.0, 1.1, 1.2])
    assert main(["bench", "report", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "latency_mean_seconds" in out
    assert "Trend" in out
    assert main(["bench", "report", "--db", db, "--markdown"]) == 0
    md = capsys.readouterr().out
    assert "| Cell |" in md
    # metric filtering drops everything but the named series
    assert main(
        ["bench", "report", "--db", db, "--metric", "no_such_metric"]
    ) == 0
    assert "latency_mean_seconds" not in capsys.readouterr().out


def test_bench_regress_green_store_exits_zero(tmp_path, capsys, monkeypatch):
    from repro.bench.matrix import TINY_GRID, fill
    from repro.bench.store import ResultsStore, environment_fingerprint

    db = str(tmp_path / "r.db")
    _seed_bench_history(db, [1.0, 1.01, 0.99, 1.0])
    monkeypatch.setenv("REPRO_GIT_SHA", "headsha")
    with ResultsStore(db) as store:
        fill(
            store, TINY_GRID, git_sha="headsha",
            env=environment_fingerprint(),
            runner=lambda c, g: ({"latency_mean_seconds": 1.0}, {}),
        )
    assert main(["bench", "regress", "--db", db]) == 0
    assert "no departures" in capsys.readouterr().out


def test_bench_regress_flags_slowdown_and_escape_hatch(
    tmp_path, capsys, monkeypatch
):
    from repro.bench.matrix import TINY_GRID, fill
    from repro.bench.store import ResultsStore, environment_fingerprint

    db = str(tmp_path / "r.db")
    _seed_bench_history(db, [1.0, 1.01, 0.99, 1.0])
    monkeypatch.setenv("REPRO_GIT_SHA", "headsha")
    with ResultsStore(db) as store:
        fill(
            store, TINY_GRID, git_sha="headsha",
            env=environment_fingerprint(),
            runner=lambda c, g: ({"latency_mean_seconds": 5.0}, {}),
        )
    assert main(["bench", "regress", "--db", db]) == 1
    out = capsys.readouterr().out
    assert "regressed" in out
    # the documented escape hatch reports but exits 0
    assert main(["bench", "regress", "--db", db, "--allow-regression"]) == 0
    assert "allowed by --allow-regression" in capsys.readouterr().out


def test_bench_ingest_backfills_artifacts(tmp_path, capsys, monkeypatch):
    import json

    art = tmp_path / "BENCH_sample.json"
    art.write_text(json.dumps([{"Technique": "prompt", "Latency": 0.25}]))
    db = str(tmp_path / "r.db")
    assert main(["bench", "ingest", str(art), "--db", db]) == 0
    out = capsys.readouterr().out
    assert "1 cell(s)" in out

    from repro.bench.store import ResultsStore

    with ResultsStore(db) as store:
        assert store.cell_count() == 1
        assert store.cells()[0]["source"] == "artifact:BENCH_sample"


def test_bench_ingest_relocate_moves_artifact(tmp_path, capsys, monkeypatch):
    import json

    import repro.bench.reporting as reporting
    import repro.cli as cli

    canonical = tmp_path / "results"
    canonical.mkdir()
    monkeypatch.setattr(reporting, "results_dir", lambda: canonical)
    monkeypatch.setattr(cli, "results_dir", lambda: canonical)
    stray = tmp_path / "BENCH_stray.json"
    stray.write_text(json.dumps([{"V": 1.0}]))
    db = str(tmp_path / "r.db")
    assert main(["bench", "ingest", str(stray), "--db", db, "--relocate"]) == 0
    assert not stray.exists()
    assert (canonical / "BENCH_stray.json").exists()
