"""Integration: every paper workload through the full engine pipeline."""

from __future__ import annotations

import pytest

from repro.core.config import EarlyReleaseConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.partitioners import make_partitioner
from repro.queries import (
    debs_query1,
    debs_query2,
    gcm_avg_cpu_query,
    gcm_total_memory_query,
    select_top_k,
    topk_query,
    tpch_query1,
    tpch_query6,
)
from repro.workloads import (
    debs_taxi_source,
    gcm_source,
    tpch_lineitem_source,
    tweets_source,
)

# Zero early-release slack: batch boundaries then coincide exactly with
# the reference recomputation's [k*I, (k+1)*I) windows.  (Slack handling
# itself is covered by the receiver tests.)
CONFIG = EngineConfig(
    batch_interval=0.5,
    num_blocks=4,
    num_reducers=4,
    cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
    early_release=EarlyReleaseConfig(slack_fraction=0.0),
)


def _run(query, source, batches=6, technique="prompt"):
    engine = MicroBatchEngine(make_partitioner(technique), query, CONFIG)
    return engine.run(source, batches)


def _reference_window(query, source_factory, batches, window_batches):
    """Recompute the final window answer directly from the raw stream."""
    source = source_factory()
    outputs = [
        query.reference_output(
            source.tuples_between(k * 0.5, (k + 1) * 0.5)
        )
        for k in range(batches)
    ]
    agg = query.aggregator
    answer: dict = {}
    for out in outputs[max(0, batches - window_batches):]:
        for k, v in out.items():
            answer[k] = agg.merge(answer[k], v) if k in answer else v
    return {k: v for k, v in answer.items() if v != agg.zero()}


def test_debs_query1_end_to_end():
    query = debs_query1(time_scale=1 / 2400.0)  # 3 s window
    make_source = lambda: debs_taxi_source(num_taxis=500, rate=2_000.0, seed=1)
    result = _run(query, make_source())
    window_batches = query.window.batches_per_window(0.5)
    expected = _reference_window(query, make_source, 6, window_batches)
    got = result.final_window_answer()
    assert got.keys() == expected.keys()
    for k in expected:
        assert got[k] == pytest.approx(expected[k])


def test_debs_query2_distances_accumulate():
    query = debs_query2(time_scale=1 / 900.0)  # 3 s window
    result = _run(query, debs_taxi_source(num_taxis=300, rate=1_500.0, seed=2))
    answer = result.final_window_answer()
    assert answer
    assert all(v >= 0 for v in answer.values())


def test_gcm_avg_cpu_is_a_valid_mean():
    query = gcm_avg_cpu_query(window_length=2.0)
    result = _run(query, gcm_source(num_jobs=400, rate=2_000.0, seed=3))
    finalized = {
        k: query.aggregator.finalize(v)
        for k, v in result.final_window_answer().items()
    }
    assert finalized
    assert all(0.0 < v <= 1.0 for v in finalized.values())


def test_gcm_total_memory_matches_reference():
    query = gcm_total_memory_query(window_length=1.0)
    make_source = lambda: gcm_source(num_jobs=300, rate=1_000.0, seed=4)
    result = _run(query, make_source())
    expected = _reference_window(
        query, make_source, 6, query.window.batches_per_window(0.5)
    )
    # Float sums retracted by inverse-Reduce can leave ~1e-17 residues
    # where the reference has exact zero; treat those as absent.
    got = {k: v for k, v in result.final_window_answer().items() if abs(v) > 1e-9}
    assert got.keys() == expected.keys()
    for k in expected:
        assert got[k] == pytest.approx(expected[k])


def test_tpch_q1_quantities():
    query = tpch_query1(time_scale=1 / 1800.0)  # 2 s window
    result = _run(query, tpch_lineitem_source(num_parts=1_000, rate=2_000.0, seed=5))
    answer = result.final_window_answer()
    assert answer
    assert all(isinstance(v, (int, float)) and v >= 1 for v in answer.values())


@pytest.mark.parametrize("technique", ["hash", "prompt"])
def test_tpch_q6_filter_consistency_across_techniques(technique):
    query = tpch_query6(time_scale=1 / 1800.0)
    make_source = lambda: tpch_lineitem_source(num_parts=500, rate=1_500.0, seed=6)
    result = _run(query, make_source(), technique=technique)
    expected = _reference_window(
        query, make_source, 6, query.window.batches_per_window(0.5)
    )
    got = result.final_window_answer()
    assert set(got) == set(expected)
    for k in expected:
        assert got[k] == pytest.approx(expected[k])


def test_topk_over_tweets():
    query = topk_query(k=3, window_length=2.0)
    result = _run(query, tweets_source(vocabulary=2_000, rate=2_000.0, seed=7))
    top = select_top_k(result.final_window_answer(), 3)
    assert len(top) == 3
    counts = [c for _, c in top]
    assert counts == sorted(counts, reverse=True)
    # the Mandelbrot head word dominates
    assert top[0][0] == "w0"


def test_prompt_zigzag_variant_end_to_end():
    query = debs_query1(time_scale=1 / 2400.0)
    make_source = lambda: debs_taxi_source(num_taxis=300, rate=1_000.0, seed=8)
    reference = _run(query, make_source(), technique="prompt").final_window_answer()
    zigzag = _run(query, make_source(), technique="prompt-zigzag").final_window_answer()
    assert set(reference) == set(zigzag)
    for k in reference:
        assert zigzag[k] == pytest.approx(reference[k])
