"""Tweets: word-occurrence stream modelling the 2015 Twitter sample.

Table 1 lists the real dataset at 50 GB with 790k distinct words; each
tweet is split into words and the word is the partitioning key
(Section 7.1).  Lacking the proprietary sample, we generate word
occurrences from a Zipf-Mandelbrot model fitted to English text
(``P(rank) ∝ 1/(rank + 2.7)^1.07`` — the classic Mandelbrot parameters)
over a scaled vocabulary.  Word frequency skew is the only property the
experiments exploit, and it is preserved.
"""

from __future__ import annotations

from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, ZipfKeyedSource

__all__ = ["tweets_source", "MANDELBROT_EXPONENT", "MANDELBROT_SHIFT"]

#: Zipf-Mandelbrot parameters for English word frequencies.
MANDELBROT_EXPONENT = 1.07
MANDELBROT_SHIFT = 2.7


def tweets_source(
    *,
    vocabulary: int = 25_000,
    arrival: ArrivalProcess | None = None,
    rate: float = 10_000.0,
    seed: int = 0,
) -> ZipfKeyedSource:
    """Build the synthetic tweet-words stream."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="Tweets",
        paper_size="50GB",
        paper_cardinality="790k",
        scaled_cardinality=vocabulary,
        description="Word occurrences with English-like Zipf-Mandelbrot skew.",
    )
    return ZipfKeyedSource(
        name="tweets",
        arrival=arrival,
        num_keys=vocabulary,
        exponent=MANDELBROT_EXPONENT,
        shift=MANDELBROT_SHIFT,
        seed=seed,
        key_formatter=lambda rank: f"w{rank}",
        dataset=props,
    )
