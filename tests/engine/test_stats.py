"""BatchRecord / RunStats derived quantities."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.engine.stats import BatchRecord, RunStats, percentile


def _record(index, *, interval=1.0, queue=0.0, processing=0.5, tuples=100,
            reduce_durations=(0.1, 0.2), buffer_elapsed=0.005,
            plan_elapsed=0.01):
    heartbeat = (index + 1) * interval
    start = heartbeat + queue
    return BatchRecord(
        index=index,
        t_start=index * interval,
        heartbeat=heartbeat,
        ready_at=heartbeat,
        exec_start=start,
        exec_finish=start + processing,
        processing_time=processing,
        tuple_count=tuples,
        key_count=10,
        map_tasks=4,
        reduce_tasks=len(reduce_durations),
        map_durations=(0.3, 0.4),
        reduce_durations=reduce_durations,
        bucket_weights=(50, 50),
        buffer_elapsed=buffer_elapsed,
        plan_elapsed=plan_elapsed,
    )


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 50) == 3.0
    assert percentile(values, 95) == 5.0
    assert percentile(values, 0) == 1.0
    assert percentile([], 50) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_percentile_q0_and_q100_are_extremes():
    values = [7.0, 3.0, 9.0, 1.0]
    assert percentile(values, 0) == 1.0    # min: rank clamps to 1
    assert percentile(values, 100) == 9.0  # max: rank = n


def test_percentile_single_element_any_q():
    for q in (0, 25, 50, 95, 100):
        assert percentile([42.0], q) == 42.0


def test_percentile_unsorted_input_matches_sorted():
    unsorted = [5.0, 1.0, 4.0, 2.0, 3.0]
    for q in (0, 20, 50, 80, 100):
        assert percentile(unsorted, q) == percentile(sorted(unsorted), q)


def test_percentile_all_equal_values():
    values = [2.5] * 8
    for q in (0, 50, 100):
        assert percentile(values, q) == 2.5


def test_percentile_rejects_nan():
    # sorted() with a NaN present yields an arrangement-dependent order,
    # so percentile must refuse rather than return a seed-dependent answer.
    with pytest.raises(ValueError, match="NaN"):
        percentile([1.0, math.nan, 2.0], 50)
    with pytest.raises(ValueError, match="NaN"):
        percentile([math.nan], 100)


def test_percentile_negative_q_rejected():
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)


def test_record_derived_quantities():
    r = _record(2, queue=0.25, processing=0.5)
    assert r.batch_interval == 1.0
    assert r.queue_delay == pytest.approx(0.25)
    # latency: interval (1.0) + queue (0.25) + processing (0.5)
    assert r.latency == pytest.approx(1.75)
    assert r.load == pytest.approx(0.5)
    assert r.max_reduce_time == pytest.approx(0.2)
    assert r.mean_reduce_time == pytest.approx(0.15)


def test_run_stats_throughput():
    stats = RunStats(batch_interval=1.0)
    for i in range(4):
        stats.add(_record(i, tuples=200))
    # 800 tuples; the last batch cuts off at 4.0s but its 0.5s of
    # processing only finishes at 4.5s — the span covers the real finish
    assert stats.throughput() == pytest.approx(800 / 4.5)
    assert stats.total_tuples == 800


def test_run_stats_throughput_spans_real_finish_when_overloaded():
    """Regression: an overloaded run (queue delay growing, Cases II-IV)
    must divide by the time processing actually took.  The old span
    stopped at the last heartbeat, overstating throughput exactly for
    the runs where the number matters most."""
    stats = RunStats(batch_interval=1.0)
    for i in range(4):
        stats.add(_record(i, tuples=200, queue=1.0 * i))
    # last batch: heartbeat at 4.0s, but execution starts 3.0s late and
    # finishes at 4.0 + 3.0 + 0.5 = 7.5s
    assert stats.throughput() == pytest.approx(800 / 7.5)


def test_run_stats_throughput_early_finish_spans_heartbeat():
    """A batch that finishes before its interval ends still accounts the
    full interval: the system cannot emit faster than tuples arrive."""
    stats = RunStats(batch_interval=1.0)
    stats.add(
        BatchRecord(
            index=0,
            t_start=0.0,
            heartbeat=1.0,
            ready_at=0.5,
            exec_start=0.5,
            exec_finish=0.8,  # done before the interval's cut-off
            processing_time=0.3,
            tuple_count=100,
            key_count=10,
            map_tasks=4,
            reduce_tasks=2,
            map_durations=(0.1, 0.2),
            reduce_durations=(0.1, 0.2),
            bucket_weights=(50, 50),
            plan_elapsed=0.01,
        )
    )
    assert stats.throughput() == pytest.approx(100 / 1.0)


def test_run_stats_fault_tolerance_totals():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0))
    stats.add(
        replace(
            _record(1),
            task_attempts=6,
            task_retries=2,
            pool_resurrections=1,
            speculative_wins=1,
            timeout_trips=3,
        )
    )
    assert stats.total_task_attempts() == 6
    assert stats.total_task_retries() == 2
    assert stats.total_pool_resurrections() == 1
    assert stats.total_speculative_wins() == 1
    assert stats.total_timeout_trips() == 3


def test_fault_tolerance_counters_do_not_affect_equality():
    """The counters are dispatch-side observations: a faulted run's
    records must still compare equal to a clean run's (the differential
    harness depends on this)."""
    clean = _record(0)
    faulted = replace(
        clean, task_attempts=9, task_retries=3, pool_resurrections=1
    )
    assert faulted == clean


def test_run_stats_latency_aggregates():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0, processing=0.2))
    stats.add(_record(1, processing=0.6))
    assert stats.mean_latency() == pytest.approx(1.4)
    assert stats.p95_latency() == pytest.approx(1.6)


def test_run_stats_stability():
    good = RunStats(batch_interval=1.0)
    for i in range(5):
        good.add(_record(i, processing=0.8))
    assert good.is_stable()

    bad = RunStats(batch_interval=1.0)
    for i in range(5):
        bad.add(_record(i, processing=1.4, queue=1.5 * i))
    assert not bad.is_stable()


def test_run_stats_mean_load_with_skip():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0, processing=10.0))  # warm-up outlier
    for i in range(1, 5):
        stats.add(_record(i, processing=0.5))
    assert stats.mean_load(skip=1) == pytest.approx(0.5)


def test_series_extracts():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0))
    stats.add(_record(1, reduce_durations=(0.3, 0.5)))
    reduce_series = stats.reduce_time_series()
    assert reduce_series[1] == (1, pytest.approx(0.4), pytest.approx(0.5))
    assert stats.task_count_series() == [(0, 4, 2), (1, 4, 2)]
    assert stats.partition_overhead_fractions() == [
        pytest.approx(0.01),
        pytest.approx(0.01),
    ]


def test_partition_elapsed_split_sums_and_stays_out_of_equality():
    r = _record(0, buffer_elapsed=0.02, plan_elapsed=0.03)
    assert r.partition_elapsed == pytest.approx(0.05)
    # wall-clock phases are observations, not identity
    assert replace(r, buffer_elapsed=9.0, plan_elapsed=9.0) == r


def test_partition_overhead_fractions_use_plan_phase_only():
    stats = RunStats(batch_interval=2.0)
    stats.add(_record(0, interval=2.0, buffer_elapsed=1.0, plan_elapsed=0.1))
    assert stats.partition_overhead_fractions() == [pytest.approx(0.05)]


def test_empty_run_stats():
    stats = RunStats(batch_interval=1.0)
    assert stats.throughput() == 0.0
    assert stats.mean_latency() == 0.0
    assert stats.is_stable()
    assert stats.max_queue_delay() == 0.0
