"""Algorithm 2 (both strategies): completeness, balance, fragmentation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from collections.abc import Sequence as CollectionsSequence

from repro.core.batch import BatchInfo, DataBlock
from repro.core.batch_partitioner import PromptBatchPartitioner, split_group_by_weight
from repro.core.config import PartitionerConfig
from repro.core.metrics import evaluate_partition
from repro.core.tuples import KeyGroup, StreamTuple, sorted_key_groups

INFO = BatchInfo(0, 0.0, 1.0)


def _groups(freqs: dict) -> list[KeyGroup]:
    groups = [
        KeyGroup(
            key=k,
            tuples=[StreamTuple(ts=0.0, key=k) for _ in range(n)],
            tracked_count=n,
        )
        for k, n in freqs.items()
    ]
    groups.sort(key=lambda g: -g.size)
    return groups


STRATEGIES = ("greedy", "zigzag")


# ----------------------------------------------------------------------
# split_group_by_weight
# ----------------------------------------------------------------------
def test_split_group_exact_cut():
    tuples = [StreamTuple(ts=0.0, key="a") for _ in range(5)]
    head, rest = split_group_by_weight(tuples, 2)
    assert len(head) == 2
    assert len(rest) == 3


def test_split_group_cut_beyond_size():
    tuples = [StreamTuple(ts=0.0, key="a") for _ in range(3)]
    head, rest = split_group_by_weight(tuples, 10)
    assert len(head) == 3
    assert rest == []


def test_split_group_zero_cut():
    tuples = [StreamTuple(ts=0.0, key="a")]
    head, rest = split_group_by_weight(tuples, 0)
    assert head == []
    assert len(rest) == 1


def test_split_group_variable_weights():
    tuples = [StreamTuple(ts=0.0, key="a", weight=w) for w in (3, 3, 3)]
    head, rest = split_group_by_weight(tuples, 4)
    # shortest prefix reaching the cut: two tuples of weight 3
    assert len(head) == 2
    assert len(rest) == 1


# ----------------------------------------------------------------------
# basic partitioning behaviour (both strategies)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_tuple_assigned_exactly_once(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups({f"k{i}": (i % 7) + 1 for i in range(40)})
    total = sum(g.size for g in groups)
    batch = part.partition(groups, 4, INFO)
    batch.validate(expected_tuples=total)
    assert batch.total_tuples == total


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_rejects_zero_blocks(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    with pytest.raises(ValueError):
        part.partition(_groups({"a": 1}), 0, INFO)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_empty_batch(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    batch = part.partition([], 4, INFO)
    assert batch.num_blocks == 4
    assert batch.total_tuples == 0
    assert batch.split_keys == {}


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_single_block_takes_everything(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    batch = part.partition(_groups({"a": 5, "b": 3}), 1, INFO)
    assert batch.blocks[0].size == 8
    assert batch.split_keys == {}


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_uniform_keys_balanced_without_splits(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups({f"k{i}": 4 for i in range(40)})
    batch = part.partition(groups, 4, INFO)
    quality = evaluate_partition(batch)
    assert quality.bsi <= 4.0
    assert quality.bci <= 1.0
    assert quality.ksr == 1.0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_block_sizes_respect_capacity(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups({f"k{i}": (53 * (i + 1)) % 17 + 1 for i in range(60)})
    total = sum(g.size for g in groups)
    p = 5
    batch = part.partition(groups, p, INFO)
    capacity = math.ceil(total / p)
    for block in batch.blocks:
        assert block.size <= capacity + 1  # ceil slack


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_mega_key_spreads_over_blocks(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups({"hot": 100, "a": 2, "b": 2})
    batch = part.partition(groups, 4, INFO)
    batch.validate(expected_tuples=104)
    assert "hot" in batch.split_keys
    assert len(batch.split_keys["hot"]) >= 3  # must span several blocks
    quality = evaluate_partition(batch)
    assert quality.bsi <= 5.0


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_split_keys_reference_table_is_consistent(strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups({f"k{i}": 30 - i for i in range(30)})
    batch = part.partition(groups, 6, INFO)
    recomputed = {}
    for block in batch.blocks:
        for key in block.keys:
            recomputed.setdefault(key, []).append(block.index)
    expected = {
        k: tuple(sorted(v)) for k, v in recomputed.items() if len(v) > 1
    }
    assert batch.split_keys == expected


def test_greedy_balances_cardinality_under_skew():
    part = PromptBatchPartitioner(strategy="greedy")
    freqs = {f"k{i}": max(1, 1000 // (i + 1)) for i in range(200)}
    batch = part.partition(_groups(freqs), 8, INFO)
    quality = evaluate_partition(batch)
    assert quality.bci <= 6.0
    assert quality.bsi <= 10.0
    assert quality.ksr <= 1.2


def test_zigzag_strategy_matches_paper_structure():
    """Zigzag: non-split keys dealt exactly evenly (cardinality +-1 before residuals)."""
    part = PromptBatchPartitioner(strategy="zigzag")
    # all keys below the split cutoff: freq 1-2, cutoff >= avg
    groups = _groups({f"k{i}": 1 for i in range(64)})
    batch = part.partition(groups, 8, INFO)
    cards = [b.cardinality for b in batch.blocks]
    assert max(cards) - min(cards) <= 1
    assert batch.split_keys == {}


def test_invalid_strategy_rejected():
    with pytest.raises(ValueError):
        PromptBatchPartitioner(strategy="bogus")


def test_split_cutoff_scale_controls_fragmentation():
    freqs = {f"k{i}": max(1, 120 // (i + 1)) for i in range(30)}
    lo = PromptBatchPartitioner(
        PartitionerConfig(split_cutoff_scale=0.5), strategy="zigzag"
    ).partition(_groups(freqs), 4, INFO)
    hi = PromptBatchPartitioner(
        PartitionerConfig(split_cutoff_scale=4.0), strategy="zigzag"
    ).partition(_groups(freqs), 4, INFO)
    # A lower cutoff splits more keys.
    assert len(lo.split_keys) >= len(hi.split_keys)


def test_quasi_sorted_input_tolerated():
    """Stale tracked counts (mis-sorted input) must not lose tuples."""
    part = PromptBatchPartitioner()
    groups = _groups({f"k{i}": (i * 37) % 23 + 1 for i in range(50)})
    groups[0], groups[-1] = groups[-1], groups[0]  # break the sort
    total = sum(g.size for g in groups)
    batch = part.partition(groups, 4, INFO)
    batch.validate(expected_tuples=total)


def test_figure5_example_beats_ffd_on_fragmented_keys():
    """The Figure 5/6 running example: Prompt fragments at most 2 keys."""
    freqs = dict(
        [("K1", 150), ("K2", 80), ("K3", 50), ("K4", 40),
         ("K5", 25), ("K6", 20), ("K7", 12), ("K8", 8)]
    )
    part = PromptBatchPartitioner()
    batch = part.partition(_groups(freqs), 4, INFO)
    batch.validate(expected_tuples=385)
    assert len(batch.split_keys) <= 2
    quality = evaluate_partition(batch)
    assert quality.bsi <= 4.0
    cards = [b.cardinality for b in batch.blocks]
    assert max(cards) - min(cards) <= 2


# ----------------------------------------------------------------------
# property-based
# ----------------------------------------------------------------------
@given(
    freqs=st.dictionaries(
        st.integers(0, 100), st.integers(1, 50), min_size=1, max_size=60
    ),
    num_blocks=st.integers(1, 8),
    strategy=st.sampled_from(STRATEGIES),
)
@settings(max_examples=80, deadline=None)
def test_property_no_tuple_lost_or_duplicated(freqs, num_blocks, strategy):
    part = PromptBatchPartitioner(strategy=strategy)
    groups = _groups(freqs)
    total = sum(g.size for g in groups)
    batch = part.partition(groups, num_blocks, INFO)
    batch.validate(expected_tuples=total)
    # per-key conservation
    for key, n in freqs.items():
        got = sum(len(b.fragment(key)) for b in batch.blocks)
        assert got == n


@given(
    freqs=st.dictionaries(
        st.integers(0, 50), st.integers(1, 100), min_size=2, max_size=40
    ),
    num_blocks=st.integers(2, 6),
)
@settings(max_examples=60, deadline=None)
def test_property_greedy_capacity_bound(freqs, num_blocks):
    part = PromptBatchPartitioner(strategy="greedy")
    groups = _groups(freqs)
    total = sum(g.size for g in groups)
    batch = part.partition(groups, num_blocks, INFO)
    capacity = math.ceil(total / num_blocks)
    # The rebalance phase tolerates overshoot up to the global ceil
    # slack (capped at ~1.5% of a block) — mirror that bound here.
    slack = num_blocks * capacity - total
    tolerance = min(slack, max(0, capacity // 64))
    for block in batch.blocks:
        assert block.size <= capacity + tolerance


@given(
    freqs=st.dictionaries(
        st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=3),
        st.integers(1, 30),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_split_keys_are_exactly_multi_block_keys(freqs):
    part = PromptBatchPartitioner()
    batch = part.partition(_groups(freqs), 4, INFO)
    for key in freqs:
        blocks_with_key = [b.index for b in batch.blocks if key in b]
        if len(blocks_with_key) > 1:
            assert key in batch.split_keys
        else:
            assert key not in batch.split_keys


# ----------------------------------------------------------------------
# hot-path regressions
# ----------------------------------------------------------------------
class _CountingChain(CollectionsSequence):
    """A tuple chain that counts how many elements slicing copies out."""

    def __init__(self, items):
        self._items = list(items)
        self.sliced_elements = 0

    def __len__(self):
        return len(self._items)

    def __getitem__(self, ix):
        if isinstance(ix, slice):
            out = self._items[ix]
            self.sliced_elements += len(out)
            return out
        return self._items[ix]


def test_mega_key_dicing_is_linear():
    """Dicing a hot key into c chunks must copy O(n) tuples, not O(c*n).

    The pre-fix loop re-sliced the *remaining* chain for every chunk, so
    each of the mega-key's tuples was copied once per chunk boundary it
    survived past.  With the index cursor each tuple is sliced out
    exactly once.
    """
    n = 4096
    mega = KeyGroup(
        key="mega",
        tuples=[StreamTuple(ts=0.0, key="mega") for _ in range(n)],
        tracked_count=n,
    )
    chain = _CountingChain(mega.tuples)
    mega.tuples = chain  # type: ignore[assignment]
    small = _groups({f"k{i}": 8 for i in range(7)})
    groups = [mega, *small]

    part = PromptBatchPartitioner()
    batch = part.partition(groups, 8, INFO)

    # Correctness: nothing lost, the mega key really was diced.
    assert sum(b.size for b in batch.blocks) == n + 7 * 8
    assert len(batch.split_keys.get("mega", ())) > 1
    # Linear work: each tuple is sliced out of the chain exactly once.
    assert chain.sliced_elements <= 2 * n


def test_greedy_assign_honors_passed_cutoff():
    """``_greedy_assign`` must use the cutoff ``partition`` hands it.

    The pre-fix code silently recomputed ``s_cut`` from the key groups
    (yielding 10 here, so nothing would split); the caller's value must
    be authoritative so the two code paths can never drift apart.
    """
    part = PromptBatchPartitioner()
    groups = _groups({k: 10 for k in "abcd"})
    blocks = [DataBlock(i) for i in range(4)]
    placements: dict = {}
    part._greedy_assign(groups, blocks, placements, p_size=10, s_cut=4)
    # With the caller's cutoff of 4 every size-10 key is a split key.
    assert placements
    assert all(len(ixs) > 1 for ixs in placements.values())
