"""Discrete-event kernel: ordering, priorities, cancellation."""

from __future__ import annotations

import pytest

from repro.engine.simulation import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.run()
    assert fired == ["a", "b", "c"]
    assert loop.now == 3.0


def test_same_time_fires_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for label in "abc":
        loop.schedule(1.0, lambda l=label: fired.append(l))
    loop.run()
    assert fired == ["a", "b", "c"]


def test_priority_breaks_time_ties():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append("late"), priority=1)
    loop.schedule(1.0, lambda: fired.append("early"), priority=-1)
    loop.run()
    assert fired == ["early", "late"]


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(5.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule(1.0, lambda: None)


def test_schedule_in_relative_delay():
    loop = EventLoop()
    times = []
    loop.schedule(1.0, lambda: loop.schedule_in(0.5, lambda: times.append(loop.now)))
    loop.run()
    assert times == [1.5]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule_in(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    loop.schedule(2.0, lambda: fired.append("y"))
    loop.run()
    assert fired == ["y"]


def test_run_until_parks_clock():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run(until=2.0)
    assert fired == [1]
    assert loop.now == 2.0
    assert loop.pending == 1
    loop.run()
    assert fired == [1, 5]


def test_events_scheduled_during_run_are_processed():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            loop.schedule_in(1.0, lambda: chain(n + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert loop.now == 5.0


def test_max_events_guard():
    loop = EventLoop()

    def forever():
        loop.schedule_in(1.0, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_step_and_counters():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    assert loop.pending == 1
    assert loop.step() is True
    assert loop.fired == 1
    assert loop.step() is False
