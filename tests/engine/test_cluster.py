"""Cluster model and LPT makespan."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cluster import Cluster, ClusterConfig, makespan


def test_makespan_tasks_fit_on_cores():
    assert makespan([1.0, 2.0, 3.0], 4) == 3.0


def test_makespan_single_core_sums():
    assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)


def test_makespan_queueing():
    # 4 unit tasks on 2 cores: 2 rounds
    assert makespan([1.0] * 4, 2) == pytest.approx(2.0)


def test_makespan_lpt_order():
    # LPT: [5] on one core; [3,2,1] -> cores {5},{3,2} or {5,1},{3,2}
    assert makespan([5.0, 3.0, 2.0, 1.0], 2) == pytest.approx(6.0)


def test_makespan_empty():
    assert makespan([], 8) == 0.0


def test_makespan_validation():
    with pytest.raises(ValueError):
        makespan([1.0], 0)
    with pytest.raises(ValueError):
        makespan([-1.0], 2)


@given(
    durations=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30),
    cores=st.integers(1, 8),
)
@settings(max_examples=80, deadline=None)
def test_property_makespan_bounds(durations, cores):
    """Classic bounds: max(T) <= makespan, makespan <= sum/m + max."""
    m = makespan(durations, cores)
    assert m >= max(durations) - 1e-9
    assert m <= sum(durations) / cores + max(durations) + 1e-9
    assert m <= sum(durations) + 1e-9


def test_cluster_config_totals():
    assert ClusterConfig(num_nodes=20, cores_per_node=16).total_cores == 320


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(num_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(cores_per_node=0)


def test_cluster_allocation_clamped():
    cluster = Cluster(ClusterConfig(num_nodes=2, cores_per_node=4))
    assert cluster.allocated_cores == 8
    assert cluster.allocate(100) == 8
    assert cluster.allocate(0) == 1
    assert cluster.allocate(5) == 5


def test_cluster_rejects_bad_initial_allocation():
    with pytest.raises(ValueError):
        Cluster(ClusterConfig(num_nodes=1, cores_per_node=2), allocated_cores=5)


def test_cluster_stage_makespan_uses_allocation():
    cluster = Cluster(ClusterConfig(num_nodes=1, cores_per_node=4), allocated_cores=2)
    assert cluster.stage_makespan([1.0] * 4) == pytest.approx(2.0)
