"""Shared benchmark plumbing.

Every bench regenerates one table or figure from the paper's Section 7,
prints the rows (run pytest with ``-s`` to see them inline; they are
also echoed into the benchmark's ``extra_info``), and persists JSON to
``benchmarks/results/`` for EXPERIMENTS.md.

Since the persistent experiment matrix (PR 8), every artifact write is
also mirrored into the SQLite results store
(``benchmarks/results/results.db``): string columns become cell params,
numeric columns become metric rows, each keyed by a stable config hash
plus the current git SHA and environment fingerprint — so the
``BENCH_*.json`` one-offs join the same cross-PR trajectory that
``repro bench report`` renders and ``repro bench regress`` gates.
Set ``REPRO_BENCH_STORE=0`` to skip the mirroring.
"""

from __future__ import annotations

import warnings

import pytest

from repro.bench.reporting import save_results
from repro.bench.store import append_artifact_rows


@pytest.fixture
def record_experiment(capsys):
    """Return a helper that prints a table, persists JSON, feeds the store.

    ``store`` carries the grid params the bench knows about itself
    (workload, backend, ...); they join every mirrored row's identity.
    """

    def _record(name: str, table_text: str, payload, *, store=None) -> None:
        with capsys.disabled():
            print(f"\n{table_text}\n")
        save_results(name, payload)
        try:
            append_artifact_rows(name, payload, extra_params=store)
        except Exception as exc:  # pragma: no cover - bookkeeping only
            # A store hiccup (locked db, read-only checkout) must never
            # turn a passing benchmark red.
            warnings.warn(f"results store append failed for {name}: {exc}")

    return _record
