"""Early Batch Release: windows, cut-offs, overhead audit."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.config import EarlyReleaseConfig
from repro.core.early_release import EarlyReleaseController


def test_window_uses_slack_fraction():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.05))
    window = ctl.window_for(BatchInfo(0, 0.0, 2.0))
    assert window.heartbeat == 2.0
    assert window.cutoff == pytest.approx(1.9)
    assert window.slack == pytest.approx(0.1)


def test_zero_slack_degenerates_to_heartbeat():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.0))
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    assert window.cutoff == window.heartbeat


def test_slack_fraction_bounds():
    with pytest.raises(ValueError):
        EarlyReleaseConfig(slack_fraction=1.0)
    with pytest.raises(ValueError):
        EarlyReleaseConfig(slack_fraction=-0.1)


def test_belongs_to_next_batch():
    ctl = EarlyReleaseController()
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    assert not ctl.belongs_to_next_batch(0.5, window)
    assert ctl.belongs_to_next_batch(0.96, window)
    assert ctl.belongs_to_next_batch(window.cutoff, window)


def test_record_and_miss_rate():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.05))
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))  # slack 0.05
    assert ctl.record(0.01, window) is True
    assert ctl.record(0.2, window) is False
    assert ctl.miss_rate() == pytest.approx(0.5)
    assert len(ctl.observations) == 2


def test_miss_rate_empty():
    assert EarlyReleaseController().miss_rate() == 0.0


def test_overhead_fractions():
    ctl = EarlyReleaseController()
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    ctl.record(0.02, window)
    ctl.record(0.04, window)
    assert ctl.overhead_fractions(2.0) == [pytest.approx(0.01), pytest.approx(0.02)]
    with pytest.raises(ValueError):
        ctl.overhead_fractions(0.0)


def test_audit_window_is_bounded():
    ctl = EarlyReleaseController(
        EarlyReleaseConfig(slack_fraction=0.05), audit_window=8
    )
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))  # slack 0.05
    for i in range(100):
        elapsed = 0.01 if i % 4 else 0.2  # every 4th run misses
        ctl.record(elapsed, window)
    # Detailed observations roll over; the tallies keep the full history.
    assert len(ctl.observations) == 8
    assert len(ctl.overhead_fractions(1.0)) == 8
    assert ctl.total_recorded == 100
    assert ctl.met_count == 75
    assert ctl.missed_count == 25
    assert ctl.miss_rate() == pytest.approx(0.25)


def test_audit_window_keeps_most_recent():
    ctl = EarlyReleaseController(audit_window=3)
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    for elapsed in (0.01, 0.02, 0.03, 0.04, 0.05):
        ctl.record(elapsed, window)
    assert [e for e, _ in ctl.observations] == [0.03, 0.04, 0.05]


def test_audit_window_validation():
    with pytest.raises(ValueError):
        EarlyReleaseController(audit_window=0)
