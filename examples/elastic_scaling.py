#!/usr/bin/env python3
"""Watch the auto-scaler track a workload ramp (Figure 12's experiment).

The offered rate and the number of distinct keys both ramp 6x upward
and then back down; back-pressure is off, so the threshold controller
of Algorithm 4 is the only thing keeping processing time inside the
batch interval.  The printed trace shows Map/Reduce tasks climbing
within a few batches of the load crossing the 90% threshold, then
draining lazily on the way down.

Run:  python examples/elastic_scaling.py
"""

from __future__ import annotations

from repro import ElasticityConfig, EngineConfig, MicroBatchEngine, make_partitioner
from repro.engine import ClusterConfig, TaskCostModel
from repro.queries import wordcount_query
from repro.workloads import ElasticWorkloadSource, PiecewiseRate

NUM_BATCHES = 50


def main() -> None:
    # Up, hold, down: rate 3k -> 12k -> 3k; keys 500 -> 3000 -> 500.
    # The ramp (~900 tuples/s per batch) is gentle enough for the
    # one-task-per-decision controller to track without deep queueing —
    # the regime Figure 12 operates in.
    arrival = PiecewiseRate(
        [(0.0, 3_000.0)]
        + [(5.0 + i, 3_000.0 + 900.0 * (i + 1)) for i in range(10)]
        + [(30.0 + i, 12_000.0 - 900.0 * (i + 1)) for i in range(10)]
    )
    source = ElasticWorkloadSource(
        arrival, keys_start=500, keys_end=3_000, t0=5.0, t1=15.0, seed=11
    )

    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(),
        EngineConfig(
            batch_interval=1.0,
            num_blocks=2,
            num_reducers=2,
            cluster=ClusterConfig(num_nodes=16, cores_per_node=4),
            cost_model=TaskCostModel(map_per_tuple=4e-4, reduce_per_fragment=1e-3),
            # React every batch (window=1, no grace) so the staircase
            # keeps up with this deliberately steep 6x ramp.
            elasticity=ElasticityConfig(
                threshold=0.9, step=0.3, window=1, grace=0,
                max_map_tasks=32, max_reduce_tasks=32,
            ),
            track_outputs=False,
        ),
    )

    result = engine.run(source, NUM_BATCHES)

    print("batch  rate(t/s)  keys   maps  reduces  load(W)  action")
    for record in result.stats.records:
        action = ""
        if record.scaling is not None and record.scaling.acted:
            action = record.scaling.reason
        bar = "#" * round(min(record.load, 1.5) * 20)
        print(
            f"{record.index:>5}  {record.tuple_count:>9,}  {record.key_count:>5}"
            f"  {record.map_tasks:>4}  {record.reduce_tasks:>7}"
            f"  {record.load:>6.2f}  {action or bar}"
        )

    acted = [d for d in result.scaling_history if d.acted]
    print(f"\nscaling actions taken: {len(acted)}")
    print(f"max queue delay: {result.stats.max_queue_delay():.3f}s")


if __name__ == "__main__":
    main()
