"""Task execution: cost model, map filters, shuffle, key locality."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo, DataBlock, PartitionedBatch
from repro.core.tuples import StreamTuple
from repro.engine.tasks import TaskCostModel, execute_batch_tasks, execute_map_task
from repro.partitioners import HashPartitioner, PromptPartitioner, ShufflePartitioner
from repro.queries.base import Query, SumAggregator

from ..conftest import make_tuples

INFO = BatchInfo(0, 0.0, 1.0)


def _sum_query(**kw):
    return Query(name="sum", aggregator=SumAggregator(), **kw)


def _value_tuples(pairs):
    return [StreamTuple(ts=i * 0.01, key=k, value=v) for i, (k, v) in enumerate(pairs)]


def _partition(tuples, p=2, partitioner=None):
    part = partitioner or ShufflePartitioner()
    return part.partition(tuples, p, INFO), part


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def test_cost_model_monotone_in_size():
    cm = TaskCostModel()
    assert cm.map_time(100, 10) < cm.map_time(200, 10)
    assert cm.map_time(100, 10) < cm.map_time(100, 20)
    assert cm.reduce_time(100, 10) < cm.reduce_time(200, 10)
    assert cm.reduce_time(100, 10) < cm.reduce_time(100, 20)


def test_cost_model_fixed_floor():
    cm = TaskCostModel()
    assert cm.map_time(0, 0) == pytest.approx(cm.map_fixed)
    assert cm.reduce_time(0, 0) == pytest.approx(cm.reduce_fixed)


def test_cost_model_rejects_negative_coefficients():
    with pytest.raises(ValueError):
        TaskCostModel(map_per_tuple=-1e-6)


# ----------------------------------------------------------------------
# map task
# ----------------------------------------------------------------------
def test_map_task_aggregates_per_key():
    block = DataBlock(0)
    block.add_fragment("a", _value_tuples([("a", 1), ("a", 2)]))
    block.add_fragment("b", _value_tuples([("b", 5)]))
    clusters, partials, duration = execute_map_task(
        block, _sum_query(), TaskCostModel()
    )
    assert partials == {"a": 3, "b": 5}
    assert {c.key: c.size for c in clusters} == {"a": 1, "b": 1}  # combined
    assert duration > 0


def test_map_task_without_combine_ships_value_lists():
    block = DataBlock(0)
    block.add_fragment("a", _value_tuples([("a", 1), ("a", 2), ("a", 3)]))
    query = _sum_query(map_side_combine=False)
    clusters, partials, _ = execute_map_task(block, query, TaskCostModel())
    assert {c.key: c.size for c in clusters} == {"a": 3}
    assert partials == {"a": 6}


def test_map_task_filter_drops_tuples_but_charges_scan():
    block = DataBlock(0)
    block.add_fragment("a", _value_tuples([("a", 1), ("a", -1)]))
    query = _sum_query(map_fn=lambda k, v: v if v > 0 else None)
    cm = TaskCostModel()
    clusters, partials, duration = execute_map_task(block, query, cm)
    assert partials == {"a": 1}
    assert duration == pytest.approx(cm.map_time(2, 1))  # both tuples scanned


def test_map_task_fully_filtered_key_emits_nothing():
    block = DataBlock(0)
    block.add_fragment("a", _value_tuples([("a", -1)]))
    query = _sum_query(map_fn=lambda k, v: None)
    clusters, partials, _ = execute_map_task(block, query, TaskCostModel())
    assert clusters == []
    assert partials == {}


# ----------------------------------------------------------------------
# full batch execution
# ----------------------------------------------------------------------
def test_batch_output_matches_reference():
    tuples = _value_tuples([("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)])
    query = _sum_query()
    batch, part = _partition(tuples, p=3)
    execution = execute_batch_tasks(batch, query, part, 2, TaskCostModel())
    assert execution.batch_output() == query.reference_output(tuples)


def test_split_key_partials_merge_at_one_reducer():
    tuples = [StreamTuple(ts=i * 0.01, key="hot", value=1) for i in range(10)]
    batch, part = _partition(tuples, p=4)  # shuffle scatters "hot"
    assert "hot" in batch.split_keys
    execution = execute_batch_tasks(batch, _sum_query(), part, 4, TaskCostModel())
    owners = [r for r in execution.reduce_results if "hot" in r.results]
    assert len(owners) == 1
    assert owners[0].results["hot"] == 10
    assert owners[0].fragment_count == 4  # one partial per map task


def test_prompt_allocator_used_in_processing_phase():
    tuples = make_tuples({f"k{i}": 5 for i in range(20)}, shuffle_seed=3)
    part = PromptPartitioner()
    batch = part.partition(tuples, 4, INFO)
    execution = execute_batch_tasks(batch, _sum_query(map_fn=lambda k, v: 1), part, 4, TaskCostModel())
    # every reduce task owns some keys (WorstFit retirement spreads them)
    assert all(r.key_count > 0 for r in execution.reduce_results)
    assert execution.batch_output().keys() == {f"k{i}" for i in range(20)}


def test_fragment_counts_penalize_scatter():
    tuples = make_tuples({f"k{i}": 8 for i in range(16)}, shuffle_seed=4)
    cm = TaskCostModel()
    query = _sum_query(map_fn=lambda k, v: 1)
    sh_batch, sh = _partition(tuples, p=8, partitioner=ShufflePartitioner())
    ha_batch, ha = _partition(tuples, p=8, partitioner=HashPartitioner())
    sh_exec = execute_batch_tasks(sh_batch, query, sh, 4, cm)
    ha_exec = execute_batch_tasks(ha_batch, query, ha, 4, cm)
    sh_frags = sum(r.fragment_count for r in sh_exec.reduce_results)
    ha_frags = sum(r.fragment_count for r in ha_exec.reduce_results)
    assert sh_frags > ha_frags  # shuffle scatters keys over blocks


def test_key_locality_violation_detected():
    """A broken allocator that routes one key to two buckets is caught."""

    class BrokenPartitioner(ShufflePartitioner):
        def allocate_reduce(self, clusters, split_keys, num_buckets):
            out = super().allocate_reduce(clusters, split_keys, num_buckets)
            # perturb: send this task's first cluster to a rotating bucket
            if out.assignment:
                key = next(iter(out.assignment))
                out.assignment[key] = (out.assignment[key] + self._bump) % num_buckets
                self._bump += 1
            return out

        _bump = 0

    part = BrokenPartitioner()
    tuples = [StreamTuple(ts=i * 0.01, key="hot", value=1) for i in range(8)]
    batch = part.partition(tuples, 4, INFO)
    with pytest.raises(AssertionError, match="key locality violated"):
        execute_batch_tasks(batch, _sum_query(), part, 4, TaskCostModel())


def test_rejects_zero_reducers():
    batch, part = _partition(_value_tuples([("a", 1)]))
    with pytest.raises(ValueError):
        execute_batch_tasks(batch, _sum_query(), part, 0, TaskCostModel())


def test_empty_batch_executes():
    batch, part = _partition([], p=2)
    execution = execute_batch_tasks(batch, _sum_query(), part, 2, TaskCostModel())
    assert execution.batch_output() == {}
    assert len(execution.map_durations) == 2  # fixed cost per (empty) task
