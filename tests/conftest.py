"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple


def make_tuples(freqs: dict, *, start: float = 0.0, spacing: float = 0.001, shuffle_seed=None):
    """Build a tuple list with exactly ``freqs[key]`` tuples per key.

    Tuples are interleaved (optionally shuffled deterministically) and
    timestamped in arrival order — convenient for exercising both
    batch-wide and tuple-at-a-time partitioners.
    """
    population = [k for k, n in freqs.items() for _ in range(n)]
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(population)
    return [
        StreamTuple(ts=start + i * spacing, key=k, value=None)
        for i, k in enumerate(population)
    ]


def zipfish_freqs(num_keys: int, total: int) -> dict:
    """A deterministic skewed frequency map summing to ~``total``."""
    weights = [1.0 / (i + 1) for i in range(num_keys)]
    scale = total / sum(weights)
    freqs = {f"k{i}": max(1, round(w * scale)) for i, w in enumerate(weights)}
    return freqs


@pytest.fixture
def unit_info() -> BatchInfo:
    """A one-second batch interval starting at t=0."""
    return BatchInfo(index=0, t_start=0.0, t_end=1.0)


@pytest.fixture
def skewed_tuples():
    """~1100 tuples over 50 keys with 1/rank skew, shuffled."""
    return make_tuples(zipfish_freqs(50, 1000), shuffle_seed=7)


@pytest.fixture
def uniform_tuples():
    """400 tuples over 100 keys, 4 each, shuffled."""
    return make_tuples({f"u{i}": 4 for i in range(100)}, shuffle_seed=11)
