"""Early Batch Release (Section 4.2, Figure 7).

The partitioning algorithm must not eat into the processing phase, so
Prompt separates the *batching cut-off* from the *processing cut-off*
(the system heartbeat): buffering stops ``slack_fraction`` of the
interval early, giving the partitioner that slack to produce the data
blocks exactly at the heartbeat.  Tuples arriving during the slack are
carried into the next batch.  The paper observes a slack of at most 5%
of the batch interval suffices (Figure 14b measures the partitioner's
actual cost against that budget).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .batch import BatchInfo
from .config import EarlyReleaseConfig

__all__ = ["ReleaseWindow", "EarlyReleaseController"]


@dataclass(frozen=True, slots=True)
class ReleaseWindow:
    """Timing plan for one batch under early release."""

    info: BatchInfo
    cutoff: float      # batching stops here
    heartbeat: float   # processing starts here (== info.t_end)

    @property
    def slack(self) -> float:
        return self.heartbeat - self.cutoff


class EarlyReleaseController:
    """Computes release windows and audits partitioner latency against them.

    The audit retains only the most recent ``audit_window`` observations
    (a long-running driver records one per batch, forever), while the
    met/missed tallies run over the whole lifetime — so ``miss_rate`` is
    exact even after the detailed window has rolled.
    """

    #: observations retained for the detailed audit (Fig 14b etc.)
    DEFAULT_AUDIT_WINDOW = 4096

    def __init__(
        self,
        config: EarlyReleaseConfig | None = None,
        *,
        audit_window: int = DEFAULT_AUDIT_WINDOW,
    ) -> None:
        if audit_window < 1:
            raise ValueError(f"audit_window must be >= 1, got {audit_window}")
        self.config = config or EarlyReleaseConfig()
        self.audit_window = audit_window
        # (elapsed, slack) of the most recent audit_window batches
        self._observed: deque[tuple[float, float]] = deque(maxlen=audit_window)
        self._met = 0
        self._missed = 0

    def window_for(self, info: BatchInfo) -> ReleaseWindow:
        """The batching cut-off for ``info``'s interval."""
        slack = info.interval * self.config.slack_fraction
        return ReleaseWindow(info=info, cutoff=info.t_end - slack, heartbeat=info.t_end)

    def belongs_to_next_batch(self, ts: float, window: ReleaseWindow) -> bool:
        """Whether a tuple at ``ts`` arrived after the batching cut-off."""
        return ts >= window.cutoff

    def record(self, partition_elapsed: float, window: ReleaseWindow) -> bool:
        """Log a partitioning run; returns True if it met the heartbeat."""
        self._observed.append((partition_elapsed, window.slack))
        met = partition_elapsed <= window.slack
        if met:
            self._met += 1
        else:
            self._missed += 1
        return met

    @property
    def observations(self) -> list[tuple[float, float]]:
        """The retained ``(elapsed, slack)`` pairs — most recent
        ``audit_window`` batches only."""
        return list(self._observed)

    @property
    def met_count(self) -> int:
        """Lifetime count of partitioning runs that met their slack."""
        return self._met

    @property
    def missed_count(self) -> int:
        """Lifetime count of partitioning runs that overran their slack."""
        return self._missed

    @property
    def total_recorded(self) -> int:
        """Lifetime number of recorded partitioning runs."""
        return self._met + self._missed

    def miss_rate(self) -> float:
        """Lifetime fraction of partitioning runs that overran their slack.

        Computed from the running tallies, so it stays exact even after
        the detailed observation window has rolled over.
        """
        total = self._met + self._missed
        if total == 0:
            return 0.0
        return self._missed / total

    def overhead_fractions(self, batch_interval: float) -> list[float]:
        """Partitioning cost as a fraction of the batch interval (Fig 14b).

        Covers the retained observation window (the most recent
        ``audit_window`` batches).
        """
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        return [elapsed / batch_interval for elapsed, _ in self._observed]
