"""Cluster topology: block placement and shuffle locality.

Section 7: "The batching module is responsible to seal and serialize
the data blocks and place them on the memory of the cluster nodes."
Placement determines which shuffle fetches cross the network: a Reduce
task reading a fragment produced by a Map task on another node pays a
network transfer, one on its own node reads memory.

The topology is deliberately simple — blocks and reducers are spread
round-robin over nodes, the placement Spark's block manager approximates
for receiver-generated blocks — and the cost model charges an optional
``network_per_remote_fragment`` on top of the merge cost.  With the
default of 0 the topology is free, preserving every headline result;
the locality tests and the topology-aware cost model quantify how much
of the shuffle each technique puts on the wire (scattering techniques
pay more because they create more fragments, each a potential remote
fetch).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import ClusterConfig

__all__ = ["ClusterTopology", "Topology"]


@dataclass(frozen=True, slots=True)
class ClusterTopology:
    """Round-robin placement of blocks and Reduce tasks over nodes.

    Named ``ClusterTopology`` since v1 to leave ``Topology`` to the
    public run-shape concept (:class:`repro.Topology`: single-engine vs
    sharded); the old name stays importable as an alias.
    """

    cluster: ClusterConfig

    @property
    def num_nodes(self) -> int:
        return self.cluster.num_nodes

    def node_of_block(self, block_index: int) -> int:
        """The node holding a data block (and running its Map task)."""
        if block_index < 0:
            raise ValueError(f"block_index must be >= 0, got {block_index}")
        return block_index % self.num_nodes

    def node_of_reducer(self, bucket_index: int) -> int:
        """The node running a Reduce task."""
        if bucket_index < 0:
            raise ValueError(f"bucket_index must be >= 0, got {bucket_index}")
        return bucket_index % self.num_nodes

    def is_local(self, block_index: int, bucket_index: int) -> bool:
        """Whether a (Map task -> Reduce task) fetch stays on one node."""
        return self.node_of_block(block_index) == self.node_of_reducer(bucket_index)

    def remote_fraction(self, num_blocks: int, num_reducers: int) -> float:
        """Fraction of (block, reducer) pairs that cross the network.

        With round-robin placement this approaches ``1 - 1/num_nodes``
        as task counts grow — the well-known all-to-all shuffle floor.
        """
        if num_blocks < 1 or num_reducers < 1:
            raise ValueError("need at least one block and one reducer")
        remote = sum(
            1
            for b in range(num_blocks)
            for r in range(num_reducers)
            if not self.is_local(b, r)
        )
        return remote / (num_blocks * num_reducers)


#: backward-compatible alias (pre-v1 name of :class:`ClusterTopology`)
Topology = ClusterTopology
