"""Early Batch Release: windows, cut-offs, overhead audit."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.config import EarlyReleaseConfig
from repro.core.early_release import EarlyReleaseController


def test_window_uses_slack_fraction():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.05))
    window = ctl.window_for(BatchInfo(0, 0.0, 2.0))
    assert window.heartbeat == 2.0
    assert window.cutoff == pytest.approx(1.9)
    assert window.slack == pytest.approx(0.1)


def test_zero_slack_degenerates_to_heartbeat():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.0))
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    assert window.cutoff == window.heartbeat


def test_slack_fraction_bounds():
    with pytest.raises(ValueError):
        EarlyReleaseConfig(slack_fraction=1.0)
    with pytest.raises(ValueError):
        EarlyReleaseConfig(slack_fraction=-0.1)


def test_belongs_to_next_batch():
    ctl = EarlyReleaseController()
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    assert not ctl.belongs_to_next_batch(0.5, window)
    assert ctl.belongs_to_next_batch(0.96, window)
    assert ctl.belongs_to_next_batch(window.cutoff, window)


def test_record_and_miss_rate():
    ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=0.05))
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))  # slack 0.05
    assert ctl.record(0.01, window) is True
    assert ctl.record(0.2, window) is False
    assert ctl.miss_rate() == pytest.approx(0.5)
    assert len(ctl.observations) == 2


def test_miss_rate_empty():
    assert EarlyReleaseController().miss_rate() == 0.0


def test_overhead_fractions():
    ctl = EarlyReleaseController()
    window = ctl.window_for(BatchInfo(0, 0.0, 1.0))
    ctl.record(0.02, window)
    ctl.record(0.04, window)
    assert ctl.overhead_fractions(2.0) == [pytest.approx(0.01), pytest.approx(0.02)]
    with pytest.raises(ValueError):
        ctl.overhead_fractions(0.0)
