"""Figure 12: elastic task scaling under a growing / shrinking workload.

Back-pressure is disabled; the threshold controller (Algorithm 4) is
the only defence.  Paper shape: the engine adds tasks within a few
batches of the load crossing the threshold and removes them lazily when
the load subsides, keeping W inside the stability band.
"""

from __future__ import annotations

import pytest

from repro.bench import fig12_elasticity, format_table


@pytest.mark.parametrize("direction", ["out", "in"])
def test_fig12_elasticity(benchmark, record_experiment, direction):
    result = benchmark.pedantic(
        lambda: fig12_elasticity(direction=direction, num_batches=40),
        rounds=1,
        iterations=1,
    )
    series = result["series"]
    record_experiment(
        f"fig12_scale_{direction}",
        format_table(
            series,
            title=f"Figure 12 (scale-{direction}): offered load vs task counts",
        ),
        result,
        store=dict(workload=f"elastic-{direction}", partitioner="prompt"),
    )
    first, last = series[0], series[-1]
    if direction == "out":
        assert last["MapTasks"] > first["MapTasks"]
        assert last["ReduceTasks"] >= first["ReduceTasks"]
    else:
        assert last["MapTasks"] < first["MapTasks"]
    # The controller kept the system from runaway overload at the end:
    # the final plateau is processed inside ~the stability band.
    assert series[-1]["Load_W"] <= 1.1
    assert result["actions"], "the controller should have acted at least once"
