"""Reference bin-packing solvers for the B-BPFI problem (Section 4.2).

These are *not* part of the Prompt pipeline; they exist so the trade-off
illustrated by Figure 6 can be regenerated and so tests can check the
Algorithm 2 heuristic against principled references:

- :func:`first_fit_decreasing` — the classical FFD adapted to
  fragmentable items (fills bins nearly completely; Figure 6a shows it
  over-fragments and ignores cardinality).
- :func:`fragmentation_minimization` — the LeCun et al. style
  FragMin strategy (fills bins one at a time; Figure 6b shows minimal
  fragmentation but terrible cardinality balance).
- :func:`fragment_lower_bound` — an instance lower bound on the number
  of (item, bin) fragments any feasible balanced assignment must have.
- :func:`exact_min_fragments` — exhaustive branch-and-bound for tiny
  instances (used by tests to certify heuristic quality).

Items are ``(key, size)`` pairs; bins have one common capacity; every
result is a list of per-bin ``{key: placed_size}`` dicts.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

__all__ = [
    "Assignment",
    "first_fit_decreasing",
    "fragmentation_minimization",
    "fragment_lower_bound",
    "exact_min_fragments",
    "assignment_fragments",
    "assignment_sizes",
    "assignment_cardinalities",
]

Item = tuple[Hashable, int]
Assignment = list[dict[Hashable, int]]


def _check_instance(items: Sequence[Item], num_bins: int, capacity: int) -> None:
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    total = sum(size for _, size in items)
    if total > num_bins * capacity:
        raise ValueError(
            f"infeasible: total item size {total} exceeds capacity "
            f"{num_bins}x{capacity}"
        )
    for key, size in items:
        if size < 1:
            raise ValueError(f"item {key!r} has non-positive size {size}")


def assignment_fragments(assignment: Assignment) -> int:
    """Total number of (item, bin) fragments (the B-BPFI objective, Eqn. 7)."""
    return sum(len(b) for b in assignment)


def assignment_sizes(assignment: Assignment) -> list[int]:
    return [sum(b.values()) for b in assignment]


def assignment_cardinalities(assignment: Assignment) -> list[int]:
    return [len(b) for b in assignment]


def first_fit_decreasing(
    items: Sequence[Item], num_bins: int, capacity: int
) -> Assignment:
    """FFD with item fragmentation (Figure 6a behaviour).

    Items sorted by decreasing size; each goes to the first bin with any
    room, spilling the overflow onward — the classical strategy whose
    "fill bins nearly completely" objective is wrong for B-BPFI.
    """
    _check_instance(items, num_bins, capacity)
    bins: Assignment = [dict() for _ in range(num_bins)]
    loads = [0] * num_bins
    ordered = sorted(items, key=lambda kv: (-kv[1], repr(kv[0])))
    for key, size in ordered:
        remaining = size
        for j in range(num_bins):
            if remaining == 0:
                break
            room = capacity - loads[j]
            if room <= 0:
                continue
            placed = min(room, remaining)
            bins[j][key] = bins[j].get(key, 0) + placed
            loads[j] += placed
            remaining -= placed
        if remaining:
            raise AssertionError("FFD failed to place a feasible instance")
    return bins


def fragmentation_minimization(
    items: Sequence[Item], num_bins: int, capacity: int
) -> Assignment:
    """FragMin (Figure 6b): fill bins one at a time, splitting only at seams.

    At most one item is fragmented per bin boundary, which is optimal
    for fragmentation among size-balanced assignments, but consecutive
    large items pile into the same bin so cardinality balance suffers.
    """
    _check_instance(items, num_bins, capacity)
    bins: Assignment = [dict() for _ in range(num_bins)]
    ordered = sorted(items, key=lambda kv: (-kv[1], repr(kv[0])))
    j = 0
    load = 0
    for key, size in ordered:
        remaining = size
        while remaining > 0:
            if j >= num_bins:
                raise AssertionError("FragMin overran bins on a feasible instance")
            room = capacity - load
            placed = min(room, remaining)
            if placed > 0:
                bins[j][key] = bins[j].get(key, 0) + placed
                load += placed
                remaining -= placed
            if load >= capacity:
                j += 1
                load = 0
    return bins


def fragment_lower_bound(
    items: Sequence[Item], num_bins: int, capacity: int
) -> int:
    """Lower bound on total fragments for any feasible assignment.

    Every item contributes at least one fragment, and an item of size
    ``s > capacity`` must occupy at least ``ceil(s / capacity)`` bins.
    Additionally at least ``num_bins`` fragments exist whenever the
    total size forces every bin to be non-empty for balance.
    """
    _check_instance(items, num_bins, capacity)
    base = sum(max(1, math.ceil(size / capacity)) for _, size in items)
    return max(base, min(num_bins, len(items)))


def exact_min_fragments(
    items: Sequence[Item],
    num_bins: int,
    capacity: int,
    *,
    node_limit: int = 200_000,
) -> int:
    """Exact minimum fragment count via branch-and-bound (tiny instances).

    Explores, largest item first, every way to carve an item across bins
    (whole placements before splits), pruning on the running best and on
    the per-item ``ceil(s/C)`` bound.  Raises ``RuntimeError`` if the
    search exceeds ``node_limit`` nodes — callers should keep instances
    to roughly K <= 10, B <= 4.
    """
    _check_instance(items, num_bins, capacity)
    sizes = sorted((size for _, size in items), reverse=True)
    best = assignment_fragments(first_fit_decreasing(items, num_bins, capacity))
    remaining_lb = [0] * (len(sizes) + 1)
    for i in range(len(sizes) - 1, -1, -1):
        remaining_lb[i] = remaining_lb[i + 1] + max(1, math.ceil(sizes[i] / capacity))
    nodes = 0

    def dfs(i: int, loads: tuple[int, ...], fragments: int) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("exact_min_fragments node limit exceeded")
        if fragments + remaining_lb[i] >= best:
            return
        if i == len(sizes):
            best = min(best, fragments)
            return
        size = sizes[i]
        rooms = [capacity - load for load in loads]
        # Whole placements first (fewest fragments), deduplicating
        # symmetric bins by their current load.
        tried: set[int] = set()
        for j, room in enumerate(rooms):
            if room >= size and loads[j] not in tried:
                tried.add(loads[j])
                next_loads = loads[:j] + (loads[j] + size,) + loads[j + 1 :]
                dfs(i + 1, tuple(sorted(next_loads)), fragments + 1)
        # Then split across the k roomiest bins for k = 2, 3, ...
        order = sorted(range(num_bins), key=lambda j: -rooms[j])
        acc = 0
        for k, j in enumerate(order, start=1):
            acc += rooms[j]
            if k >= 2 and acc >= size and rooms[j] > 0:
                # Fill the k-1 roomiest completely, put the rest in bin k.
                next_loads = list(loads)
                remaining = size
                for jj in order[: k - 1]:
                    take = min(rooms[jj], remaining)
                    next_loads[jj] += take
                    remaining -= take
                next_loads[order[k - 1]] += remaining
                dfs(i + 1, tuple(sorted(next_loads)), fragments + k)
                break
    dfs(0, tuple([0] * num_bins), 0)
    return best
