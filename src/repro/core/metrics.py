"""Partitioning cost-model metrics (Section 3.3, Eqns. 2-6).

- **BSI** — Block Size-Imbalance: ``max_i |Block_i| - avg_i |Block_i|``.
- **BCI** — Block Cardinality-Imbalance: same, on distinct-key counts.
- **KSR** — Key Split Ratio: total key fragments over distinct keys
  (1.0 when no key is split).
- **MPI** — Micro-batch Partitioning-Imbalance:
  ``p1*BSI + p2*BCI + p3*KSR`` with normalized components so no metric
  dominates by scale (the paper uses equal weights p1=p2=p3=1/3).

The relative forms used in Figure 10 are also provided: BSI relative to
the hashing technique and BCI relative to shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .batch import DataBlock, PartitionedBatch
from .config import MPIWeights

__all__ = [
    "block_size_imbalance",
    "block_cardinality_imbalance",
    "key_split_ratio",
    "micro_batch_partitioning_imbalance",
    "PartitionQuality",
    "evaluate_partition",
    "relative_metric",
]


def _imbalance(values: Sequence[float]) -> float:
    """``max - avg`` of a non-empty sequence; 0.0 for the empty case."""
    if not values:
        return 0.0
    return max(values) - (sum(values) / len(values))


def block_size_imbalance(blocks: Sequence[DataBlock]) -> float:
    """BSI over data blocks (Eqn. 2); also applies to Reduce buckets (Eqn. 3)."""
    return _imbalance([b.size for b in blocks])


def block_cardinality_imbalance(blocks: Sequence[DataBlock]) -> float:
    """BCI over data blocks (Eqn. 4)."""
    return _imbalance([b.cardinality for b in blocks])


def key_split_ratio(batch: PartitionedBatch) -> float:
    """KSR (Eqn. 5): fragments / distinct keys, >= 1; 1.0 when nothing split.

    The paper's prose states KSR as distinct-keys over fragments but
    fixes "KSR=1 when no keys are split" and asks to *minimize* it, which
    only both hold with fragments in the numerator; we follow the
    normalized-minimization reading (as [25] does for its split factor).
    """
    keys = len(batch.distinct_keys())
    if keys == 0:
        return 1.0
    fragments = batch.key_fragment_count()
    return fragments / keys


def micro_batch_partitioning_imbalance(
    batch: PartitionedBatch, weights: MPIWeights | None = None
) -> float:
    """MPI (Eqn. 6) with scale-normalized components.

    BSI is normalized by the average block size and BCI by the average
    block cardinality so all three terms are dimensionless; KSR enters as
    its excess over the ideal 1.0.  A perfect partition scores 0.
    """
    w = weights or MPIWeights()
    blocks = batch.blocks
    if not blocks:
        return 0.0
    avg_size = sum(b.size for b in blocks) / len(blocks)
    avg_card = sum(b.cardinality for b in blocks) / len(blocks)
    bsi = block_size_imbalance(blocks) / avg_size if avg_size > 0 else 0.0
    bci = block_cardinality_imbalance(blocks) / avg_card if avg_card > 0 else 0.0
    ksr_excess = key_split_ratio(batch) - 1.0
    return w.p1 * bsi + w.p2 * bci + w.p3 * ksr_excess


@dataclass(frozen=True, slots=True)
class PartitionQuality:
    """All Section 3.3 metrics for one partitioned batch."""

    bsi: float
    bci: float
    ksr: float
    mpi: float
    max_block_size: int
    avg_block_size: float
    max_block_cardinality: int
    avg_block_cardinality: float

    def as_row(self) -> dict[str, float]:
        return {
            "BSI": self.bsi,
            "BCI": self.bci,
            "KSR": self.ksr,
            "MPI": self.mpi,
        }


def evaluate_partition(
    batch: PartitionedBatch, weights: MPIWeights | None = None
) -> PartitionQuality:
    """Compute the full metric bundle for ``batch``."""
    blocks = batch.blocks
    sizes = [b.size for b in blocks]
    cards = [b.cardinality for b in blocks]
    n = max(1, len(blocks))
    return PartitionQuality(
        bsi=block_size_imbalance(blocks),
        bci=block_cardinality_imbalance(blocks),
        ksr=key_split_ratio(batch),
        mpi=micro_batch_partitioning_imbalance(batch, weights),
        max_block_size=max(sizes, default=0),
        avg_block_size=sum(sizes) / n,
        max_block_cardinality=max(cards, default=0),
        avg_block_cardinality=sum(cards) / n,
    )


def relative_metric(value: float, baseline: float) -> float:
    """Figure 10's presentation: a metric relative to a reference technique.

    Approaches 0 when ``value`` is far below the baseline; equals 1 at
    parity.  A zero baseline with a zero value is perfect balance (0.0);
    a zero baseline with a positive value is reported as infinity.
    """
    if baseline == 0:
        return 0.0 if value == 0 else float("inf")
    return value / baseline
