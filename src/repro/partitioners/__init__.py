"""Batching-phase partitioning techniques: Prompt plus all baselines."""

from .base import Partitioner, StreamingPartitioner
from .cam import CAMPartitioner
from .hashing import HashPartitioner
from .heavy_split import HeavyHitterSplitPartitioner
from .key_split import KeySplitPartitioner, PK2Partitioner, PK5Partitioner
from .prompt import PromptPartitioner
from .registry import PARTITIONER_NAMES, all_paper_techniques, make_partitioner
from .shuffle import ShufflePartitioner
from .time_based import TimeBasedPartitioner

__all__ = [
    "CAMPartitioner",
    "HashPartitioner",
    "HeavyHitterSplitPartitioner",
    "KeySplitPartitioner",
    "PARTITIONER_NAMES",
    "PK2Partitioner",
    "PK5Partitioner",
    "Partitioner",
    "PromptPartitioner",
    "ShufflePartitioner",
    "StreamingPartitioner",
    "TimeBasedPartitioner",
    "all_paper_techniques",
    "make_partitioner",
]
