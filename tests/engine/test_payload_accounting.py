"""Dispatch-byte accounting for the worker-resident run context.

The parallel backend broadcasts the run-invariant slice (query,
allocation callable, cost model, fault table, trace flag, run seed)
once per pool generation and ships per-task *deltas*.  These tests pin
the accounting contract around that design:

- delta payloads must not contain the context slice (growing the query
  grows legacy payloads, not deltas);
- the context is installed exactly once per pool generation — one
  install for a clean run, one more per resurrection;
- byte counters are deterministic: two same-seed runs report identical
  totals, batch by batch;
- a delta stamped with a generation the workers don't hold fails safe
  into the serial fallback with the answer unchanged;
- the metrics/trace plumbing (``prompt_task_payload_bytes``,
  ``prompt_context_install_total``, the ``payload`` trace-summary
  section) agrees with the executor's own counters.
"""

from __future__ import annotations

import pickle
import zlib

import pytest

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.executors import ParallelExecutor
from repro.engine.faults import TaskFaultInjector
from repro.engine.tasks import TaskCostModel, execute_batch_tasks
from repro.obs import ObservabilityConfig
from repro.obs.export import summarize_trace
from repro.partitioners import HashPartitioner
from repro.partitioners.registry import make_partitioner
from repro.queries.base import Query, SumAggregator
from repro.queries.wordcount import count_one
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source

INFO = BatchInfo(0, 0.0, 1.0)


class _TableMap:
    """Map function closing over a broadcast-style lookup table whose
    pickled size is controlled by ``entries`` — the knob these tests
    turn to see *where* the bytes land (context blob vs task payloads)."""

    def __init__(self, entries: int) -> None:
        self.weights = {
            i: zlib.crc32(repr(i).encode()) % 5 + 1 for i in range(entries)
        }

    def __call__(self, key, value):
        return self.weights.get(hash(key) % max(len(self.weights), 1), 1)


def _tuples(n=60, keys=6):
    return [
        StreamTuple(ts=i * 0.01, key=f"k{i % keys}", value=i) for i in range(n)
    ]


def _batch(info=INFO, p=3):
    part = HashPartitioner()
    return part.partition(_tuples(), p, info), part


def _query(map_fn=count_one, name="q"):
    return Query(name=name, aggregator=SumAggregator(), map_fn=map_fn)


def _engine_config(**kw):
    kw.setdefault("batch_interval", 1.0)
    kw.setdefault("num_blocks", 4)
    kw.setdefault("num_reducers", 4)
    kw.setdefault("executor", "parallel")
    kw.setdefault("executor_workers", 2)
    kw.setdefault("run_seed", 7)
    return EngineConfig(**kw)


def _run(config, *, num_batches=3, rate=600.0, seed=7, query=None):
    source = synd_source(
        1.2, num_keys=300, arrival=ConstantRate(rate), seed=seed
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"), query or _query(), config
    )
    return engine.run(source, num_batches)


# ----------------------------------------------------------------------
# deltas exclude the context slice
# ----------------------------------------------------------------------
def test_delta_payloads_exclude_the_context_slice():
    """Growing the query's broadcast table must grow the *context blob*
    (and legacy payloads), not the per-task deltas."""
    small_q = _query(map_fn=_TableMap(50), name="small")
    big_q = _query(map_fn=_TableMap(20_000), name="big")
    blob_growth = len(pickle.dumps(big_q)) - len(pickle.dumps(small_q))
    assert blob_growth > 50_000  # the knob actually moved

    def dispatch_bytes(query, resident):
        batch, part = _batch()
        with ParallelExecutor(2, resident_context=resident) as backend:
            backend.run_batch(batch, query, part, 2, TaskCostModel())
            assert backend.fallbacks == 0
            return backend.payload_bytes, backend.context_bytes

    small_delta, small_ctx = dispatch_bytes(small_q, True)
    big_delta, big_ctx = dispatch_bytes(big_q, True)
    small_legacy, _ = dispatch_bytes(small_q, False)
    big_legacy, _ = dispatch_bytes(big_q, False)

    # deltas are query-blind: the table shows up in the broadcast blob
    assert abs(big_delta - small_delta) < 2_048
    assert big_ctx - small_ctx > blob_growth // 2
    # legacy payloads re-ship the table with every map task
    assert big_legacy - small_legacy > blob_growth  # >= one copy per map task
    assert big_legacy > 3 * big_delta


def test_legacy_and_resident_dispatch_agree_byte_identically():
    batch, part = _batch()
    query = _query(map_fn=_TableMap(2_000))
    cm = TaskCostModel()
    with ParallelExecutor(2, resident_context=True) as resident:
        a = resident.run_batch(batch, query, part, 3, cm)
    with ParallelExecutor(2, resident_context=False) as legacy:
        b = legacy.run_batch(batch, query, part, 3, cm)
    assert pickle.dumps(a.batch_output()) == pickle.dumps(b.batch_output())
    assert a.map_durations == b.map_durations
    assert a.reduce_durations == b.reduce_durations
    assert resident.context_installs == 1 and resident.context_bytes > 0
    assert legacy.context_installs == 0 and legacy.context_bytes == 0
    assert 0 < a.payload_bytes < b.payload_bytes


# ----------------------------------------------------------------------
# install cadence: once per pool generation
# ----------------------------------------------------------------------
def test_context_installs_once_across_batches():
    part = HashPartitioner()
    query = _query()
    cm = TaskCostModel()
    per_batch = []
    with ParallelExecutor(2) as backend:
        for k in range(3):
            info = BatchInfo(k, float(k), float(k + 1))
            batch = part.partition(_tuples(), 3, info)
            execution = backend.run_batch(batch, query, part, 2, cm)
            per_batch.append(execution.context_installs)
        assert backend.context_installs == 1
    # attribution: the first batch paid for the broadcast, later ones rode it
    assert per_batch == [1, 0, 0]


def test_resurrection_reinstalls_exactly_once():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().poison(0, "map", 1)
    with ParallelExecutor(2, fault_injector=injector) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert execution.backend == "parallel"
    assert execution.pool_resurrections == 1
    # one install for the original pool + exactly one for the rebuilt pool
    assert backend.context_installs == 2
    assert execution.context_installs == 2
    assert backend.context_bytes == 2 * (backend.context_bytes // 2)
    reference = execute_batch_tasks(batch, query, part, 2, TaskCostModel())
    assert pickle.dumps(execution.batch_output()) == pickle.dumps(
        reference.batch_output()
    )


# ----------------------------------------------------------------------
# stale generations fail safe
# ----------------------------------------------------------------------
def test_stale_generation_falls_back_to_serial():
    part = HashPartitioner()
    query = _query()
    cm = TaskCostModel()
    with ParallelExecutor(2) as backend:
        batch = part.partition(_tuples(), 3, INFO)
        first = backend.run_batch(batch, query, part, 2, cm)
        assert first.backend == "parallel"
        # Simulate a driver/worker generation skew: the driver stamps
        # deltas with a generation the resident workers never installed.
        backend._generation += 1
        batch2 = part.partition(_tuples(), 3, BatchInfo(1, 1.0, 2.0))
        second = backend.run_batch(batch2, query, part, 2, cm)
        assert second.backend == "serial"
        assert backend.fallbacks == 1
        assert "StaleContext" in backend.last_fallback_reason
        reference = execute_batch_tasks(batch2, query, part, 2, cm)
        assert second.batch_output() == reference.batch_output()


# ----------------------------------------------------------------------
# determinism of the counters themselves
# ----------------------------------------------------------------------
def test_same_seed_runs_report_identical_byte_counters():
    results = [_run(_engine_config()) for _ in range(2)]
    a, b = results
    assert a.executor_payload_bytes == b.executor_payload_bytes > 0
    assert a.executor_context_installs == b.executor_context_installs == 1
    assert a.executor_context_bytes == b.executor_context_bytes > 0
    assert [r.payload_bytes for r in a.stats.records] == [
        r.payload_bytes for r in b.stats.records
    ]
    assert [r.context_installs for r in a.stats.records] == [
        r.context_installs for r in b.stats.records
    ]
    assert a.stats.total_payload_bytes() == a.executor_payload_bytes
    assert a.stats.total_context_bytes() == a.executor_context_bytes


def test_engine_runs_agree_across_dispatch_modes():
    resident = _run(_engine_config(resident_context=True))
    legacy = _run(_engine_config(resident_context=False))
    # dispatch fields are compare=False: records must still be equal
    assert resident.stats.records == legacy.stats.records
    assert pickle.dumps(resident.final_window_answer()) == pickle.dumps(
        legacy.final_window_answer()
    )
    assert legacy.executor_context_installs == 0
    assert legacy.executor_payload_bytes > resident.executor_payload_bytes > 0


# ----------------------------------------------------------------------
# metrics and trace plumbing
# ----------------------------------------------------------------------
def test_payload_metrics_and_trace_section_match_the_counters(tmp_path):
    trace_path = tmp_path / "run.trace.json"
    config = _engine_config(
        observability=ObservabilityConfig(trace_path=str(trace_path))
    )
    result = _run(config)
    snapshot = result.observability.metrics.as_dict()

    histogram = snapshot["prompt_task_payload_bytes"]
    assert histogram["count"] == result.stats.total_task_attempts()
    assert histogram["sum"] == result.executor_payload_bytes
    assert snapshot["prompt_context_install_total"] == 1
    assert result.executor_context_installs == 1

    payload = summarize_trace(trace_path)["payload"]
    # clean run: every attempt won, so stitched spans cover all bytes
    assert payload["task_payload_bytes"] == result.executor_payload_bytes
    assert payload["tasks_with_payload"] == result.stats.total_task_attempts()
    assert payload["context_installs"] == 1
    assert payload["context_bytes"] == result.executor_context_bytes
    assert payload["mean_bytes_per_task"] == pytest.approx(
        result.executor_payload_bytes / result.stats.total_task_attempts()
    )


def test_serial_backend_reports_zero_dispatch_bytes():
    result = _run(_engine_config(executor="serial"))
    assert result.executor_payload_bytes == 0
    assert result.executor_context_installs == 0
    assert all(r.payload_bytes == 0 for r in result.stats.records)
