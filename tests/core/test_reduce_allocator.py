"""Algorithm 3: split-key hashing, WorstFit with retirement, capacities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import hash_to_bucket
from repro.core.reduce_allocator import (
    BucketAssignment,
    KeyCluster,
    ReduceBucketAllocator,
    hash_allocate,
)


def _clusters(sizes: dict) -> list[KeyCluster]:
    return [KeyCluster(key=k, size=s) for k, s in sizes.items()]


def test_cluster_rejects_negative_size():
    with pytest.raises(ValueError):
        KeyCluster(key="a", size=-1)


def test_allocator_rejects_zero_buckets():
    with pytest.raises(ValueError):
        ReduceBucketAllocator(0)


def test_empty_allocation():
    out = ReduceBucketAllocator(4).allocate([])
    assert out.assignment == {}
    assert out.bucket_loads == [0, 0, 0, 0]
    assert out.max_load == 0
    assert out.imbalance == 0.0


def test_every_cluster_assigned_exactly_once():
    clusters = _clusters({f"k{i}": i + 1 for i in range(20)})
    out = ReduceBucketAllocator(4).allocate(clusters)
    assert set(out.assignment) == {c.key for c in clusters}
    assert sum(out.bucket_loads) == sum(c.size for c in clusters)


def test_split_keys_use_hashing():
    """Split keys must land where hash_to_bucket puts them — in every task."""
    clusters = _clusters({"hot": 50, "a": 3, "b": 2})
    out = ReduceBucketAllocator(8).allocate(clusters, split_keys={"hot"})
    assert out.assignment["hot"] == hash_to_bucket("hot", 8)


def test_split_key_routing_agrees_across_map_tasks():
    """Two Map tasks holding fragments of one split key converge."""
    task_a = ReduceBucketAllocator(8).allocate(
        _clusters({"hot": 30, "x": 1}), split_keys={"hot"}
    )
    task_b = ReduceBucketAllocator(8).allocate(
        _clusters({"hot": 25, "y": 2}), split_keys={"hot"}
    )
    assert task_a.assignment["hot"] == task_b.assignment["hot"]


def test_worstfit_balances_unequal_clusters():
    clusters = _clusters({f"k{i}": size for i, size in enumerate([40, 30, 20, 10, 5, 5])})
    out = ReduceBucketAllocator(2).allocate(clusters)
    # total 110 -> perfect split 55; WorstFit-decreasing gets close
    assert out.imbalance <= 10


def test_retirement_balances_cluster_counts():
    """Equal-size clusters spread one-per-bucket before any bucket repeats."""
    clusters = _clusters({f"k{i}": 1 for i in range(8)})
    out = ReduceBucketAllocator(4).allocate(clusters)
    counts = [0] * 4
    for bucket in out.assignment.values():
        counts[bucket] += 1
    assert counts == [2, 2, 2, 2]


def test_hot_split_bucket_is_protected():
    """A bucket eroded past its share by a hashed hot key receives no
    non-split clusters while others have room (the B-BPVC capacity)."""
    r = 4
    hot_bucket = hash_to_bucket("hot", r)
    clusters = _clusters({"hot": 100}) + _clusters({f"k{i}": 5 for i in range(12)})
    out = ReduceBucketAllocator(r).allocate(clusters, split_keys={"hot"})
    non_split_in_hot = [
        k for k, b in out.assignment.items() if b == hot_bucket and k != "hot"
    ]
    assert non_split_in_hot == []


def test_overflow_fallback_when_everything_is_full():
    """If split keys erode every bucket past its share, clusters still land."""
    r = 2
    # both buckets get huge split keys
    split = {}
    sizes = {}
    for i in range(8):
        key = f"hot{i}"
        sizes[key] = 100
        split[key] = None
    sizes["small"] = 1
    out = ReduceBucketAllocator(r).allocate(_clusters(sizes), split_keys=set(split))
    assert "small" in out.assignment


def test_zero_size_clusters_round_robin_for_cardinality_balance():
    """Regression: zero-size clusters carry no load signal, so WorstFit
    used to dump them all on one bucket once capacities were exhausted —
    worst-case *cardinality* imbalance for keys that still cost a reducer
    slot each.  They now round-robin: BCI (bucket cardinality imbalance,
    the second metric Algorithm 3 balances) stays zero."""
    r = 4
    out = ReduceBucketAllocator(r).allocate(_clusters({f"z{i}": 0 for i in range(8)}))
    counts = [0] * r
    for bucket in out.assignment.values():
        counts[bucket] += 1
    mean = sum(counts) / r
    assert max(counts) - mean == 0  # BCI == 0: perfectly even counts
    assert counts == [2, 2, 2, 2]
    assert out.bucket_loads == [0, 0, 0, 0]


def test_zero_size_clusters_mixed_with_sized_ones():
    r = 3
    sizes = {f"k{i}": 6 for i in range(3)}
    sizes.update({f"z{i}": 0 for i in range(6)})
    out = ReduceBucketAllocator(r).allocate(_clusters(sizes))
    assert set(out.assignment) == set(sizes)
    assert sum(out.bucket_loads) == 18
    counts = [0] * r
    for bucket in out.assignment.values():
        counts[bucket] += 1
    # 1 sized + 2 zero-size clusters per bucket: BCI == 0
    assert max(counts) - sum(counts) / r == 0


def test_zero_size_round_robin_is_deterministic():
    sizes = {f"z{i}": 0 for i in range(7)}
    sizes["big"] = 10
    a = ReduceBucketAllocator(3).allocate(_clusters(sizes))
    b = ReduceBucketAllocator(3).allocate(_clusters(sizes))
    assert a.assignment == b.assignment


def test_hash_allocate_matches_hash_function():
    clusters = _clusters({"a": 5, "b": 3})
    out = hash_allocate(clusters, 4)
    for c in clusters:
        assert out.assignment[c.key] == hash_to_bucket(c.key, 4)
    assert sum(out.bucket_loads) == 8


def test_deterministic_across_runs():
    clusters = _clusters({f"k{i}": (i * 13) % 7 + 1 for i in range(30)})
    a = ReduceBucketAllocator(5).allocate(clusters, split_keys={"k3", "k7"})
    b = ReduceBucketAllocator(5).allocate(clusters, split_keys={"k3", "k7"})
    assert a.assignment == b.assignment


def test_bucket_assignment_properties():
    out = BucketAssignment(num_buckets=3, bucket_loads=[5, 10, 3])
    assert out.load_of(1) == 10
    assert out.max_load == 10
    assert out.imbalance == pytest.approx(10 - 6)


@given(
    sizes=st.lists(st.integers(1, 50), min_size=1, max_size=60),
    num_buckets=st.integers(1, 8),
    split_count=st.integers(0, 10),
)
@settings(max_examples=80, deadline=None)
def test_property_allocation_is_total_and_conserving(sizes, num_buckets, split_count):
    clusters = [KeyCluster(key=f"k{i}", size=s) for i, s in enumerate(sizes)]
    split = {f"k{i}" for i in range(min(split_count, len(sizes)))}
    out = ReduceBucketAllocator(num_buckets).allocate(clusters, split_keys=split)
    assert set(out.assignment) == {c.key for c in clusters}
    assert all(0 <= b < num_buckets for b in out.assignment.values())
    assert sum(out.bucket_loads) == sum(sizes)


@given(
    sizes=st.lists(st.integers(1, 10), min_size=4, max_size=80),
    num_buckets=st.integers(2, 8),
)
@settings(max_examples=60, deadline=None)
def test_property_never_loses_to_hashing_by_more_than_one_cluster(sizes, num_buckets):
    """Algorithm 3 vs plain hashing, no split keys.

    The retirement rule deliberately trades a little size balance for
    cluster-count balance ("promoting a balanced number of key clusters
    per Reduce bucket", Section 5): a bucket can be forced to take one
    cluster per cycle even when a peer has more room.  That trade is
    bounded by a single cluster — WorstFit-with-retirement behaves like
    LPT over cycles — whereas hashing's imbalance is unbounded.
    """
    clusters = [KeyCluster(key=f"k{i}", size=s) for i, s in enumerate(sizes)]
    ours = ReduceBucketAllocator(num_buckets).allocate(clusters)
    hashed = hash_allocate(clusters, num_buckets)
    assert ours.imbalance <= hashed.imbalance + max(sizes) + 1e-9
    # and in absolute terms the LPT-like bound holds
    assert ours.imbalance <= max(sizes) + 1e-9


def test_known_retirement_tradeoff_example():
    """The concrete case where retirement loses a little size balance:
    sizes [5,2,2,2,2,2] on 2 buckets -> loads [9, 6] (imbalance 1.5)
    while unrestricted WorstFit would reach [7, 8]."""
    clusters = [KeyCluster(key=f"k{i}", size=s) for i, s in enumerate([5, 2, 2, 2, 2, 2])]
    out = ReduceBucketAllocator(2).allocate(clusters)
    assert sorted(out.bucket_loads) == [6, 9]
    counts = [0, 0]
    for b in out.assignment.values():
        counts[b] += 1
    assert counts == [3, 3]  # ...but cluster counts are perfectly even
