"""Dataset generators: schemas, skew, determinism, Table 1 metadata."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads import (
    ConstantRate,
    ElasticWorkloadSource,
    RampRate,
    ZipfKeyedSource,
    debs_taxi_source,
    gcm_source,
    synd_source,
    tpch_lineitem_source,
    tweets_source,
)

ALL_SOURCES = [
    ("tweets", lambda: tweets_source(rate=2000.0, seed=1)),
    ("synd", lambda: synd_source(1.0, rate=2000.0, seed=1)),
    ("debs", lambda: debs_taxi_source(rate=2000.0, seed=1)),
    ("gcm", lambda: gcm_source(rate=2000.0, seed=1)),
    ("tpch", lambda: tpch_lineitem_source(rate=2000.0, seed=1)),
]


@pytest.mark.parametrize("name,factory", ALL_SOURCES)
def test_sources_emit_sorted_in_interval(name, factory):
    source = factory()
    tuples = source.tuples_between(1.0, 2.0)
    assert len(tuples) == 2000
    assert all(1.0 <= t.ts < 2.0 for t in tuples)
    ts = [t.ts for t in tuples]
    assert ts == sorted(ts)


@pytest.mark.parametrize("name,factory", ALL_SOURCES)
def test_sources_are_deterministic_and_resettable(name, factory):
    source = factory()
    first = source.tuples_between(0.0, 0.5)
    source.reset()
    replay = source.tuples_between(0.0, 0.5)
    assert [t.key for t in first] == [t.key for t in replay]
    assert [t.value for t in first] == [t.value for t in replay]


@pytest.mark.parametrize("name,factory", ALL_SOURCES)
def test_sources_expose_table1_properties(name, factory):
    props = factory().properties()
    assert props is not None
    assert props.paper_size.endswith("GB")
    assert props.scaled_cardinality > 0


def test_tweets_keys_are_words_with_skew():
    source = tweets_source(rate=5000.0, vocabulary=5000, seed=2)
    tuples = source.tuples_between(0.0, 2.0)
    counts = Counter(t.key for t in tuples)
    top_key, top_count = counts.most_common(1)[0]
    assert top_key.startswith("w")
    assert top_count / len(tuples) > 0.02  # head word is hot


def test_synd_skew_follows_exponent():
    def top_share(z):
        tuples = synd_source(z, num_keys=2000, rate=5000.0, seed=3).tuples_between(0.0, 2.0)
        counts = Counter(t.key for t in tuples)
        return counts.most_common(1)[0][1] / len(tuples)

    assert top_share(0.2) < top_share(1.0) < top_share(1.8)


def test_debs_values_are_fare_distance_pairs():
    source = debs_taxi_source(rate=1000.0, seed=4)
    for t in source.tuples_between(0.0, 0.1):
        fare, distance = t.value
        assert fare >= 2.50  # base fare
        assert distance >= 0.0
        assert isinstance(t.key, int)


def test_gcm_values_are_bounded_resources():
    source = gcm_source(rate=1000.0, seed=5)
    for t in source.tuples_between(0.0, 0.1):
        cpu, mem = t.value
        assert 0.0 < cpu <= 1.0
        assert 0.0 < mem <= 1.0


def test_tpch_values_follow_q1_q6_schema():
    source = tpch_lineitem_source(rate=1000.0, seed=6)
    for t in source.tuples_between(0.0, 0.1):
        quantity, price, discount = t.value
        assert 1 <= quantity <= 50
        assert price > 0
        assert 0.0 <= discount <= 0.10


def test_tpch_is_near_uniform():
    tuples = tpch_lineitem_source(num_parts=500, rate=5000.0, seed=7).tuples_between(0.0, 2.0)
    counts = Counter(t.key for t in tuples)
    assert counts.most_common(1)[0][1] / len(tuples) < 0.02


def test_value_sampler_length_mismatch_detected():
    source = ZipfKeyedSource(
        "broken",
        ConstantRate(100.0),
        num_keys=10,
        exponent=1.0,
        value_sampler=lambda rng, count: [1] * (count - 1),
    )
    with pytest.raises(AssertionError, match="value sampler"):
        source.tuples_between(0.0, 1.0)


def test_elastic_source_ramps_keys():
    source = ElasticWorkloadSource(
        RampRate(1000, 1000, 0.0, 10.0),
        keys_start=10,
        keys_end=1000,
        t0=0.0,
        t1=10.0,
        seed=8,
    )
    early = source.tuples_between(0.0, 1.0)
    late = source.tuples_between(9.0, 10.0)
    assert len({t.key for t in early}) < len({t.key for t in late})
    assert source.active_keys(-1.0) == 10
    assert source.active_keys(20.0) == 1000


def test_elastic_source_validation():
    with pytest.raises(ValueError):
        ElasticWorkloadSource(ConstantRate(1.0), keys_start=0)
    with pytest.raises(ValueError):
        ElasticWorkloadSource(ConstantRate(1.0), t0=5.0, t1=5.0)


def test_empty_interval_returns_nothing():
    source = synd_source(1.0, rate=1000.0)
    assert source.tuples_between(1.0, 1.0) == []
