"""Seeded fuzz of CountTree invariants and Algorithm 1's update budget.

Two layers of randomized checking:

1. **Tree-level** — random insert/update/remove/clear sequences against
   ``CountTree.check_invariants()`` (AVL balance, exact heights, parent
   links, BST order on ``(count, token)``, size bookkeeping) plus an
   independent sortedness oracle over ``in_order()``.

2. **Accumulator-level** — random tuple streams through
   :class:`MicroBatchAccumulator` under varying ``budget`` settings
   (which drive both ``f.step`` and ``t.step``), asserting the budget
   mechanism's contract after *every* accepted tuple:

   - ``budget_left`` never goes negative;
   - while a key still has budget, its tracked count never drifts by
     ``f.step`` or more (a drift of ``f.step`` must have triggered an
     update and reset to zero);
   - total tree repositionings stay within ``budget * K``;
   - ``finalize()`` returns every key exactly once with its exact tuple
     chain, ordered by non-increasing tracked count.

Each sequence is driven by ``random.Random(seed)`` with the seed in the
test id, so failures replay deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchInfo
from repro.core.buffering import MicroBatchAccumulator
from repro.core.config import AccumulatorConfig
from repro.core.count_tree import CountTree
from repro.core.tuples import StreamTuple, _order_token


def _assert_sorted(tree: CountTree, live: dict) -> None:
    """Oracle: traversal equals an independent sort of the live handles."""
    tree.check_invariants()
    walked = [(n.count, _order_token(n.key)) for n in tree.in_order()]
    assert walked == sorted(walked)
    expected = sorted((count, _order_token(key)) for key, count in live.items())
    assert walked == expected
    assert len(tree) == len(live)
    assert list(tree.in_order_desc()) == list(tree.in_order())[::-1]
    if live:
        assert tree.min_node().sort_key() == walked[0]
        assert tree.max_node().sort_key() == walked[-1]
    else:
        assert tree.min_node() is None and tree.max_node() is None


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_count_tree_random_op_sequences(seed):
    rng = random.Random(seed)
    tree = CountTree()
    nodes: dict[str, object] = {}  # key -> CountNode handle
    counts: dict[str, int] = {}  # independent model of live contents
    next_key = 0
    for step in range(400):
        op = rng.random()
        if op < 0.45 or not nodes:
            key = f"k{next_key}"
            next_key += 1
            count = rng.randint(1, 50)
            nodes[key] = tree.insert(key, count)
            counts[key] = count
        elif op < 0.80:
            key = rng.choice(list(nodes))
            # includes new_count == old count: update must be a no-op
            new_count = rng.randint(1, 50)
            tree.update(nodes[key], new_count)
            counts[key] = new_count
        elif op < 0.98:
            key = rng.choice(list(nodes))
            tree.remove(nodes.pop(key))
            del counts[key]
        else:
            tree.clear()
            nodes.clear()
            counts.clear()
        if step % 7 == 0:  # full O(n) oracle periodically, not every op
            _assert_sorted(tree, counts)
    _assert_sorted(tree, counts)


@pytest.mark.parametrize("seed", [3, 11])
def test_count_tree_duplicate_counts_and_churn(seed):
    """Many equal counts stress the (count, token) tie-break ordering."""
    rng = random.Random(seed)
    tree = CountTree()
    nodes = {}
    counts = {}
    for i in range(120):
        key = f"dup{i}"
        count = rng.randint(1, 4)  # heavy duplication
        nodes[key] = tree.insert(key, count)
        counts[key] = count
    _assert_sorted(tree, counts)
    # churn every node through an update, then drain in random order
    for key in list(nodes):
        counts[key] = rng.randint(1, 4)
        tree.update(nodes[key], counts[key])
    _assert_sorted(tree, counts)
    order = list(nodes)
    rng.shuffle(order)
    for i, key in enumerate(order):
        tree.remove(nodes.pop(key))
        del counts[key]
        if i % 10 == 0:
            _assert_sorted(tree, counts)
    _assert_sorted(tree, counts)


def test_count_tree_rejects_negative_update():
    tree = CountTree()
    node = tree.insert("k", 5)
    with pytest.raises(ValueError):
        tree.update(node, -1)
    tree.check_invariants()


# ----------------------------------------------------------------------
# accumulator budget mechanism under random streams
# ----------------------------------------------------------------------
def _random_stream(rng: random.Random, *, num_keys: int, n: int, t_end: float):
    """Zipf-ish random stream with strictly increasing timestamps."""
    weights = [1.0 / (i + 1) for i in range(num_keys)]
    keys = [f"k{i}" for i in range(num_keys)]
    ts = sorted(rng.uniform(0.0, t_end * 0.999) for _ in range(n))
    return [
        StreamTuple(ts=ts[i], key=rng.choices(keys, weights)[0], value=i)
        for i in range(n)
    ]


def _check_budget_contract(acc: MicroBatchAccumulator) -> None:
    for record in acc.htable:
        assert record.budget_left >= 0, record.key
        if record.budget_left > 0:
            # a pending delta of f.step would have fired an update
            assert record.pending_delta < record.f_step, record.key
        assert record.f_step >= 1
        assert record.t_step >= 0.0


@pytest.mark.parametrize("budget", [1, 2, 4, 8])
@pytest.mark.parametrize("seed", [0, 5])
def test_accumulator_budget_invariants(budget, seed):
    rng = random.Random(seed)
    config = AccumulatorConfig(
        budget=budget, expected_tuples=600, expected_keys=20
    )
    acc = MicroBatchAccumulator(config)
    info = BatchInfo(index=0, t_start=0.0, t_end=1.0)
    acc.start_interval(info)
    stream = _random_stream(rng, num_keys=20, n=600, t_end=1.0)
    exact: dict[str, list[StreamTuple]] = {}
    for i, t in enumerate(stream):
        acc.accept(t)
        exact.setdefault(t.key, []).append(t)
        _check_budget_contract(acc)
        if i % 50 == 0:
            acc.count_tree.check_invariants()
    assert acc.tree_updates <= budget * len(exact)
    batch = acc.finalize()
    # every key exactly once, with its exact tuple chain
    assert {g.key for g in batch.key_groups} == set(exact)
    for group in batch.key_groups:
        assert group.tuples == exact[group.key]
        assert group.tracked_count <= len(group.tuples)
    # quasi-sorted: the traversal order is non-increasing tracked_count
    tracked = [g.tracked_count for g in batch.key_groups]
    assert tracked == sorted(tracked, reverse=True)
    assert batch.tuple_count == len(stream)
    assert batch.tree_updates == acc._tree_updates or batch.tree_updates >= 0


@pytest.mark.parametrize("seed", [2, 9])
def test_accumulator_exact_updates_disable_budget(seed):
    """The ablation path: every tuple updates the tree, order is exact."""
    rng = random.Random(seed)
    acc = MicroBatchAccumulator(
        AccumulatorConfig(budget=1, expected_tuples=300, expected_keys=15),
        exact_updates=True,
    )
    acc.start_interval(BatchInfo(index=0, t_start=0.0, t_end=1.0))
    stream = _random_stream(rng, num_keys=15, n=300, t_end=1.0)
    for t in stream:
        acc.accept(t)
    acc.count_tree.check_invariants()
    distinct = acc.key_count
    # one repositioning per non-first tuple of each key
    assert acc.tree_updates == len(stream) - distinct
    batch = acc.finalize()
    assert batch.sort_quality() == 1.0
    for group in batch.key_groups:
        assert group.tracked_count == len(group.tuples)


@pytest.mark.parametrize("budget", [2, 5])
def test_accumulator_time_step_refreshes_rare_keys(budget):
    """Sparse streams hit the t.step heartbeat, not the f.step trigger.

    ``budget >= 2`` so the first heartbeat (``t.step = interval /
    budget``) lands inside the interval; with ``budget = 1`` it falls
    exactly on the interval end and legitimately never fires.
    """
    config = AccumulatorConfig(
        budget=budget, expected_tuples=10_000, expected_keys=2
    )
    acc = MicroBatchAccumulator(config)
    acc.start_interval(BatchInfo(index=0, t_start=0.0, t_end=1.0))
    # initial f.step = 10_000 / (2 * budget) >> 12, so only time triggers
    for i in range(12):
        acc.accept(StreamTuple(ts=i * 0.08, key="rare", value=i))
        _check_budget_contract(acc)
    record = acc.htable.get("rare")
    assert record.f_step > 12  # frequency trigger provably never fired
    # the heartbeat still spent budget repositioning the key
    assert acc.tree_updates >= 1
    assert acc.tree_updates <= budget
    assert record.budget_left == budget - acc.tree_updates
    batch = acc.finalize()
    assert batch.key_groups[0].tracked_count >= 2  # refreshed past insert


@pytest.mark.parametrize("seed", [4, 13, 77])
def test_accumulator_multi_interval_fuzz(seed):
    """Back-to-back intervals: state resets, history adapts f.step."""
    rng = random.Random(seed)
    acc = MicroBatchAccumulator(
        AccumulatorConfig(budget=4, expected_tuples=200, expected_keys=10)
    )
    for index in range(4):
        t0 = float(index)
        acc.start_interval(BatchInfo(index=index, t_start=t0, t_end=t0 + 1.0))
        n = rng.randint(50, 250)
        stream = [
            StreamTuple(
                ts=t0 + (i + 1) / (n + 1),
                key=f"k{rng.randint(0, 9)}",
                value=i,
            )
            for i in range(n)
        ]
        for t in stream:
            acc.accept(t)
            _check_budget_contract(acc)
        acc.count_tree.check_invariants()
        assert acc.tree_updates <= 4 * acc.key_count
        batch = acc.finalize()
        assert batch.tuple_count == n
        assert len(acc.htable) == 0 and len(acc.count_tree) == 0
        tracked = [g.tracked_count for g in batch.key_groups]
        assert tracked == sorted(tracked, reverse=True)
