"""Noise-band regression tracking over the results store."""

from __future__ import annotations

import pytest

from repro.bench.matrix import TINY_GRID, fill
from repro.bench.regress import (
    find_regressions,
    metric_direction,
    noise_band,
    regression_rows,
)
from repro.bench.store import ResultsStore, environment_hash

ENV = {"cpu_count": 4, "python": "3.11", "numpy": False}
EHASH = environment_hash(ENV)


# ----------------------------------------------------------------------
# the band itself
def test_noise_band_centres_on_median():
    band = noise_band([1.0, 1.1, 0.9, 1.0])
    assert band.median == pytest.approx(1.0, abs=0.06)
    assert band.lo < band.median < band.hi
    assert band.samples == 4


def test_noise_band_rel_floor_covers_deterministic_history():
    # identical history -> IQR 0; the 5% relative floor still leaves room
    band = noise_band([2.0, 2.0, 2.0])
    assert band.iqr == 0.0
    assert band.contains(2.05)
    assert not band.contains(2.2)


def test_noise_band_outlier_resistant():
    # one historical spike must not blow the band open (IQR, not range)
    calm = noise_band([1.0, 1.02, 0.98, 1.01])
    spiky = noise_band([1.0, 1.02, 0.98, 10.0])
    assert spiky.hi < 10.0
    assert calm.hi < spiky.hi * 2 or spiky.hi < 5.0


def test_noise_band_empty_raises():
    with pytest.raises(ValueError):
        noise_band([])


# ----------------------------------------------------------------------
# polarity heuristics
def test_metric_direction_polarities():
    assert metric_direction("latency_p95_seconds") == -1
    assert metric_direction("LatencyP95") == -1
    assert metric_direction("MaxQueueDelay") == -1
    assert metric_direction("throughput_tuples_per_sec") == +1
    assert metric_direction("Speedup") == +1
    assert metric_direction("stable") == +1
    assert metric_direction("SomethingOdd") == 0


# ----------------------------------------------------------------------
# find_regressions over a store
def _seed_history(store, values, metric="latency_mean_seconds"):
    """One fill per historical SHA with the given metric values."""
    for i, value in enumerate(values):
        fill(
            store, TINY_GRID, git_sha=f"hist-{i}", env=ENV,
            runner=lambda c, g, v=value: ({metric: v}, {}),
        )


def test_injected_slowdown_is_flagged(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.02, 0.98, 1.01])
        # the "current PR" is 2x slower: far outside the band
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 2.0}, {}))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert len(findings) == 1
        f = findings[0]
        assert f.verdict == "regressed"
        assert f.is_regression
        assert f.value == 2.0
        assert not f.band.contains(2.0)
        rows = regression_rows(findings)
        assert rows[0]["Verdict"] == "regressed"


def test_unchanged_rerun_stays_green(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.02, 0.98, 1.01])
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 1.0}, {}))
        assert find_regressions(store, git_sha="head", env_hash=EHASH) == []


def test_improvement_is_not_a_regression(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.02, 0.98, 1.01])
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 0.3}, {}))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert [f.verdict for f in findings] == ["improved"]


def test_higher_is_better_polarity_flips_verdict(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        metric = "throughput_tuples_per_sec"
        _seed_history(store, [100.0, 101.0, 99.0, 100.0], metric=metric)
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({metric: 40.0}, {}))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert [f.verdict for f in findings] == ["regressed"]


def test_unknown_polarity_departure_drifts_not_gates(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        metric = "SomethingOdd"
        _seed_history(store, [1.0, 1.0, 1.0, 1.0], metric=metric)
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({metric: 5.0}, {}))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert [f.verdict for f in findings] == ["drifted"]
        assert not any(f.is_regression for f in findings)


def test_min_history_skips_young_trajectories(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.0])  # only 2 prior points
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 99.0}, {}))
        assert find_regressions(
            store, git_sha="head", env_hash=EHASH, min_history=3
        ) == []
        # ...but lowering the bar surfaces it
        assert find_regressions(
            store, git_sha="head", env_hash=EHASH, min_history=2
        )


def test_other_environments_do_not_pollute_history(tmp_path):
    other = {"cpu_count": 64, "python": "3.12", "numpy": True}
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.0, 1.0, 1.0])
        # a much slower machine's history would widen the band — it must
        # be ignored when judging ENV's trajectory
        for i in range(4):
            fill(store, TINY_GRID, git_sha=f"other-{i}", env=other,
                 runner=lambda c, g: ({"latency_mean_seconds": 30.0}, {}))
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 2.0}, {}))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert [f.verdict for f in findings] == ["regressed"]


def test_include_ok_reports_every_judged_trajectory(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        _seed_history(store, [1.0, 1.0, 1.0, 1.0])
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: ({"latency_mean_seconds": 1.0}, {}))
        findings = find_regressions(
            store, git_sha="head", env_hash=EHASH, include_ok=True
        )
        assert [f.verdict for f in findings] == ["ok"]


def test_regressions_sort_first(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        for i in range(4):
            fill(store, TINY_GRID, git_sha=f"hist-{i}", env=ENV,
                 runner=lambda c, g: (
                     {"latency_mean_seconds": 1.0, "SomethingOdd": 1.0}, {}
                 ))
        fill(store, TINY_GRID, git_sha="head", env=ENV,
             runner=lambda c, g: (
                 {"latency_mean_seconds": 9.0, "SomethingOdd": 9.0}, {}
             ))
        findings = find_regressions(store, git_sha="head", env_hash=EHASH)
        assert [f.verdict for f in findings] == ["regressed", "drifted"]
