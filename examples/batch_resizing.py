#!/usr/bin/env python3
"""Batch resizing vs Prompt's elasticity: the Section 1 argument, live.

The same overload — a workload whose fixed per-stage costs make a 1 s
interval unsustainable — handled three ways:

1. a fixed interval (the system falls behind: the queue grows),
2. the Das et al. batch-interval controller (stable, but results are
   delivered seconds later: latency IS the interval), and
3. Prompt's Algorithm 4 elasticity (stable at the original interval by
   spending parallelism instead of latency).

Run:  python examples/batch_resizing.py
"""

from __future__ import annotations

from repro import ElasticityConfig, EngineConfig, MicroBatchEngine, make_partitioner
from repro.engine import ClusterConfig, TaskCostModel
from repro.extensions import BatchSizingConfig
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source

RATE = 3_000.0
COST = TaskCostModel(map_fixed=0.2, reduce_fixed=0.2, map_per_tuple=9.3e-4)


def run(label, *, batch_sizing=None, elasticity=None, cores=8):
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        cluster=ClusterConfig(num_nodes=cores // 4, cores_per_node=4),
        cost_model=COST,
        batch_sizing=batch_sizing,
        elasticity=elasticity,
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    source = synd_source(0.8, num_keys=500, arrival=ConstantRate(RATE), seed=3)
    result = engine.run(source, 24)
    tail = result.stats.records[-6:]
    print(f"\n=== {label} ===")
    print(f"final interval:   {tail[-1].batch_interval:.2f}s")
    print(f"final tasks:      {tail[-1].map_tasks} map + {tail[-1].reduce_tasks} reduce")
    print(f"tail load W:      {sum(r.load for r in tail) / len(tail):.2f}")
    print(f"tail latency:     {sum(r.latency for r in tail) / len(tail):.2f}s")
    print(f"max queue delay:  {result.stats.max_queue_delay():.2f}s")


def main() -> None:
    run("fixed 1s interval (unstable)")
    run(
        "adaptive batch sizing (Das et al.)",
        batch_sizing=BatchSizingConfig(
            target_ratio=0.8, min_interval=0.5, max_interval=8.0
        ),
    )
    run(
        "Prompt elasticity (Algorithm 4)",
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=2, grace=1,
            max_map_tasks=16, max_reduce_tasks=16,
        ),
        cores=32,
    )
    print(
        "\nBoth adaptive strategies restore stability; resizing pays with"
        "\nlatency (results arrive once per long interval), elasticity pays"
        "\nwith resources — the trade-off Prompt's paper argues (Section 1)."
    )


if __name__ == "__main__":
    main()
