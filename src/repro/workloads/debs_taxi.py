"""DEBS 2015 Grand Challenge: New York taxi-trip stream.

Table 1: 32 GB, 8M distinct keys (taxi medallion x shift combinations).
"Data are reported at the end of each trip, i.e., upon arriving in the
order of the drop-off timestamps" — our arrival timestamps model the
drop-off times directly.  Trip values are ``(fare, distance)`` pairs:
distance exponentially distributed around a 2.5-mile mean, fare a base
charge plus a per-mile component (the standard NYC structure), both
rounded to cents.  Taxi activity is mildly skewed (busy cabs complete
more trips): Zipf with exponent 0.8.
"""

from __future__ import annotations

import numpy as np

from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, ZipfKeyedSource

__all__ = ["debs_taxi_source"]

_BASE_FARE = 2.50
_PER_MILE = 2.50
_MEAN_DISTANCE_MILES = 2.5


def _trip_values(rng: np.random.Generator, count: int) -> list[tuple[float, float]]:
    distances = rng.exponential(_MEAN_DISTANCE_MILES, size=count)
    fares = _BASE_FARE + _PER_MILE * distances
    return [
        (round(float(f), 2), round(float(d), 2))
        for f, d in zip(fares, distances)
    ]


def debs_taxi_source(
    *,
    num_taxis: int = 10_000,
    arrival: ArrivalProcess | None = None,
    rate: float = 10_000.0,
    activity_skew: float = 0.8,
    seed: int = 0,
) -> ZipfKeyedSource:
    """Build the synthetic taxi-trip stream (key = medallion id)."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="DEBS",
        paper_size="32GB",
        paper_cardinality="8M",
        scaled_cardinality=num_taxis,
        description="Taxi trips in drop-off order; value = (fare, distance).",
    )
    return ZipfKeyedSource(
        name="debs-taxi",
        arrival=arrival,
        num_keys=num_taxis,
        exponent=activity_skew,
        seed=seed,
        value_sampler=_trip_values,
        dataset=props,
    )
