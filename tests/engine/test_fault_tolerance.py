"""Differential fault-injection suite: crashed, killed, and delayed
tasks never change what the engine computes.

This extends the executor-equivalence harness with the task-level
fault-tolerance layer: every case runs a workload once under the clean
:class:`SerialExecutor` reference and once under
:class:`ParallelExecutor` with a :class:`TaskFaultInjector` killing,
poisoning, or delaying chosen ``(batch, kind, task_id)`` attempts — and
requires the faulted parallel run to be **byte-identical** to the clean
serial run:

- per-window answers equal as pickled bytes,
- ``RunStats`` records equal field-for-field (the fault-tolerance
  counters are ``compare=False`` by design, and the same records must
  then show retries/resurrections actually happened),
- every batch still processed by the parallel backend — a broken pool
  at batch *k* is resurrected (or, with the budget at zero, costs one
  serial-fallback batch) and batch *k+1* runs parallel again.

That equality is the paper's Section 8 exactly-once property pushed
down to task granularity: recomputation from replicated (payload)
input, under the same derived seed, is indistinguishable from a
first-try success.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import TaskFaultInjector
from repro.obs import ObservabilityConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source, tweets_source

NUM_BATCHES = 4

WORKLOADS = {
    "synd-skewed": lambda: synd_source(
        1.4, num_keys=300, arrival=ConstantRate(1_000.0), seed=11
    ),
    "tweets": lambda: tweets_source(rate=800.0, seed=42),
}

PARTITIONERS = ("prompt", "hash")


def _run(
    workload: str,
    partitioner: str,
    executor: str,
    injector: TaskFaultInjector | None = None,
    **cfg_overrides,
):
    cfg_kwargs = dict(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        executor=executor,
        executor_workers=2,
        run_seed=13,
    )
    cfg_kwargs.update(cfg_overrides)
    cfg = EngineConfig(**cfg_kwargs)
    engine = MicroBatchEngine(
        make_partitioner(partitioner),
        wordcount_query(window_length=3.0),
        cfg,
        task_fault_injector=injector,
    )
    return engine.run(WORKLOADS[workload](), NUM_BATCHES)


def _assert_identical_results(serial, parallel):
    """The faulted parallel run computes exactly the clean serial answer."""
    assert len(serial.window_answers) == len(parallel.window_answers)
    for s_window, p_window in zip(serial.window_answers, parallel.window_answers):
        assert pickle.dumps(s_window) == pickle.dumps(p_window)
    assert serial.stats.records == parallel.stats.records
    assert serial.scaling_history == parallel.scaling_history
    assert serial.stable == parallel.stable
    for record in serial.stats.records:
        if record.index in serial.state_store:
            assert dict(serial.state_store.get(record.index).output) == dict(
                parallel.state_store.get(record.index).output
            )


def _crash_and_poison_injector() -> TaskFaultInjector:
    """The standard fault plan: two task crashes plus one worker kill.

    - batch 0, map task 0: crashes once (retry succeeds),
    - batch 1, reduce task 1: crashes twice (two retries),
    - batch 2, map task 1: kills its worker process, breaking the whole
      pool mid-batch (resurrection resubmits the unfinished tasks).
    """
    return (
        TaskFaultInjector()
        .crash(0, "map", 0, times=1)
        .crash(1, "reduce", 1, times=2)
        .poison(2, "map", 1, times=1)
    )


@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_task_crashes_and_pool_loss_are_invisible(workload, partitioner):
    """Acceptance case: 2 workloads x 2 partitioners, crashes + a broken
    pool, byte-identical to clean serial, retries > 0, resurrections > 0,
    and the batch after the breakage parallel again."""
    serial = _run(workload, partitioner, "serial")
    parallel = _run(
        workload, partitioner, "parallel", injector=_crash_and_poison_injector()
    )
    _assert_identical_results(serial, parallel)

    stats = parallel.stats
    assert stats.total_task_retries() >= 3  # 1 map crash + 2 reduce crashes
    assert stats.total_pool_resurrections() == 1
    assert parallel.executor_task_retries >= 3
    assert parallel.executor_pool_resurrections == 1

    # the faults hit the batches they were aimed at...
    by_index = {r.index: r for r in stats.records}
    assert by_index[0].task_retries >= 1
    assert by_index[1].task_retries >= 2
    assert by_index[2].pool_resurrections == 1
    # ...and no batch degraded to serial: the pool broken at batch 2 was
    # resurrected within the batch, and batch 3 ran parallel on it
    assert parallel.executor_fallbacks == 0
    assert [r.backend for r in stats.records] == ["parallel"] * NUM_BATCHES
    assert stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_straggler_speculation_is_invisible(partitioner):
    """A delayed map attempt trips the per-task timeout; the speculative
    duplicate wins the race and the answer does not change by a byte."""
    workload = "synd-skewed"
    serial = _run(workload, partitioner, "serial")
    injector = TaskFaultInjector().delay(1, "map", 0, seconds=0.6)
    parallel = _run(
        workload,
        partitioner,
        "parallel",
        injector=injector,
        executor_workers=3,
        task_timeout=0.05,
        speculative_execution=True,
    )
    _assert_identical_results(serial, parallel)
    assert parallel.stats.total_timeout_trips() >= 1
    assert parallel.stats.total_speculative_wins() >= 1
    assert parallel.executor_speculative_wins >= 1
    assert parallel.executor_fallbacks == 0
    assert parallel.stats.backends_used() == ("parallel",)


def test_pool_broken_at_batch_k_is_parallel_again_at_k_plus_one():
    """Regression for the permanent serial degradation: with the
    resurrection budget at zero, the poisoned batch costs exactly one
    serial fallback — and the very next batch runs parallel again on a
    fresh pool, still byte-identical to the clean serial run."""
    workload, partitioner = "tweets", "prompt"
    serial = _run(workload, partitioner, "serial")
    injector = TaskFaultInjector().poison(1, "map", 0, times=1)
    parallel = _run(
        workload,
        partitioner,
        "parallel",
        injector=injector,
        max_pool_resurrections=0,
    )
    _assert_identical_results(serial, parallel)
    assert parallel.executor_fallbacks == 1
    backends = [r.backend for r in parallel.stats.records]
    assert backends[1] == "serial"  # the broken batch fell back...
    assert backends[2] == "parallel"  # ...but batch k+1 is parallel again
    assert backends == ["parallel", "serial", "parallel", "parallel"]
    assert parallel.stats.total_pool_resurrections() == 0


def test_faulted_run_with_observability_still_byte_identical():
    """Tracing a faulted run neither changes the answer nor hides the
    faults: the differential contract holds with observability on, and
    the trace carries the retry / resurrection / attempt evidence."""
    workload, partitioner = "synd-skewed", "prompt"
    serial = _run(workload, partitioner, "serial")
    parallel = _run(
        workload,
        partitioner,
        "parallel",
        injector=_crash_and_poison_injector(),
        observability=ObservabilityConfig(),
    )
    _assert_identical_results(serial, parallel)
    assert parallel.stats.total_task_retries() >= 3
    assert parallel.stats.total_pool_resurrections() == 1

    tracer = parallel.observability.tracer
    names = [s.name for s in tracer.spans]
    assert names.count("task_retry") >= 3
    assert "pool_resurrection" in names
    retried = [
        s for s in tracer.spans
        if s.name in ("map_task", "reduce_task") and s.attrs.get("retries", 0) > 0
    ]
    assert retried, "stitched task spans must carry retry counts"
    assert all(s.attrs["attempt"] >= 1 for s in retried)

    metrics = parallel.observability.metrics.as_dict()
    assert metrics["prompt_task_retries_total"] >= 3
    assert metrics["prompt_pool_resurrections_total"] == 1


def test_retries_exhausted_fails_loudly_not_wrongly():
    """A task that crashes past the retry budget propagates the fault —
    the run errors out rather than shipping a masked or partial answer."""
    from repro.engine.faults import InjectedTaskFault

    injector = TaskFaultInjector().crash(0, "map", 0, times=5)
    with pytest.raises(InjectedTaskFault):
        _run("tweets", "prompt", "parallel", injector=injector, max_task_retries=1)
