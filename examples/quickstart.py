#!/usr/bin/env python3
"""Quickstart: run a windowed WordCount through the micro-batch engine.

Builds the simulated engine with Prompt's partitioning scheme, streams
a synthetic tweet-word workload through it for a dozen one-second
batches, and prints per-batch execution records plus the final sliding
window's hottest words — the smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EngineConfig, MicroBatchEngine, make_partitioner
from repro.bench import render_run
from repro.queries import select_top_k, wordcount_query
from repro.workloads import tweets_source


def main() -> None:
    # 1. A query: count word occurrences over a 10-second sliding window.
    query = wordcount_query(window_length=10.0)

    # 2. An engine: 1 s batch intervals, 8 Map tasks, 8 Reduce tasks,
    #    on a simulated 4-node x 4-core cluster (the defaults).
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        query,
        EngineConfig(batch_interval=1.0, num_blocks=8, num_reducers=8),
    )

    # 3. A workload: synthetic tweets at 5,000 words/second.
    source = tweets_source(rate=5_000.0, seed=42)

    # 4. Run 12 batches and inspect the results.
    result = engine.run(source, num_batches=12)

    print("batch  tuples  keys   processing  load(W)  latency")
    for record in result.stats.records:
        print(
            f"{record.index:>5}  {record.tuple_count:>6}  {record.key_count:>5}"
            f"  {record.processing_time:>9.3f}s  {record.load:>6.2f}  {record.latency:>6.3f}s"
        )

    print(f"\nthroughput: {result.stats.throughput():,.0f} tuples/s")
    print(f"mean latency: {result.stats.mean_latency():.3f}s")
    print(f"stable (no back-pressure): {result.stable}")

    print("\ntop words in the final window:")
    for word, count in select_top_k(result.final_window_answer(), 5):
        print(f"  {word:>8}  {count}")

    print()
    print(render_run(result, title="run report"))


if __name__ == "__main__":
    main()
