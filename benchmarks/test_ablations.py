"""Ablations of Prompt's design choices (DESIGN.md section 5).

Not figures from the paper — these quantify the *reasons* behind the
design: the update budget of Algorithm 1, the split cutoff and
placement strategy of Algorithm 2, the WorstFit/retirement rule of
Algorithm 3, and the early-release slack.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.core import (
    AccumulatorConfig,
    BatchInfo,
    EarlyReleaseConfig,
    EarlyReleaseController,
    KeyCluster,
    MicroBatchAccumulator,
    PartitionerConfig,
    PromptBatchPartitioner,
    ReduceBucketAllocator,
    evaluate_partition,
    hash_allocate,
)
from repro.partitioners import PromptPartitioner
from repro.workloads import synd_source, tweets_source

INFO = BatchInfo(0, 0.0, 1.0)


def _tweets_batch(rate=20_000.0, seed=5):
    return tweets_source(rate=rate, seed=seed).tuples_between(0.0, 1.0)


def test_ablation_accumulator_budget(benchmark, record_experiment):
    """Budgeted lazy updates vs exact per-tuple maintenance.

    The budget bounds CountTree work to ~budget*K repositionings while
    the traversal stays near-sorted — the trade Figure 14a monetizes.
    """
    tuples = _tweets_batch()

    def run():
        rows = []
        for label, budget, exact in (
            ("budget=1", 1, False),
            ("budget=4", 4, False),
            ("budget=8 (paper)", 8, False),
            ("budget=32", 32, False),
            ("exact (per-tuple)", 8, True),
        ):
            acc = MicroBatchAccumulator(
                AccumulatorConfig(budget=budget, expected_tuples=20_000,
                                  expected_keys=4_000),
                exact_updates=exact,
            )
            acc.start_interval(INFO)
            acc.accept_all(tuples)
            batch = acc.finalize()
            rows.append(
                {
                    "Variant": label,
                    "TreeUpdates": batch.tree_updates,
                    "UpdatesPerTuple": batch.tree_updates / batch.tuple_count,
                    "SortQuality": batch.sort_quality(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_budget",
        format_table(rows, title="Ablation: CountTree update budget (Tweets batch)"),
        rows,
        store=dict(workload="tweets", partitioner="prompt"),
    )
    by = {r["Variant"]: r for r in rows}
    exact = by["exact (per-tuple)"]
    paper = by["budget=8 (paper)"]
    assert exact["SortQuality"] == 1.0
    assert paper["TreeUpdates"] < exact["TreeUpdates"] / 2
    assert paper["SortQuality"] >= 0.85
    # more budget -> more updates, better (or equal) sort
    assert by["budget=1"]["TreeUpdates"] <= by["budget=32"]["TreeUpdates"]


def test_ablation_partition_strategy(benchmark, record_experiment):
    """Greedy (BestFitDecreasing) vs the literal zigzag three-pass text."""
    datasets = {
        "tweets": _tweets_batch(),
        "synd z=1.4": synd_source(1.4, rate=20_000.0, seed=5).tuples_between(0.0, 1.0),
        "synd z=2.0": synd_source(2.0, rate=20_000.0, seed=5).tuples_between(0.0, 1.0),
    }

    def run():
        rows = []
        for ds, tuples in datasets.items():
            for strategy in ("greedy", "zigzag"):
                part = PromptPartitioner(strategy=strategy)
                batch = part.partition(tuples, 16, INFO)
                q = evaluate_partition(batch)
                rows.append(
                    {
                        "Dataset": ds,
                        "Strategy": strategy,
                        "BSI": q.bsi,
                        "BCI": q.bci,
                        "KSR": q.ksr,
                        "MPI": q.mpi,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_strategy",
        format_table(rows, title="Ablation: Algorithm 2 placement strategy"),
        rows,
        store=dict(partitioner="prompt"),
    )
    # Greedy dominates or ties on MPI for the high-cardinality dataset.
    tweets = {r["Strategy"]: r for r in rows if r["Dataset"] == "tweets"}
    assert tweets["greedy"]["MPI"] <= tweets["zigzag"]["MPI"]


def test_ablation_split_cutoff_scale(benchmark, record_experiment):
    """S_cut scaling: lower cutoffs split more keys (KSR) for balance."""
    tuples = synd_source(1.4, rate=20_000.0, seed=5).tuples_between(0.0, 1.0)

    def run():
        rows = []
        from repro.core.tuples import sorted_key_groups

        groups = sorted_key_groups(tuples)
        for scale in (0.5, 1.0, 2.0, 4.0):
            part = PromptBatchPartitioner(
                PartitionerConfig(split_cutoff_scale=scale), strategy="zigzag"
            )
            batch = part.partition(groups, 16, INFO)
            q = evaluate_partition(batch)
            rows.append(
                {
                    "CutoffScale": scale,
                    "SplitKeys": len(batch.split_keys),
                    "BSI": q.bsi,
                    "BCI": q.bci,
                    "KSR": q.ksr,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_cutoff",
        format_table(rows, title="Ablation: key-split cutoff scale (zigzag, SynD z=1.4)"),
        rows,
        store=dict(workload="synd-z1.4", partitioner="prompt-zigzag"),
    )
    assert rows[0]["SplitKeys"] >= rows[-1]["SplitKeys"]
    assert rows[0]["KSR"] >= rows[-1]["KSR"] - 1e-9


def test_ablation_reduce_allocation(benchmark, record_experiment):
    """Algorithm 3 vs conventional hashing on reduce-bucket imbalance."""

    def run():
        rows = []
        for z in (0.6, 1.0, 1.4):
            tuples = synd_source(z, rate=20_000.0, seed=7).tuples_between(0.0, 1.0)
            sizes: dict = {}
            for t in tuples:
                sizes[t.key] = sizes.get(t.key, 0) + 1
            clusters = [KeyCluster(key=k, size=s) for k, s in sizes.items()]
            split = {c.key for c in clusters if c.size > 200}
            ours = ReduceBucketAllocator(8).allocate(clusters, split)
            hashed = hash_allocate(clusters, 8)
            rows.append(
                {
                    "Zipf_z": z,
                    "Alg3_Imbalance": ours.imbalance,
                    "Hash_Imbalance": hashed.imbalance,
                    "Improvement": hashed.imbalance / max(1e-9, ours.imbalance),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_reduce",
        format_table(rows, title="Ablation: Algorithm 3 vs hash reduce allocation"),
        rows,
        store=dict(partitioner="prompt"),
    )
    for row in rows:
        assert row["Alg3_Imbalance"] <= row["Hash_Imbalance"] + 1e-9


def test_ablation_early_release_slack(benchmark, record_experiment):
    """How much slack does Algorithm 2 actually need? (paper: <= 5%).

    Uses the Figure 14b workload (SynD z=1.0, 8 blocks).  Note the
    measured cost is of this pure-Python implementation — the paper's
    5% figure is for their JVM build at far larger batches; what is
    reproducible is the *shape*: a fixed small slack covers the cost,
    and tighter slacks start missing heartbeats.
    """
    tuples = synd_source(1.0, rate=20_000.0, seed=19).tuples_between(0.0, 1.0)

    def run():
        import statistics

        part = PromptPartitioner()
        part.partition(tuples, 8, INFO)  # warm up interpreter paths
        rows = []
        for slack in (0.005, 0.01, 0.02, 0.05, 0.10):
            ctl = EarlyReleaseController(EarlyReleaseConfig(slack_fraction=slack))
            window = ctl.window_for(INFO)
            for _ in range(7):
                batch = part.partition(tuples, 8, INFO)
                ctl.record(batch.plan_elapsed, window)
            elapsed = [e for e, _ in ctl.observations]
            rows.append(
                {
                    "SlackFraction": slack,
                    "MissRate": ctl.miss_rate(),
                    "MedianOverheadPct": 100 * statistics.median(elapsed),
                    "MeanOverheadPct": 100 * sum(elapsed) / len(elapsed),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_slack",
        format_table(rows, title="Ablation: early-release slack vs measured Alg 2 cost"),
        rows,
        store=dict(workload="tweets", partitioner="prompt"),
    )
    by = {r["SlackFraction"]: r for r in rows}
    # The paper's 5% budget suffices; the median sidesteps scheduler
    # noise, and at most an occasional outlier run may miss.
    assert by[0.05]["MedianOverheadPct"] <= 5.0
    assert by[0.05]["MissRate"] <= 0.35


def test_ablation_sketch_vs_tree_statistics(benchmark, record_experiment):
    """CountTree (Alg 1) vs Space-Saving sketch accumulator statistics.

    The sketch tracks only the heavy head in O(1) per tuple; the tail
    is unordered, so Algorithm 2 sees a weaker quasi-sort and balances
    cardinality slightly worse — the price of constant-space stats.
    """
    import time as _time

    datasets = {
        "tweets": _tweets_batch(),
        "synd z=1.4": synd_source(1.4, rate=20_000.0, seed=5).tuples_between(0.0, 1.0),
    }

    def run():
        rows = []
        for ds, tuples in datasets.items():
            for name, part in (
                ("tree (Alg 1)", PromptPartitioner()),
                ("sketch-256", PromptPartitioner(stats="sketch", sketch_capacity=256)),
                ("sketch-32", PromptPartitioner(stats="sketch", sketch_capacity=32)),
            ):
                started = _time.perf_counter()
                batch = part.partition(tuples, 16, INFO)
                wall = _time.perf_counter() - started
                q = evaluate_partition(batch)
                rows.append(
                    {
                        "Dataset": ds,
                        "Statistics": name,
                        "BSI": q.bsi,
                        "BCI": q.bci,
                        "KSR": q.ksr,
                        "MPI": q.mpi,
                        "WallSeconds": wall,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ablation_sketch",
        format_table(rows, title="Ablation: accumulator statistics (tree vs sketch)"),
        rows,
        store=dict(partitioner="prompt"),
    )
    for ds in ("tweets", "synd z=1.4"):
        tree = next(r for r in rows if r["Dataset"] == ds and "tree" in r["Statistics"])
        sk = next(r for r in rows if r["Dataset"] == ds and r["Statistics"] == "sketch-256")
        # the sketch never loses size balance (Alg 2 enforces capacity)
        assert sk["BSI"] <= tree["BSI"] + 5
