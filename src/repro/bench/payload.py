"""Driver->worker payload-byte overhead: legacy vs resident-context dispatch.

The parallel backend's worker-resident :class:`~repro.engine.executors.RunContext`
exists to stop re-pickling the run-invariant slice of every task — the
query and whatever it closes over, the reduce-allocation callable, the
cost model — into every payload.  This bench measures exactly what that
buys, in bytes, on a workload built to show the effect honestly: the
query's Map function carries a sizeable broadcast-style lookup table
(:class:`VocabWeightTable`), the canonical kind of run-invariant state
(dimension tables, stop-word lists, model weights) that real streaming
queries ship to workers.

Both dispatch modes run the *same* parallel backend over the same
seeded SynD workload; the bench asserts byte-identical windowed answers
and field-equal batch records before reporting a single number, then
compares driver->worker bytes per launched task attempt:

- ``legacy`` (``resident_context=False``) — every Map payload carries
  the full query, table included; every Reduce payload carries the
  aggregator and cost model.
- ``resident`` (the default) — the invariant slice crosses the process
  boundary once per pool generation; payloads shrink to per-task
  deltas (generation stamp + block/bucket + routing info).

Two workload rows mirror the speedup bench: ``wordcount-light`` (the
IPC-dominated regime where payload bytes are the *whole* dispatch
story) and ``wordcount-heavy`` (CPU-bound map bodies, where byte
savings ride along with real compute).  CI gates on the light row:
bytes/task under resident dispatch must be at least 3x smaller.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from typing import Any

from ..engine.engine import EngineConfig, MicroBatchEngine, RunResult
from ..partitioners.registry import make_partitioner
from ..queries.base import Query, SumAggregator, WindowSpec
from ..workloads.arrival import ConstantRate
from ..workloads.synd import synd_source

__all__ = [
    "VocabWeightTable",
    "broadcast_wordcount_query",
    "bench_payload_overhead",
]

#: rounds of crc32 mixing per tuple in the heavy variant (~10 us/tuple),
#: matching ``speedup.HEAVY_ROUNDS`` so the two benches probe the same
#: CPU-bound regime.
HEAVY_ROUNDS = 120


class VocabWeightTable:
    """Broadcast-style lookup table: key rank -> small integer weight.

    Module-level and deterministic (weights derive from ``crc32`` of the
    key), so it pickles to worker processes and yields identical
    contributions under any backend or dispatch mode.  Deliberately
    heavy to pickle — one dict entry per vocabulary rank — because its
    job is to *be* the run-invariant state whose shipping cost the
    payload bench measures.  ``rounds`` adds deterministic CPU-bound
    mixing per tuple for the heavy workload row.
    """

    def __init__(self, vocab_size: int, *, rounds: int = 0) -> None:
        self.rounds = rounds
        self.weights = {
            rank: zlib.crc32(repr(rank).encode()) % 5 + 1
            for rank in range(vocab_size)
        }

    def __call__(self, key: Any, value: Any) -> int:
        if self.rounds:
            digest = zlib.crc32(repr(key).encode())
            for _ in range(self.rounds):
                digest = zlib.crc32(digest.to_bytes(4, "little"))
        return self.weights.get(key, 1)


def broadcast_wordcount_query(
    window_length: float,
    vocab_size: int,
    *,
    rounds: int = 0,
    name: str = "wordcount-broadcast",
) -> Query:
    """A weighted WordCount whose Map function closes over a big table."""
    return Query(
        name=name,
        aggregator=SumAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=VocabWeightTable(vocab_size, rounds=rounds),
    )


def _timed_run(
    query: Query,
    *,
    resident_context: bool,
    workers: int | None,
    rate: float,
    num_batches: int,
    num_keys: int,
    exponent: float,
    num_blocks: int,
    seed: int,
) -> tuple[float, RunResult]:
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
    )
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=num_blocks,
        num_reducers=num_blocks,
        executor="parallel",
        executor_workers=workers,
        resident_context=resident_context,
        run_seed=seed,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), query, config)
    started = time.perf_counter()
    result = engine.run(source, num_batches)
    return time.perf_counter() - started, result


def bench_payload_overhead(
    *,
    rate: float = 1_200.0,
    num_batches: int = 5,
    num_keys: int = 2_000,
    vocab_size: int = 20_000,
    exponent: float = 1.4,
    num_blocks: int = 8,
    workers: int | None = None,
    seed: int = 13,
) -> list[dict[str, Any]]:
    """Dispatch-byte comparison rows for legacy vs resident-context mode.

    Raises ``AssertionError`` if the two modes disagree on the windowed
    answers or the (dispatch-blind) batch records — a byte saving that
    changed the answer would be worthless.
    """
    window = 3.0
    workloads = [
        ("wordcount-light", 0),
        ("wordcount-heavy", HEAVY_ROUNDS),
    ]
    rows: list[dict[str, Any]] = []
    for label, rounds in workloads:
        runs: dict[str, tuple[float, RunResult]] = {}
        for mode, resident in (("legacy", False), ("resident", True)):
            query = broadcast_wordcount_query(
                window, vocab_size, rounds=rounds, name=label
            )
            runs[mode] = _timed_run(
                query,
                resident_context=resident,
                workers=workers,
                rate=rate,
                num_batches=num_batches,
                num_keys=num_keys,
                exponent=exponent,
                num_blocks=num_blocks,
                seed=seed,
            )
        (legacy_wall, legacy_run) = runs["legacy"]
        (resident_wall, resident_run) = runs["resident"]
        # Per-window pickles, as in the speedup bench: list-level
        # pickling would also encode cross-window object sharing.
        identical = len(legacy_run.window_answers) == len(
            resident_run.window_answers
        ) and all(
            pickle.dumps(a) == pickle.dumps(b)
            for a, b in zip(
                legacy_run.window_answers, resident_run.window_answers
            )
        )
        assert identical, f"{label}: dispatch modes disagree on answers"
        assert legacy_run.stats.records == resident_run.stats.records, (
            f"{label}: dispatch modes disagree on batch records"
        )
        assert legacy_run.executor_fallbacks == 0
        assert resident_run.executor_fallbacks == 0
        legacy_attempts = legacy_run.stats.total_task_attempts()
        resident_attempts = resident_run.stats.total_task_attempts()
        legacy_per_task = (
            legacy_run.executor_payload_bytes / legacy_attempts
            if legacy_attempts
            else 0.0
        )
        resident_per_task = (
            resident_run.executor_payload_bytes / resident_attempts
            if resident_attempts
            else 0.0
        )
        rows.append(
            {
                "Workload": label,
                "CpuCount": os.cpu_count() or 1,
                "VocabSize": vocab_size,
                "Tuples": resident_run.stats.total_tuples,
                "Batches": num_batches,
                "LegacyTaskAttempts": legacy_attempts,
                "ResidentTaskAttempts": resident_attempts,
                "LegacyPayloadBytes": legacy_run.executor_payload_bytes,
                "ResidentPayloadBytes": resident_run.executor_payload_bytes,
                "LegacyBytesPerTask": legacy_per_task,
                "ResidentBytesPerTask": resident_per_task,
                "BytesPerTaskReduction": (
                    legacy_per_task / resident_per_task
                    if resident_per_task
                    else 0.0
                ),
                "ContextInstalls": resident_run.executor_context_installs,
                "ContextBytes": resident_run.executor_context_bytes,
                "LegacyWallSeconds": legacy_wall,
                "ResidentWallSeconds": resident_wall,
                "OutputsIdentical": identical,
            }
        )
    return rows
