"""Batch-at-a-time kernels for the ingest → quasi-sort → placement path.

The pure-Python path (``MicroBatchAccumulator`` + ``PromptBatchPartitioner``)
pays Python-interpreter cost *per tuple*: a dict probe, attribute updates
and an eligibility check for every arrival, then ``O(log K)`` AVL node
moves for the updates that fire.  At high arrival rates that per-tuple
constant — not the algorithms — is the single-node ceiling.

This module reimplements the same two algorithms batch-at-a-time on
numpy, exploiting two structural facts:

1. **The CountTree never needs to exist.**  Its nodes are ordered by
   ``(count, _order_token(key))`` and the token is unique per key, so the
   quasi-sorted traversal is a pure function of each key's *final
   tracked count*: sort by ``(count, token)`` descending.  Algorithm 1's
   budget mechanism is a per-key recurrence over that key's arrival
   times, so the final tracked count can be computed by jumping from
   update event to update event (at most ``budget`` of them per key)
   instead of touching every tuple: the frequency trigger's firing index
   is a closed form (``f.updated + f.step - 1``), and only the time
   trigger needs a scan — over disjoint segments, so total scan work
   stays ``O(m)`` per key and is vectorized when segments are long.

2. **Algorithm 2's zigzag deal is batched.**  With a capacity bound the
   pass order is rebuilt (open blocks ascending, then reversed) at every
   pass boundary, so each pass deals one key per open block in
   descending block order — expressible as slice assignments over a
   sorted size array, one numpy step per pass instead of per key.

Both kernels are *bit-compatible* with the pure-Python oracle: identical
quasi-sort order, tracked counts, tree-update totals, block contents,
placements and ``split_keys`` (the differential/property suites enforce
this).  All float comparisons replicate the oracle's exact expressions
(e.g. ``T[j] - last_update >= t_step``, never the algebraically equal
``T[j] >= last_update + t_step``), and every number stored into output
structures is converted back to a Python ``int``/``float``.

numpy is an optional dependency: ``HAVE_NUMPY`` reports availability and
callers fall back to the pure-Python path (with a warning) when absent.
Setting ``REPRO_NUMBA=1`` swaps the per-key simulation for a
numba-jitted dense loop when numba is importable; the flag is advisory
and degrades (with a warning) to the pure-numpy kernels otherwise.
"""

from __future__ import annotations

import heapq
import math
import os
import warnings
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Optional, Sequence

from .batch import BatchInfo, DataBlock, PartitionedBatch
from .buffering import AccumulatedBatch, MicroBatchAccumulator
from .plan_stream import LedgerBlock, PlanGenerator, split_segment_chain
from .tuples import Key, KeyGroup, StreamTuple, _order_token

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:
    from .batch_partitioner import PromptBatchPartitioner

__all__ = [
    "HAVE_NUMPY",
    "USE_NUMBA",
    "KernelIngest",
    "accumulate_batch",
    "plan_greedy",
    "plan_greedy_stream",
]

_GET_KEY = attrgetter("key")
_GET_TS = attrgetter("ts")
_GET_WEIGHT = attrgetter("weight")


def _numba_jit():
    """Resolve the optional numba jit behind the ``REPRO_NUMBA=1`` flag."""
    if os.environ.get("REPRO_NUMBA") != "1" or not HAVE_NUMPY:
        return None
    try:  # pragma: no cover - numba is not a baked-in dependency
        import numba
    except ImportError:
        warnings.warn(
            "REPRO_NUMBA=1 but numba is not importable; "
            "running the pure-numpy ingest kernels instead",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return numba.njit(cache=True)  # pragma: no cover


def _simulate_key_dense(T, G, budget, est, f0, t_end):
    """Per-arrival transliteration of Algorithm 1's update mechanism.

    ``T`` holds one key's arrival times (ascending arrival order), ``G``
    the matching 0-based global stream indexes.  Returns the key's final
    tracked count and the number of CountTree updates it consumed.

    This is the reference recurrence (and the numba jit target — the
    body is nopython-compatible); ``_simulate_key_jump`` computes the
    same answer without visiting every arrival.
    """
    fu = 1
    lut = T[0]
    f_step = f0
    t_step = max(t_end - T[0], 0.0) / budget
    budget_left = budget
    tracked = 1
    updates = 0
    for j in range(1, len(T)):
        if budget_left <= 0:
            break
        freq = j + 1
        when = T[j]
        if freq - fu >= f_step:
            tracked = freq
            fu = freq
            lut = when
            budget_left -= 1
            updates += 1
            n_c = G[j] + 1
            share = freq / n_c
            step = (est / budget) * share
            f_step = max(1, int(step))
        elif when - lut >= t_step:
            tracked = freq
            fu = freq
            lut = when
            budget_left -= 1
            updates += 1
            t_step = max(t_end - when, 0.0) / max(1, budget_left)
    return tracked, updates


def _simulate_key_jump(chain, G, base, m, budget, est, f0, t_end):
    """Event-jumping equivalent of :func:`_simulate_key_dense`.

    Between updates, ``f.step`` and ``t.step`` are constant, so the next
    frequency trigger sits at the closed-form arrival index
    ``f.updated + f.step - 1`` and only arrivals *before* it need the
    time-trigger scan (the frequency branch wins ties — it is checked
    first).  At most ``budget`` events fire and the scans cover disjoint
    ranges, so the per-key work is ``O(m)`` worst case and
    ``O(budget)`` when frequency triggers dominate.

    ``chain`` is the key's tuple list (timestamps are read lazily —
    extracting a full timestamp column up front would touch every tuple
    when the recurrence usually needs only a fraction); ``G`` the
    key-sorted global-index array, with this key's arrivals occupying
    ``[base, base + m)``.  The time predicate is written exactly as the
    oracle's ``accept`` computes it — subtraction first — because
    ``a - b >= c`` and ``a >= b + c`` can disagree in floats.
    """
    fu = 1
    lut = chain[0].ts
    f_step = f0
    t_step = max(t_end - lut, 0.0) / budget
    budget_left = budget
    tracked = 1
    updates = 0
    j_last = 0
    while budget_left > 0:
        jA = fu + f_step - 1  # arrival index where the frequency trigger fires
        hi = jA - 1
        if hi > m - 1:
            hi = m - 1
        j = -1
        time_fired = False
        for jj in range(j_last + 1, hi + 1):
            if chain[jj].ts - lut >= t_step:
                j = jj
                time_fired = True
                break
        if j < 0:
            if jA <= m - 1:
                j = jA
            else:
                break  # no trigger can fire on the remaining arrivals
        tracked = j + 1
        fu = j + 1
        lut = chain[j].ts
        budget_left -= 1
        updates += 1
        j_last = j
        if time_fired:
            t_step = max(t_end - lut, 0.0) / max(1, budget_left)
        else:
            n_c = int(G[base + j]) + 1
            share = (j + 1) / n_c
            step = (est / budget) * share
            f_step = max(1, int(step))
    return tracked, updates


def _simulate_key_jump_arr(T, G, base, m, budget, est, f0, t_end):
    """:func:`_simulate_key_jump` over a per-chain timestamp array.

    Used for long chains (``m >= _LONG_CHAIN_THRESHOLD``), where the
    time-trigger scans cover ranges wide enough that one vectorized
    compare per event beats per-element attribute reads.  Scan ranges
    are disjoint, so total vector work stays ``O(m)``.
    """
    fu = 1
    lut = float(T[0])
    f_step = f0
    t_step = max(t_end - lut, 0.0) / budget
    budget_left = budget
    tracked = 1
    updates = 0
    j_last = 0
    while budget_left > 0:
        jA = fu + f_step - 1  # arrival index where the frequency trigger fires
        hi = jA - 1
        if hi > m - 1:
            hi = m - 1
        j = -1
        time_fired = False
        lo = j_last + 1
        if lo <= hi:
            mask = (T[lo : hi + 1] - lut) >= t_step
            k = int(mask.argmax())
            if mask[k]:
                j = lo + k
                time_fired = True
        if j < 0:
            if jA <= m - 1:
                j = jA
            else:
                break  # no trigger can fire on the remaining arrivals
        tracked = j + 1
        fu = j + 1
        lut = float(T[j])
        budget_left -= 1
        updates += 1
        j_last = j
        if time_fired:
            t_step = max(t_end - lut, 0.0) / max(1, budget_left)
        else:
            n_c = int(G[base + j]) + 1
            share = (j + 1) / n_c
            step = (est / budget) * share
            f_step = max(1, int(step))
    return tracked, updates


#: chain length from which the recurrence extracts a per-chain timestamp
#: array and scans it vectorized instead of reading ``.ts`` per element
_LONG_CHAIN_THRESHOLD = 2048

_JITTED_DENSE = None
if (jit := _numba_jit()) is not None:  # pragma: no cover - needs numba
    _JITTED_DENSE = jit(_simulate_key_dense)

#: True when the REPRO_NUMBA flag resolved to a working jit
USE_NUMBA = _JITTED_DENSE is not None


@dataclass(slots=True)
class KernelIngest:
    """One interval's kernel ingest output.

    ``group_sizes`` carries the exact per-group total weights (aligned
    with ``batch.key_groups``) so the placement kernel never re-sums
    tuple weights in Python.  ``unit_weights`` is True when every tuple
    weighs 1 (chunk boundaries become pure arithmetic); otherwise
    ``chain_weights`` holds per-group weight arrays, aligned with
    ``batch.key_groups``.
    """

    batch: AccumulatedBatch
    group_sizes: "np.ndarray"
    unit_weights: bool = True
    chain_weights: Optional[list] = None


def accumulate_batch(
    tuples: Sequence[StreamTuple],
    info: BatchInfo,
    accumulator: MicroBatchAccumulator,
) -> KernelIngest:
    """Algorithm 1 over a whole interval's tuples, batch-at-a-time.

    Produces the same :class:`AccumulatedBatch` the accumulator's
    ``start_interval``/``accept_all``/``finalize`` cycle would — same
    quasi-sort order, tracked counts and update totals — and feeds the
    interval's totals into the accumulator's ``N_est``/``K_avg`` history
    so cross-batch adaptation stays identical.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("numpy ingest kernel requested but numpy is absent")
    if info.t_end <= info.t_start:
        raise ValueError(f"empty batch interval: {info}")
    config = accumulator.config
    budget = config.budget
    est = accumulator.estimated_tuples()
    f0 = max(1, est // (accumulator.average_keys() * budget))

    n = len(tuples)
    if n == 0:
        accumulator.record_interval_stats(0, 0)
        batch = AccumulatedBatch(
            info=info, key_groups=[], tuple_count=0, total_weight=0, tree_updates=0
        )
        return KernelIngest(batch=batch, group_sizes=np.empty(0, dtype=np.int64))

    # -- array extraction: C-driven passes, no per-tuple Python frames ---
    # dict.fromkeys dedups in first-appearance order (the same code
    # assignment a per-tuple setdefault would produce); map() feeds
    # fromiter without generator-frame overhead.
    keys_col = list(map(_GET_KEY, tuples))
    code_of: dict[Key, int] = {k: i for i, k in enumerate(dict.fromkeys(keys_col))}
    keys = list(code_of)  # code -> key (codes assigned in first-appearance order)
    num_keys = len(keys)
    # int16 codes let numpy's stable argsort take its radix path (~8x
    # faster than the int64 comparison sort); cardinality is known
    # before the column is built, so the narrowing is safe.
    code_dtype = np.int16 if num_keys <= 32767 else np.int64
    codes = np.fromiter(map(code_of.__getitem__, keys_col), dtype=code_dtype, count=n)
    # StreamTuple enforces weight >= 1, so total == count iff every
    # weight is 1 — one C-level sum decides the fast path without
    # materializing a weights column.
    total_w = sum(map(_GET_WEIGHT, tuples))
    unit_weights = total_w == n

    # -- per-key chains via one stable argsort ---------------------------
    # Stable sort on the code column groups each key's arrivals while
    # preserving their global (timestamp) order; bincount gives exact
    # group lengths, reduceat exact group weights (= lengths when every
    # tuple weighs 1, the common case).
    order = np.argsort(codes, kind="stable")
    counts = np.bincount(codes, minlength=num_keys)
    starts = np.zeros(num_keys, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    if unit_weights:
        sizes = counts
        w_sorted = None
    else:
        weights = np.fromiter(map(_GET_WEIGHT, tuples), dtype=np.int64, count=n)
        w_sorted = weights[order]
        sizes = np.add.reduceat(w_sorted, starts)

    # -- materialize chains in original-object identity ------------------
    # (fromiter builds the object array ~3x faster than slice-assigning
    # a list into np.empty)
    arr = np.fromiter(tuples, dtype=object, count=n)[order]
    starts_l = starts.tolist()
    counts_l = counts.tolist()
    chains = [
        arr[starts_l[c] : starts_l[c] + counts_l[c]].tolist()
        for c in range(num_keys)
    ]

    # -- Algorithm 1's budget recurrence, one key at a time --------------
    tree_updates = 0
    if accumulator.exact_updates:
        # Every arrival refreshes the tree: counts are exact and each
        # non-first arrival is one update.
        tracked = counts_l
        tree_updates = int((counts - 1).sum())
    else:
        tracked = [0] * num_keys
        t_end = info.t_end
        if _JITTED_DENSE is not None:  # pragma: no cover - needs numba
            ts_sorted = np.fromiter(map(_GET_TS, tuples), dtype=np.float64, count=n)[
                order
            ]
            for c in range(num_keys):
                s = starts_l[c]
                e = s + counts_l[c]
                if e - s == 1:
                    tracked[c] = 1
                    continue
                count_c, updates_c = _JITTED_DENSE(
                    ts_sorted[s:e], order[s:e], budget, est, f0, t_end
                )
                tracked[c] = int(count_c)
                tree_updates += int(updates_c)
        else:
            for c in range(num_keys):
                m_c = counts_l[c]
                if m_c == 1:
                    tracked[c] = 1
                    continue
                if m_c >= _LONG_CHAIN_THRESHOLD:
                    chain_ts = np.fromiter(
                        map(_GET_TS, chains[c]), dtype=np.float64, count=m_c
                    )
                    count_c, updates_c = _simulate_key_jump_arr(
                        chain_ts, order, starts_l[c], m_c, budget, est, f0, t_end
                    )
                else:
                    count_c, updates_c = _simulate_key_jump(
                        chains[c], order, starts_l[c], m_c, budget, est, f0, t_end
                    )
                tracked[c] = count_c
                tree_updates += updates_c

    # -- quasi-sort: descending (count, order-token) ---------------------
    # The CountTree orders nodes by (count, token) with unique tokens,
    # so its descending traversal equals this sort exactly.
    tokens = [_order_token(k) for k in keys]
    desc = sorted(range(num_keys), key=lambda c: (tracked[c], tokens[c]), reverse=True)

    groups = [
        KeyGroup(key=keys[c], tuples=chains[c], tracked_count=tracked[c])
        for c in desc
    ]
    batch = AccumulatedBatch(
        info=info,
        key_groups=groups,
        tuple_count=n,
        total_weight=total_w,
        tree_updates=tree_updates,
    )
    accumulator.record_interval_stats(n, num_keys)
    if unit_weights:
        chain_weights = None
    else:
        # Per-group weight views aligned with the quasi-sorted groups so
        # the placement kernel never re-extracts tuple weights.
        chain_weights = [
            w_sorted[starts[c] : starts[c] + counts[c]] for c in desc
        ]
    return KernelIngest(
        batch=batch,
        group_sizes=sizes[np.array(desc, dtype=np.int64)],
        unit_weights=unit_weights,
        chain_weights=chain_weights,
    )


def plan_greedy(
    partitioner: "PromptBatchPartitioner",
    key_groups: Sequence[KeyGroup],
    num_blocks: int,
    info: BatchInfo,
    sizes: Optional["np.ndarray"] = None,
    *,
    unit_weights: bool = False,
    chain_weights: Optional[Sequence] = None,
) -> PartitionedBatch:
    """Drain :func:`plan_greedy_stream` into a finished batch.

    The eager entry point every existing caller (and the >1000-instance
    property suite) uses — so the streaming generator underneath is
    exercised bit-for-bit even by consumers that never stream.
    """
    gen = plan_greedy_stream(
        partitioner,
        key_groups,
        num_blocks,
        info,
        sizes,
        unit_weights=unit_weights,
        chain_weights=chain_weights,
    )
    while True:
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value


def plan_greedy_stream(
    partitioner: "PromptBatchPartitioner",
    key_groups: Sequence[KeyGroup],
    num_blocks: int,
    info: BatchInfo,
    sizes: Optional["np.ndarray"] = None,
    *,
    unit_weights: bool = False,
    chain_weights: Optional[Sequence] = None,
) -> PlanGenerator:
    """Algorithm 2 (greedy strategy) over a sorted size array, streamed.

    Mirrors ``PromptBatchPartitioner.partition(strategy="greedy")``
    phase by phase: LPT dicing of split keys (chunk boundaries via
    ``searchsorted`` on each hot chain's cumulative weight), the
    capacity-aware zigzag deal batched one *pass* per numpy step, and
    the partitioner's own rebalance pass — so the output is identical
    by construction, not by approximation.  Placement runs on
    :class:`~repro.core.plan_stream.LedgerBlock` segment ledgers; once
    the split-key table is final each block is materialized and yielded
    (block-index order) so a streaming dispatcher can launch its Map
    task while later blocks are still being copied out.  The generator
    returns the completed :class:`PartitionedBatch`.

    ``sizes`` may carry the exact per-group weights (as produced by
    :func:`accumulate_batch`); otherwise they are summed here.  When the
    caller vouches ``unit_weights`` (every tuple weighs 1), chunk
    boundaries reduce to arithmetic; else ``chain_weights`` (per-group
    weight arrays aligned with ``key_groups``) avoids re-extracting
    tuple weights for the cumulative sums.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("numpy placement kernel requested but numpy is absent")
    if num_blocks < 1:
        raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
    num_groups = len(key_groups)
    if sizes is None:
        sizes = np.fromiter((g.size for g in key_groups), dtype=np.int64, count=num_groups)
    total_weight = int(sizes.sum())
    if not num_groups or total_weight == 0:
        empty = [DataBlock(i) for i in range(num_blocks)]
        for block in empty:
            yield block, set()
        return PartitionedBatch(
            info=info, blocks=empty, split_keys={}, partitioner_name="prompt"
        )
    blocks = [LedgerBlock(i) for i in range(num_blocks)]
    placements: dict[Key, set[int]] = {}

    p_size = math.ceil(total_weight / num_blocks)
    p_card = max(1, num_groups // num_blocks)
    s_cut = max(1, int((p_size / p_card) * partitioner.config.split_cutoff_scale))
    chunk_cap = max(1, max(p_size // 2, min(p_size - 1, 2 * s_cut)))

    split_mask = sizes > s_cut
    split_indices = np.flatnonzero(split_mask)
    small_indices = np.flatnonzero(~split_mask)

    # Phase 1: LPT placement of split keys, diced to chunks.  Chunk ends
    # come from searchsorted over the chain's cumulative weight — the
    # same shortest-prefix-reaching-the-cap rule as the oracle's cursor.
    # The oracle's per-chunk ``min(blocks, ...)`` becomes a heap keyed
    # by the identical (size, cardinality, index) tuple; phase 1 only
    # mutates the popped block, so every heap entry stays current and
    # the pop equals the oracle's min.
    heap = [(b.size, b.cardinality, b.index) for b in blocks]
    heapq.heapify(heap)
    heappop, heappush = heapq.heappop, heapq.heappush
    for gi in split_indices:
        gi = int(gi)
        group = key_groups[gi]
        chain = group.tuples
        placed = placements.setdefault(group.key, set())
        m = len(chain)
        if unit_weights:
            # Unit weights: the shortest prefix reaching the cap is
            # exactly ``chunk_cap`` tuples — no cumulative sum needed.
            start = 0
            while start < m:
                end = min(start + chunk_cap, m)
                ti = heappop(heap)[2]
                target = blocks[ti]
                target.add_segment(group.key, chain, start, end, end - start)
                heappush(heap, (target.size, target.cardinality, ti))
                placed.add(ti)
                start = end
            continue
        if chain_weights is not None:
            cum = np.cumsum(chain_weights[gi])
        else:
            cum = np.cumsum(
                np.fromiter((t.weight for t in chain), dtype=np.int64, count=m)
            )
        start = 0
        base = 0
        while start < m:
            end = min(int(np.searchsorted(cum, base + chunk_cap, side="left")) + 1, m)
            chunk_weight = int(cum[end - 1]) - base
            ti = heappop(heap)[2]
            target = blocks[ti]
            target.add_segment(group.key, chain, start, end, chunk_weight)
            heappush(heap, (target.size, target.cardinality, ti))
            placed.add(ti)
            base = int(cum[end - 1])
            start = end

    # Phase 2: the zigzag deal, one pass per step.  Every pass rebuilds
    # the open-block order (ascending, then reversed — so always
    # descending) from sizes *at the pass boundary*, exactly like the
    # oracle's in-loop rebuild, then deals one key per open block.
    block_sizes = np.fromiter((b.size for b in blocks), dtype=np.int64, count=num_blocks)
    small_sizes = sizes[small_indices]
    num_small = int(small_indices.size)
    targets = np.empty(num_small, dtype=np.int64)
    # Suffix maxima of the (quasi-sorted, so not strictly monotone)
    # small sizes bound the largest key any later pass can deal.
    suffix_max = (
        np.maximum.accumulate(small_sizes[::-1])[::-1] if num_small else small_sizes
    )
    pos = 0
    while pos < num_small:
        open_ixs = np.flatnonzero(block_sizes < p_size)
        remaining = num_small - pos
        if open_ixs.size == 0:
            # All blocks are at capacity and can never reopen: every
            # remaining pass deals the same full descending order.
            tail = np.resize(np.arange(num_blocks)[::-1], remaining)
            targets[pos:] = tail
            break
        deal_order = open_ixs[::-1]
        num_open = int(deal_order.size)
        if remaining > 2 * num_open:
            # Bulk tail: if even the worst case (every later pass deals
            # this suffix's largest key to the fullest open block)
            # cannot close a block before the smalls run out, the open
            # set — hence the deal order — is constant from here on.
            passes = -(-remaining // num_open)
            if (
                int(block_sizes[open_ixs].max())
                + passes * int(suffix_max[pos])
                < p_size
            ):
                tail = np.resize(deal_order, remaining)
                targets[pos:] = tail
                break
        take = min(num_open, remaining)
        sel = deal_order[:take]
        targets[pos : pos + take] = sel
        block_sizes[sel] += small_sizes[pos : pos + take]
        pos += take
    for i in range(num_small):
        group = key_groups[int(small_indices[i])]
        target = int(targets[i])
        blocks[target].install_fragment(
            group.key, group.tuples, int(small_sizes[i])
        )
        placements.setdefault(group.key, set()).add(target)

    # Phase 3: identical by reuse — the oracle's own rebalance pass runs
    # on the segment ledgers, with the split rule in segment space.
    partitioner._rebalance_sizes(
        blocks, placements, p_size, split=split_segment_chain
    )

    split_keys = {
        k: tuple(sorted(ixs)) for k, ixs in placements.items() if len(ixs) > 1
    }
    out_blocks: list[DataBlock] = []
    for ledger in blocks:
        block = ledger.materialize()
        out_blocks.append(block)
        yield block, {k for k in split_keys if k in block}
    return PartitionedBatch(
        info=info,
        blocks=out_blocks,
        split_keys=split_keys,
        partitioner_name="prompt",
    )
