"""CountTree: a balanced BST of per-key frequency counting nodes.

Section 4.1 of the paper keeps "approximate frequency counts of the keys
... in a balanced binary search tree *CountTree*.  Every key in HTable
has a bi-directional pointer to a designated counting node in CountTree."
An in-order traversal at the end of the batch interval yields a
quasi-sorted list of keys by frequency with no dedicated sorting step.

This module implements an AVL tree ordered by ``(count, tiebreak)``.
Each key owns exactly one node; updating a key's count repositions the
node (delete + re-insert), which is the `O(log K)` operation whose
*frequency* the budget mechanism in Algorithm 1 bounds.  The HTable side
holds a direct reference to the node (the "bi-directional pointer"), so
an update never searches for the key.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from .tuples import Key, _order_token

__all__ = ["CountNode", "CountTree"]


class CountNode:
    """A counting node: one per distinct key currently in the tree."""

    __slots__ = ("key", "count", "_token", "left", "right", "parent", "height")

    def __init__(self, key: Key, count: int) -> None:
        self.key = key
        self.count = count
        self._token = _order_token(key)
        self.left: Optional[CountNode] = None
        self.right: Optional[CountNode] = None
        self.parent: Optional[CountNode] = None
        self.height = 1

    def sort_key(self) -> tuple[int, str]:
        return (self.count, self._token)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountNode(key={self.key!r}, count={self.count})"


def _height(node: Optional[CountNode]) -> int:
    return node.height if node is not None else 0


def _update_height(node: CountNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: CountNode) -> int:
    return _height(node.left) - _height(node.right)


class CountTree:
    """AVL tree of :class:`CountNode` ordered by ``(count, key token)``.

    The tree supports:

    - ``insert(key, count) -> CountNode`` — add a new counting node and
      return a handle for later updates.
    - ``update(node, new_count)`` — reposition an existing node.
    - ``remove(node)`` — detach a node.
    - in-order traversal (ascending) and reverse traversal (descending),
      the latter feeding Algorithm 2 which consumes keys largest-first.

    All operations are `O(log K)`.  The tree never stores two nodes for
    one key; that invariant is owned by the accumulator/HTable layer.
    """

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: Optional[CountNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def insert(self, key: Key, count: int = 1) -> CountNode:
        """Insert a new counting node and return its handle."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        node = CountNode(key, count)
        self._insert_node(node)
        self._size += 1
        return node

    def update(self, node: CountNode, new_count: int) -> None:
        """Move ``node`` to the position implied by ``new_count``.

        This is the coarse-grained update Algorithm 1 rations with the
        per-key budget: each call costs one delete plus one insert.
        """
        if new_count < 0:
            raise ValueError(f"count must be non-negative, got {new_count}")
        if new_count == node.count:
            return
        self._detach_node(node)
        node.count = new_count
        node.left = node.right = node.parent = None
        node.height = 1
        self._insert_node(node)

    def remove(self, node: CountNode) -> None:
        """Detach ``node`` from the tree."""
        self._detach_node(node)
        node.left = node.right = node.parent = None
        node.height = 1
        self._size -= 1

    def clear(self) -> None:
        """Drop all nodes (end-of-interval reset in Algorithm 1)."""
        self._root = None
        self._size = 0

    def in_order(self) -> Iterator[CountNode]:
        """Ascending ``(count, key)`` traversal."""
        yield from self._walk(self._root, reverse=False)

    def in_order_desc(self) -> Iterator[CountNode]:
        """Descending traversal — highest-frequency keys first."""
        yield from self._walk(self._root, reverse=True)

    def min_node(self) -> Optional[CountNode]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node

    def max_node(self) -> Optional[CountNode]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node

    # ------------------------------------------------------------------
    # verification helpers (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if AVL or BST invariants are violated."""
        count = self._check(self._root, None)
        assert count == self._size, f"size mismatch: walked {count}, recorded {self._size}"

    def _check(self, node: Optional[CountNode], parent: Optional[CountNode]) -> int:
        if node is None:
            return 0
        assert node.parent is parent, f"broken parent link at {node!r}"
        assert abs(_balance_factor(node)) <= 1, f"unbalanced at {node!r}"
        expected = 1 + max(_height(node.left), _height(node.right))
        assert node.height == expected, f"stale height at {node!r}"
        if node.left is not None:
            assert node.left.sort_key() <= node.sort_key(), "BST order violated (left)"
        if node.right is not None:
            assert node.right.sort_key() >= node.sort_key(), "BST order violated (right)"
        return 1 + self._check(node.left, node) + self._check(node.right, node)

    # ------------------------------------------------------------------
    # AVL internals
    # ------------------------------------------------------------------
    def _walk(self, node: Optional[CountNode], *, reverse: bool) -> Iterator[CountNode]:
        # Iterative traversal: batch key cardinality can reach 100k+
        # (Section 4.1), far past Python's recursion limit.
        stack: list[CountNode] = []
        current = node
        while stack or current is not None:
            while current is not None:
                stack.append(current)
                current = current.right if reverse else current.left
            current = stack.pop()
            yield current
            current = current.left if reverse else current.right

    def _insert_node(self, node: CountNode) -> None:
        if self._root is None:
            self._root = node
            return
        cursor = self._root
        key = node.sort_key()
        while True:
            if key < cursor.sort_key():
                if cursor.left is None:
                    cursor.left = node
                    node.parent = cursor
                    break
                cursor = cursor.left
            else:
                if cursor.right is None:
                    cursor.right = node
                    node.parent = cursor
                    break
                cursor = cursor.right
        self._rebalance_up(node.parent)

    def _detach_node(self, node: CountNode) -> None:
        if node.left is not None and node.right is not None:
            # Swap positions with in-order successor, then delete there.
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            self._swap_nodes(node, successor)
        # node now has at most one child
        child = node.left if node.left is not None else node.right
        parent = node.parent
        if child is not None:
            child.parent = parent
        if parent is None:
            self._root = child
        elif parent.left is node:
            parent.left = child
        else:
            parent.right = child
        self._rebalance_up(parent)

    def _swap_nodes(self, a: CountNode, b: CountNode) -> None:
        """Exchange the tree positions of ``a`` and ``b``.

        We swap positions (not payloads) so that external handles held by
        the HTable stay valid — the whole point of the bi-directional
        pointer design.
        """
        a_parent, a_left, a_right, a_height = a.parent, a.left, a.right, a.height
        b_parent, b_left, b_right, b_height = b.parent, b.left, b.right, b.height

        def relink(parent: Optional[CountNode], old: CountNode, new: CountNode) -> None:
            if parent is None:
                self._root = new
            elif parent.left is old:
                parent.left = new
            else:
                parent.right = new

        if b_parent is a:
            # b is a's direct child
            relink(a_parent, a, b)
            b.parent = a_parent
            a.parent = b
            if a_left is b:
                b.left, b.right = a, a_right
                if a_right is not None:
                    a_right.parent = b
            else:
                b.left, b.right = a_left, a
                if a_left is not None:
                    a_left.parent = b
            a.left, a.right = b_left, b_right
        else:
            relink(a_parent, a, b)
            relink(b_parent, b, a)
            a.parent, b.parent = b_parent, a_parent
            a.left, b.left = b_left, a_left
            a.right, b.right = b_right, a_right
            if a_left is not None:
                a_left.parent = b
            if a_right is not None:
                a_right.parent = b
            if b_left is not None:
                b_left.parent = a
            if b_right is not None:
                b_right.parent = a
        a.height, b.height = b_height, a_height
        if a.left is not None:
            a.left.parent = a
        if a.right is not None:
            a.right.parent = a
        if b.left is not None:
            b.left.parent = b
        if b.right is not None:
            b.right.parent = b

    def _rebalance_up(self, node: Optional[CountNode]) -> None:
        while node is not None:
            _update_height(node)
            balance = _balance_factor(node)
            if balance > 1:
                assert node.left is not None
                if _balance_factor(node.left) < 0:
                    self._rotate_left(node.left)
                node = self._rotate_right(node)
            elif balance < -1:
                assert node.right is not None
                if _balance_factor(node.right) > 0:
                    self._rotate_right(node.right)
                node = self._rotate_left(node)
            node = node.parent

    def _rotate_left(self, node: CountNode) -> CountNode:
        pivot = node.right
        assert pivot is not None
        node.right = pivot.left
        if pivot.left is not None:
            pivot.left.parent = node
        pivot.left = node
        self._replace_in_parent(node, pivot)
        node.parent = pivot
        _update_height(node)
        _update_height(pivot)
        return pivot

    def _rotate_right(self, node: CountNode) -> CountNode:
        pivot = node.left
        assert pivot is not None
        node.left = pivot.right
        if pivot.right is not None:
            pivot.right.parent = node
        pivot.right = node
        self._replace_in_parent(node, pivot)
        node.parent = pivot
        _update_height(node)
        _update_height(pivot)
        return pivot

    def _replace_in_parent(self, old: CountNode, new: CountNode) -> None:
        parent = old.parent
        new.parent = parent
        if parent is None:
            self._root = new
        elif parent.left is old:
            parent.left = new
        else:
            parent.right = new
