"""DEBS 2015 Grand Challenge queries (Section 7.1).

The dataset reports New York taxi trips at drop-off time; the key is
the taxi medallion.  Trip values are ``(fare, distance)`` pairs.

- *DEBS Query 1*: total fare per taxi over a 2-hour window sliding
  every 5 minutes.
- *DEBS Query 2*: total distance per taxi over a 45-minute window
  sliding every minute.

The simulator time-scales the windows (a parameter) so experiments
complete in simulated seconds rather than hours; the relative window/
slide/batch proportions are preserved.
"""

from __future__ import annotations

from typing import Any

from ..core.tuples import Key
from .base import Query, SumAggregator, WindowSpec

__all__ = ["debs_query1", "debs_query2"]


def _fare(key: Key, value: Any) -> float:
    """Map stage of Query 1: project the trip's fare."""
    return value[0]


def _distance(key: Key, value: Any) -> float:
    """Map stage of Query 2: project the trip's distance."""
    return value[1]


def debs_query1(time_scale: float = 1 / 1200.0) -> Query:
    """Total fare per taxi; paper window 2 h / slide 5 min, scaled."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return Query(
        name="debs-q1",
        aggregator=SumAggregator(),
        window=WindowSpec(length=7200.0 * time_scale, slide=300.0 * time_scale),
        map_fn=_fare,
    )


def debs_query2(time_scale: float = 1 / 300.0) -> Query:
    """Total distance per taxi; paper window 45 min / slide 1 min, scaled."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return Query(
        name="debs-q2",
        aggregator=SumAggregator(),
        window=WindowSpec(length=2700.0 * time_scale, slide=60.0 * time_scale),
        map_fn=_distance,
    )
