"""The sharded driver: one router, N engines, M tenants.

:class:`ShardedEngine` fans a multi-tenant union stream across N
independent :class:`~repro.engine.engine.MicroBatchEngine` instances.
Each shard is a full engine — its own partitioner instance, executor
pool, pipeline, fault tolerance, and observability — consuming a
:class:`ShardSource` view that keeps exactly the tenants the
:class:`~repro.engine.sharding.router.RoutingTable` assigns to it.

Execution model: shards run round-robin over the same batch timeline.
The engines share the virtual clock semantics (batch ``k`` spans
``[k*I, (k+1)*I)`` on every shard), so the driver can run them
sequentially and the result is observationally identical to N drivers
ticking in lock-step — all "processing time" comes from the simulated
cost model, not wall-clock interleaving.

Correctness contract (proven by
``tests/engine/test_sharding_equivalence.py``): the union of the shards'
batch-``k`` inputs equals the single-engine batch-``k`` input tenant by
tenant, so merging per-shard window answers with the query's own
``aggregator.merge`` reproduces each tenant's single-engine answers
byte-for-byte — through router strategies, executors, pipeline depths,
shard-scoped faults, and mid-run rebalances.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterable, Mapping, Optional, Sequence

from ...obs import ObservabilityConfig, RunObservability
from ...partitioners import make_partitioner
from ...partitioners.base import Partitioner
from ...queries.base import Query
from ...workloads.source import StreamSource
from ...workloads.tenants import tenant_of
from ..engine import EngineConfig, MicroBatchEngine, RunResult
from ..faults import TaskFaultInjector
from .merge import merge_window_answers, tenant_slice
from .router import Rebalance, RoutingTable, ShardRouter, make_router

__all__ = ["ShardSource", "ShardedEngine", "ShardedRunResult"]

#: boundary tolerance when mapping a timestamp to its batch epoch —
#: sources emit ts >= 0 and generators never land within 1e-9 of a
#: boundary, so this only guards against float-division jitter
_EPOCH_EPS = 1e-9


class ShardSource(StreamSource):
    """One shard's view of the union stream.

    Filters the union to the tenants the routing table assigns to this
    shard in each tuple's *batch epoch* (``floor(ts / batch_interval)``),
    so a rebalanced tenant switches shards exactly at the declared batch
    boundary.  ``reset()`` rewinds the shared union source: shards run
    sequentially, each replaying the identical union stream.
    """

    def __init__(
        self,
        union: StreamSource,
        table: RoutingTable,
        shard: int,
        batch_interval: float,
    ) -> None:
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        self.union = union
        self.table = table
        self.shard = shard
        self.batch_interval = batch_interval
        self.name = f"shard{shard}:{union.name}"

    def _epoch(self, ts: float) -> int:
        return int((ts + _EPOCH_EPS) // self.batch_interval)

    def tuples_between(self, t0: float, t1: float) -> list[Any]:
        shard, table = self.shard, self.table
        return [
            t
            for t in self.union.tuples_between(t0, t1)
            if table.shard_for(tenant_of(t.key), self._epoch(t.ts)) == shard
        ]

    def reset(self) -> None:
        self.union.reset()


@dataclass
class ShardedRunResult:
    """Everything a finished sharded run exposes.

    ``window_answers`` holds the cross-shard merged answers in canonical
    (tenant, key) order; ``shard_results`` keeps each shard's full
    :class:`~repro.engine.engine.RunResult` for per-shard inspection
    (stats, recoveries, executor counters).
    """

    shard_results: tuple[RunResult, ...]
    window_answers: list[dict[Hashable, Any]]
    router_name: str
    num_shards: int
    table: RoutingTable
    tenant_shards: dict[Hashable, tuple[int, ...]]
    observability: Optional[RunObservability] = field(default=None, compare=False)

    @property
    def stable(self) -> bool:
        return all(r.stable for r in self.shard_results)

    def final_window_answer(self) -> dict[Hashable, Any]:
        return self.window_answers[-1] if self.window_answers else {}

    def tenant_answers(self, tenant: Hashable) -> list[dict[Hashable, Any]]:
        """One tenant's slice of every merged window answer."""
        return [tenant_slice(w, tenant) for w in self.window_answers]

    def throughput(self) -> float:
        """Aggregate tuples/sec: the sum of per-shard throughputs."""
        return sum(r.stats.throughput() for r in self.shard_results)

    def total_tuples(self) -> int:
        return sum(
            rec.tuple_count for r in self.shard_results for rec in r.stats.records
        )

    def mean_load(self) -> float:
        """Mean per-shard relative load W (processing time / interval)."""
        loads = [r.stats.mean_load() for r in self.shard_results]
        return sum(loads) / len(loads) if loads else 0.0


class ShardedEngine:
    """Run a multi-tenant stream across N independent engine shards."""

    def __init__(
        self,
        partitioner: str | Partitioner,
        query: Query,
        config: EngineConfig | None = None,
        *,
        num_shards: int,
        router: str | ShardRouter = "hash",
        rebalances: Iterable[Rebalance] = (),
        shard_faults: Iterable[TaskFaultInjector] = (),
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.query = query
        self.config = config or EngineConfig()
        if self.config.batch_sizing is not None:
            raise ValueError(
                "sharded runs require a fixed batch interval; adaptive "
                "batch_sizing would let shards disagree on batch boundaries"
            )
        if self.config.lateness is not None:
            raise ValueError(
                "sharded runs do not support lateness contracts: the "
                "admission watermark would mix tenants and break the "
                "per-tenant differential guarantee"
            )
        self.num_shards = num_shards
        if isinstance(router, str):
            router = make_router(router, num_shards)
        elif router.num_shards != num_shards:
            raise ValueError(
                f"router built for {router.num_shards} shards, engine has "
                f"{num_shards}"
            )
        self.router = router
        self._rebalances: list[Rebalance] = list(rebalances)
        self._shard_faults: dict[int, TaskFaultInjector] = {}
        for injector in shard_faults:
            if injector.shard is None:
                raise ValueError(
                    "shard_faults entries must be shard-scoped — use "
                    "TaskFaultInjector(shard=i) or the kill_shard/"
                    "crash_shard helpers"
                )
            if not 0 <= injector.shard < num_shards:
                raise ValueError(
                    f"fault injector scoped to shard {injector.shard}, but "
                    f"only {num_shards} shards exist"
                )
            if injector.shard in self._shard_faults:
                raise ValueError(
                    f"multiple fault injectors scoped to shard {injector.shard}"
                )
            self._shard_faults[injector.shard] = injector
        # the per-shard partitioner factory: a registry name constructs
        # fresh, an instance is cloned through pickle (every registered
        # partitioner is picklable — the parallel backend requires it)
        if isinstance(partitioner, str):
            self._partitioner_name: Optional[str] = partitioner
            self._partitioner_blob: Optional[bytes] = None
        else:
            self._partitioner_name = None
            self._partitioner_blob = pickle.dumps(partitioner)

    # ------------------------------------------------------------------
    def rebalance(
        self, tenant: Hashable, to_shard: int, *, at_batch: int
    ) -> "ShardedEngine":
        """Declare a tenant migration effective from batch ``at_batch``.

        Must be called before :meth:`run`: the handoff is part of the
        pre-declared routing plan, which is what keeps it deterministic.
        """
        self._rebalances.append(Rebalance(tenant, to_shard, at_batch))
        return self

    def _make_partitioner(self) -> Partitioner:
        if self._partitioner_name is not None:
            return make_partitioner(self._partitioner_name)
        return pickle.loads(self._partitioner_blob)  # type: ignore[arg-type]

    def _shard_config(self) -> EngineConfig:
        base = self.config.observability
        if base is not None and base.enabled:
            # shards keep spans/metrics in memory; the driver rolls them
            # up and honours the caller's export paths once, run-level
            shard_obs: Optional[ObservabilityConfig] = ObservabilityConfig()
        else:
            shard_obs = None
        return replace(self.config, observability=shard_obs)

    # ------------------------------------------------------------------
    def run(self, source: StreamSource, num_batches: int) -> ShardedRunResult:
        """Run all shards over ``source`` (a tenant-tagged union stream)."""
        table = RoutingTable(self.router, self._rebalances)
        shard_config = self._shard_config()
        rollup: Optional[RunObservability] = None
        if self.config.observability is not None and self.config.observability.enabled:
            rollup = RunObservability(self.config.observability)
            rollup.metrics.gauge(
                "prompt_shard_count", "shards in the sharded topology"
            ).set(self.num_shards)
            rollup.metrics.counter(
                "prompt_shard_rebalances_total",
                "tenant migrations declared in the routing plan",
            ).inc(float(len(self._rebalances)))

        results: list[RunResult] = []
        for shard in range(self.num_shards):
            engine = MicroBatchEngine(
                self._make_partitioner(),
                self.query,
                shard_config,
                task_fault_injector=self._shard_faults.get(shard),
            )
            view = ShardSource(source, table, shard, self.config.batch_interval)
            result = engine.run(view, num_batches=num_batches)
            results.append(result)
            if rollup is not None and result.observability is not None:
                rollup.metrics.merge_from(
                    result.observability.metrics,
                    extra_labels={"shard": str(shard)},
                )
                rollup.tracer.spans.extend(result.observability.tracer.spans)

        num_windows = min(len(r.window_answers) for r in results)
        merged = [
            merge_window_answers(
                [r.window_answers[w] for r in results], self.query.aggregator
            )
            for w in range(num_windows)
        ]
        tenant_shards = self._tenant_shards(merged, table, num_batches)
        if rollup is not None:
            rollup.flush()
        return ShardedRunResult(
            shard_results=tuple(results),
            window_answers=merged,
            router_name=self.router.name,
            num_shards=self.num_shards,
            table=table,
            tenant_shards=tenant_shards,
            observability=rollup,
        )

    @staticmethod
    def _tenant_shards(
        merged: Sequence[Mapping[Hashable, Any]],
        table: RoutingTable,
        num_batches: int,
    ) -> dict[Hashable, tuple[int, ...]]:
        """Every shard each observed tenant touched during the run."""
        tenants = sorted(
            {k[0] for w in merged for k in w}, key=lambda t: str(t)
        )
        return {
            t: tuple(
                sorted({table.shard_for(t, b) for b in range(num_batches)})
            )
            for t in tenants
        }
