"""Noise-band regression tracking over the persistent results store.

For every ``(cell, metric)`` trajectory in
``benchmarks/results/results.db`` the current value (latest row at the
current git SHA) is compared against a *noise band* computed from the
prior same-hash rows of the same environment:

    band = median(prior) ± max(k·IQR(prior), rel_floor·|median|, abs_floor)

IQR is the robust spread (75th − 25th percentile), so one historical
outlier cannot widen the band forever; the relative floor keeps
deterministic metrics (IQR = 0) from flagging on harmless jitter.

A value *outside* the band is a **departure**.  Whether a departure is
a *regression* depends on the metric's polarity — latency up is bad,
throughput up is good — resolved by name heuristics
(:func:`metric_direction`).  Departures of unknown polarity are
reported as drift but do not gate, so an artifact adding a new column
can never fail CI by itself.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from statistics import median
from typing import Any, Iterable, Sequence

from ..engine.stats import percentile
from .store import ResultsStore, current_git_sha, environment_hash

__all__ = [
    "NoiseBand",
    "RegressionFinding",
    "find_regressions",
    "metric_direction",
    "noise_band",
]

log = logging.getLogger(__name__)

#: substrings marking a metric where *smaller* is better
_LOWER_IS_BETTER = (
    "latency",
    "seconds",
    "bytes",
    "overhead",
    "queue",
    "wait",
    "stall",
    "bsi",
    "bci",
    "ksr",
    "mpi",
    "fragment",
    "retries",
    "fallback",
    "resurrection",
    "drop",
    "miss",
    "spread",
    "jointscore",
)

#: substrings marking a metric where *larger* is better
_HIGHER_IS_BETTER = (
    "throughput",
    "speedup",
    "tuplespersec",
    "tuples_per_sec",
    "persec",
    "per_sec",
    "rate",
    "stable",
    "win",
    "reduction",
    "identical",
)


def metric_direction(name: str) -> int:
    """Polarity of ``name``: +1 higher-better, -1 lower-better, 0 unknown."""
    folded = name.lower().replace("-", "").replace(" ", "")
    for marker in _LOWER_IS_BETTER:
        if marker in folded:
            return -1
    for marker in _HIGHER_IS_BETTER:
        if marker in folded:
            return +1
    return 0


@dataclass(frozen=True)
class NoiseBand:
    """Per-trajectory tolerance interval from prior same-hash rows."""

    median: float
    iqr: float
    lo: float
    hi: float
    samples: int

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def noise_band(
    values: Sequence[float],
    *,
    k: float = 3.0,
    rel_floor: float = 0.05,
    abs_floor: float = 1e-9,
) -> NoiseBand:
    """``median ± max(k·IQR, rel_floor·|median|, abs_floor)`` over history."""
    if not values:
        raise ValueError("noise_band needs at least one prior sample")
    med = median(values)
    ordered = sorted(values)
    iqr = percentile(ordered, 75.0) - percentile(ordered, 25.0)
    slack = max(k * iqr, rel_floor * abs(med), abs_floor)
    return NoiseBand(
        median=med, iqr=iqr, lo=med - slack, hi=med + slack, samples=len(values)
    )


@dataclass(frozen=True)
class RegressionFinding:
    """One trajectory's verdict against its noise band."""

    config_hash: str
    label: str
    metric: str
    value: float
    band: NoiseBand
    #: "ok" | "improved" | "drifted" | "regressed"
    verdict: str

    @property
    def is_regression(self) -> bool:
        return self.verdict == "regressed"

    @property
    def departed(self) -> bool:
        return self.verdict != "ok"


def _classify(value: float, band: NoiseBand, direction: int) -> str:
    if band.contains(value):
        return "ok"
    if direction == 0:
        return "drifted"
    harmful_high = direction < 0  # lower-is-better ⇒ above the band is bad
    if value > band.hi:
        return "regressed" if harmful_high else "improved"
    return "improved" if harmful_high else "regressed"


def find_regressions(
    store: ResultsStore,
    *,
    git_sha: str | None = None,
    env_hash: str | None = None,
    k: float = 3.0,
    rel_floor: float = 0.05,
    min_history: int = 3,
    include_ok: bool = False,
) -> list[RegressionFinding]:
    """Judge every current-SHA trajectory point against its history.

    The *current* value of a trajectory is its latest row recorded at
    ``git_sha`` (default: the repo's HEAD); *history* is every earlier
    row of the same ``config_hash`` in the same environment but at a
    different SHA.  Trajectories with fewer than ``min_history`` prior
    points are skipped — a brand-new cell has no band to leave.
    """
    sha = git_sha or current_git_sha()
    env = env_hash or environment_hash()
    findings: list[RegressionFinding] = []
    for series in store.trajectories(env_hash=env):
        values: list[float] = series["values"]
        shas: list[str] = series["git_shas"]
        current = None
        for value, row_sha in zip(values, shas):
            if row_sha == sha:
                current = value  # latest current-SHA row wins
        if current is None:
            continue
        prior = [v for v, s in zip(values, shas) if s != sha]
        if len(prior) < min_history:
            continue
        band = noise_band(prior, k=k, rel_floor=rel_floor)
        verdict = _classify(current, band, metric_direction(series["metric"]))
        if verdict == "ok" and not include_ok:
            continue
        findings.append(
            RegressionFinding(
                config_hash=series["config_hash"],
                label=series["label"],
                metric=series["metric"],
                value=current,
                band=band,
                verdict=verdict,
            )
        )
    findings.sort(key=lambda f: (f.verdict != "regressed", f.label, f.metric))
    return findings


def regression_rows(findings: Iterable[RegressionFinding]) -> list[dict[str, Any]]:
    """Table-ready view of findings for ``format_table``."""
    return [
        {
            "Cell": f.label,
            "Metric": f.metric,
            "Value": f.value,
            "Median": f.band.median,
            "BandLo": f.band.lo,
            "BandHi": f.band.hi,
            "History": f.band.samples,
            "Verdict": f.verdict,
        }
        for f in findings
    ]
