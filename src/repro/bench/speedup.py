"""Serial vs parallel execution-backend speedup microbenchmark.

Runs the same seeded Zipf-skew (SynD) workload through the engine once
per backend and compares *real* wall-clock: end-to-end run time plus
the per-task body time the stats layer now records.  Both runs must
produce byte-identical windowed answers — a speedup that changed the
answer would be worthless — so the bench asserts equality before it
reports a single number.

Two workload rows keep the result honest:

- ``wordcount-light`` — the paper's WordCount.  Map bodies are ~1 us
  per tuple, far below process-pool IPC cost, so parallel dispatch
  typically *loses* here; recording that is the point.
- ``wordcount-heavy`` — the same counting query with a deterministic
  CPU-bound map function (:func:`heavy_count_one`), the regime real
  Map tasks (parsing, feature extraction) live in, where fanning one
  task per block across cores pays off.
"""

from __future__ import annotations

import os
import pickle
import time
import zlib
from typing import Any

from ..core.tuples import Key
from ..engine.engine import EngineConfig, MicroBatchEngine, RunResult
from ..partitioners.registry import make_partitioner
from ..queries.base import CountAggregator, Query, WindowSpec
from ..queries.wordcount import count_one
from ..workloads.arrival import ConstantRate
from ..workloads.synd import synd_source

__all__ = ["heavy_count_one", "bench_parallel_speedup"]

#: rounds of crc32 mixing per tuple in the heavy variant (~10 us/tuple)
HEAVY_ROUNDS = 120


def heavy_count_one(key: Key, value: Any) -> int:
    """Count one occurrence after deterministic CPU-bound work.

    Module-level and seed-free so it pickles to worker processes and
    returns the same result under any backend.
    """
    digest = zlib.crc32(repr(key).encode())
    for _ in range(HEAVY_ROUNDS):
        digest = zlib.crc32(digest.to_bytes(4, "little"))
    # The mixing result is discarded by construction — contribution is 1,
    # exactly like WordCount — but the work is real and unoptimizable.
    return 1 if digest >= 0 else 1


def _heavy_wordcount_query(window_length: float) -> Query:
    return Query(
        name="wordcount-heavy",
        aggregator=CountAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=heavy_count_one,
    )


def _timed_run(
    query: Query,
    *,
    executor: str,
    workers: int | None,
    rate: float,
    num_batches: int,
    num_keys: int,
    exponent: float,
    num_blocks: int,
    seed: int,
) -> tuple[float, RunResult]:
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
    )
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=num_blocks,
        num_reducers=num_blocks,
        executor=executor,
        executor_workers=workers,
        run_seed=seed,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), query, config)
    started = time.perf_counter()
    result = engine.run(source, num_batches)
    return time.perf_counter() - started, result


def bench_parallel_speedup(
    *,
    rate: float = 4_000.0,
    num_batches: int = 6,
    num_keys: int = 2_000,
    exponent: float = 1.4,
    num_blocks: int = 8,
    workers: int | None = None,
    seed: int = 11,
) -> list[dict[str, Any]]:
    """Wall-clock comparison rows for serial vs parallel backends.

    Raises ``AssertionError`` if any backend pair disagrees on the
    windowed answers or the (wall-clock-blind) batch records.
    """
    window = 3.0
    workloads = [
        ("wordcount-light", Query(
            name="wordcount",
            aggregator=CountAggregator(),
            window=WindowSpec(length=window, slide=window / 10),
            map_fn=count_one,
        )),
        ("wordcount-heavy", _heavy_wordcount_query(window)),
    ]
    rows: list[dict[str, Any]] = []
    for label, query in workloads:
        runs: dict[str, tuple[float, RunResult]] = {}
        for backend in ("serial", "parallel"):
            runs[backend] = _timed_run(
                query,
                executor=backend,
                workers=workers,
                rate=rate,
                num_batches=num_batches,
                num_keys=num_keys,
                exponent=exponent,
                num_blocks=num_blocks,
                seed=seed,
            )
        (serial_wall, serial_run) = runs["serial"]
        (parallel_wall, parallel_run) = runs["parallel"]
        # Per-window pickles: list-level pickling also encodes object
        # sharing across windows (memo back-references), which differs
        # between backends without any content difference.
        identical = len(serial_run.window_answers) == len(
            parallel_run.window_answers
        ) and all(
            pickle.dumps(s) == pickle.dumps(p)
            for s, p in zip(
                serial_run.window_answers, parallel_run.window_answers
            )
        )
        assert identical, f"{label}: backends disagree on windowed answers"
        assert serial_run.stats.records == parallel_run.stats.records, (
            f"{label}: backends disagree on batch records"
        )
        rows.append(
            {
                "Workload": label,
                "CpuCount": os.cpu_count() or 1,
                "ZipfExponent": exponent,
                "Tuples": serial_run.stats.total_tuples,
                "Batches": num_batches,
                "SerialWallSeconds": serial_wall,
                "ParallelWallSeconds": parallel_wall,
                "Speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
                "SerialTaskSeconds": serial_run.stats.total_task_wall_seconds(),
                "ParallelTaskSeconds": parallel_run.stats.total_task_wall_seconds(),
                "ParallelFallbacks": parallel_run.executor_fallbacks,
                "OutputsIdentical": identical,
            }
        )
    return rows
