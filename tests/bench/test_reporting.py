"""Bench reporting: tables, series, JSON persistence."""

from __future__ import annotations

import json

from repro.bench.reporting import format_series, format_table, results_dir, save_results


def test_format_table_alignment_and_values():
    rows = [
        {"Technique": "prompt", "Throughput": 12345.678},
        {"Technique": "hash", "Throughput": 0.5},
    ]
    text = format_table(rows, title="Fig X")
    lines = text.splitlines()
    assert lines[0] == "Fig X"
    assert "Technique" in lines[1]
    assert "12,346" in text
    assert "0.500" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([])


def test_format_table_selected_columns():
    rows = [{"a": 1, "b": 2}]
    text = format_table(rows, columns=["b"])
    assert "a" not in text.splitlines()[0]


def test_format_table_handles_inf_and_nan():
    text = format_table([{"v": float("inf")}, {"v": float("nan")}])
    assert "inf" in text
    assert "nan" in text


def test_format_table_renders_negative_inf():
    text = format_table([{"v": float("-inf")}])
    assert "-inf" in text


def test_format_table_heterogeneous_rows_union_columns():
    # Later rows may introduce keys the first row lacks: the header must
    # be the ordered union, and missing cells render blank.
    rows = [
        {"a": 1, "b": 2},
        {"a": 3, "c": 4},
    ]
    text = format_table(rows)
    header = text.splitlines()[0]
    assert header.split() == ["a", "b", "c"]
    # row 1 has no "c", row 2 has no "b": both render without raising
    assert "1" in text and "4" in text


def test_format_series():
    text = format_series([(1, 2.0), (2, 4.0)], headers=["batch", "value"])
    assert "batch" in text
    assert "4.000" in text


def test_results_dir_is_inside_repo():
    path = results_dir()
    assert path.name == "results"
    assert path.parent.name == "benchmarks"
    assert path.is_dir()


def test_save_results_roundtrip():
    path = save_results("unittest-sample", {"rows": [1, 2, 3]})
    assert json.loads(path.read_text()) == {"rows": [1, 2, 3]}
    path.unlink()
