"""Variable tuple weights: the paper's 'easily extended' formulation.

Section 4.2: "Without loss of granularity, we assume that the data
tuples are of the same size for simplicity.  However, our problem
formulation can be easily extended to variable tuple sizes."  This
suite exercises that extension end to end: block sizes, capacities,
splits, and metrics must all account for weights, not tuple counts.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchInfo
from repro.core.batch_partitioner import PromptBatchPartitioner
from repro.core.metrics import evaluate_partition
from repro.core.tuples import KeyGroup, StreamTuple
from repro.partitioners import HashPartitioner, ShufflePartitioner

INFO = BatchInfo(0, 0.0, 1.0)


def _weighted_groups(spec: dict) -> list[KeyGroup]:
    """spec: key -> list of tuple weights."""
    groups = [
        KeyGroup(
            key=k,
            tuples=[StreamTuple(ts=0.0, key=k, weight=w) for w in weights],
            tracked_count=sum(weights),
        )
        for k, weights in spec.items()
    ]
    groups.sort(key=lambda g: -g.size)
    return groups


def test_key_group_size_uses_weights():
    [group] = _weighted_groups({"a": [3, 2, 5]})
    assert group.size == 10
    assert group.count == 3


def test_partitioner_balances_by_weight_not_count():
    # one key with few heavy tuples vs many keys with light tuples
    spec = {"heavy": [10] * 6}
    spec.update({f"light{i}": [1] * 4 for i in range(14)})  # 56 light weight
    groups = _weighted_groups(spec)
    batch = PromptBatchPartitioner().partition(groups, 4, INFO)
    total = sum(g.size for g in groups)
    capacity = math.ceil(total / 4)
    # Indivisible tuple weights bound any heuristic at one max-weight
    # tuple of overshoot per block.
    for block in batch.blocks:
        assert block.size <= capacity + 10
    q = evaluate_partition(batch)
    assert q.bsi <= 10  # one heavy tuple of slack at most


def test_heavy_key_splits_on_weight_boundaries():
    groups = _weighted_groups({"whale": [7] * 20, "krill": [1] * 4})
    batch = PromptBatchPartitioner().partition(groups, 4, INFO)
    batch.validate(expected_tuples=24)
    # the whale (140 of 144 weight) cannot fit one block of ~36
    assert "whale" in batch.split_keys
    # weight conservation per key
    whale_weight = sum(
        sum(t.weight for t in b.fragment("whale")) for b in batch.blocks
    )
    assert whale_weight == 140


def test_streaming_partitioners_track_weights_in_block_sizes():
    tuples = [
        StreamTuple(ts=i * 0.01, key=f"k{i}", weight=(i % 5) + 1) for i in range(50)
    ]
    for part in (ShufflePartitioner(), HashPartitioner()):
        batch = part.partition(tuples, 4, INFO)
        assert batch.total_size == sum(t.weight for t in tuples)


@given(
    spec=st.dictionaries(
        st.integers(0, 20),
        st.lists(st.integers(1, 9), min_size=1, max_size=10),
        min_size=1,
        max_size=25,
    ),
    num_blocks=st.integers(1, 6),
)
@settings(max_examples=60, deadline=None)
def test_property_weighted_conservation(spec, num_blocks):
    """No weight is created or destroyed by partitioning."""
    groups = _weighted_groups(spec)
    total = sum(g.size for g in groups)
    batch = PromptBatchPartitioner().partition(groups, num_blocks, INFO)
    assert batch.total_size == total
    for key, weights in spec.items():
        placed = sum(
            sum(t.weight for t in b.fragment(key)) for b in batch.blocks
        )
        assert placed == sum(weights)
