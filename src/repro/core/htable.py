"""HTable: per-key tuple chains plus the auxiliary statistics of Alg. 1.

Section 4.1: "The partitioning key of the incoming data tuples is used
to store the tuples into the hash table ``HTable<K, V>``, where the
value part is a pointer to the list of tuples for every key.  Also,
HTable stores auxiliary statistics for each key, e.g., frequency count
and other parameters that are utilized in the ... update mechanism."

The update-eligibility bookkeeping (``f.step``, ``t.step``, remaining
``budget``, last-updated frequency/time) lives on :class:`KeyRecord`;
the decision logic itself is in :mod:`repro.core.buffering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .count_tree import CountNode
from .tuples import Key, StreamTuple

__all__ = ["KeyRecord", "HTable"]


@dataclass(slots=True)
class KeyRecord:
    """Chain of tuples for one key plus its update-mechanism state."""

    key: Key
    tuples: list[StreamTuple] = field(default_factory=list)
    weight: int = 0
    # --- Algorithm 1 auxiliary statistics ---
    freq_current: int = 0       # exact frequency in this batch
    freq_updated: int = 0       # frequency last reflected into CountTree
    budget_left: int = 0        # remaining CountTree repositionings
    f_step: int = 1             # frequency delta that triggers an update
    t_step: float = 0.0         # time delta that triggers an update
    last_update_time: float = 0.0
    node: Optional[CountNode] = None  # bi-directional pointer to CountTree

    def append(self, t: StreamTuple) -> None:
        self.tuples.append(t)
        self.weight += t.weight
        self.freq_current += 1

    @property
    def pending_delta(self) -> int:
        """Tuples received since the CountTree last saw this key."""
        return self.freq_current - self.freq_updated


class HTable:
    """Hash table of :class:`KeyRecord` keyed by partitioning key."""

    __slots__ = ("_records", "_tuple_count", "_weight")

    def __init__(self) -> None:
        self._records: dict[Key, KeyRecord] = {}
        self._tuple_count = 0
        self._weight = 0

    def __len__(self) -> int:
        """Number of distinct keys (``|K|`` in Algorithm 1)."""
        return len(self._records)

    def __contains__(self, key: Key) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[KeyRecord]:
        return iter(self._records.values())

    @property
    def tuple_count(self) -> int:
        """Total number of tuples received (``N_C`` in Algorithm 1)."""
        return self._tuple_count

    @property
    def weight(self) -> int:
        """Total weight of all buffered tuples."""
        return self._weight

    def get(self, key: Key) -> Optional[KeyRecord]:
        return self._records.get(key)

    def record_for(self, key: Key) -> KeyRecord:
        """Return the record for ``key``, creating it if absent."""
        record = self._records.get(key)
        if record is None:
            record = KeyRecord(key=key)
            self._records[key] = record
        return record

    def append(self, t: StreamTuple) -> tuple[KeyRecord, bool]:
        """Chain ``t`` under its key; return ``(record, was_new)``.

        One dict probe per tuple: the ingest hot path (Algorithm 1 runs
        this for *every* arriving tuple) needs the was-this-key-known
        answer anyway, and a separate ``in`` check would pay the hash
        and lookup twice.
        """
        record = self._records.get(t.key)
        was_new = record is None
        if was_new:
            record = KeyRecord(key=t.key)
            self._records[t.key] = record
        record.append(t)
        self._tuple_count += 1
        self._weight += t.weight
        return record, was_new

    def clear(self) -> None:
        """End-of-interval reset (Algorithm 1, line 1)."""
        self._records.clear()
        self._tuple_count = 0
        self._weight = 0
