"""The packaged Prompt scheme: buffering + Alg 2 + Alg 3 + ablations."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.metrics import evaluate_partition
from repro.core.reduce_allocator import KeyCluster
from repro.core.tuples import StreamTuple
from repro.partitioners import PromptPartitioner

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


def test_partition_places_all_tuples():
    part = PromptPartitioner()
    tuples = make_tuples(zipfish_freqs(30, 600), shuffle_seed=1)
    batch = part.partition(tuples, 4, INFO)
    batch.validate(expected_tuples=len(tuples))
    assert batch.partitioner_name == "prompt"


def test_partition_records_elapsed_time():
    part = PromptPartitioner()
    batch = part.partition(make_tuples({"a": 10}), 2, INFO)
    assert batch.partition_elapsed > 0


def test_last_batch_exposes_accumulator_stats():
    part = PromptPartitioner()
    tuples = make_tuples(zipfish_freqs(10, 100), shuffle_seed=2)
    part.partition(tuples, 2, INFO)
    assert part.last_batch is not None
    assert part.last_batch.tuple_count == len(tuples)
    assert part.last_batch.key_count == 10


def test_post_sort_variant_produces_same_quality():
    tuples = make_tuples(zipfish_freqs(40, 800), shuffle_seed=3)
    normal = PromptPartitioner(exact_updates=True).partition(tuples, 4, INFO)
    postsort = PromptPartitioner(post_sort=True).partition(tuples, 4, INFO)
    q_n = evaluate_partition(normal)
    q_p = evaluate_partition(postsort)
    # exact-update buffering and post-sort see identically-sorted input
    assert q_p.bsi == pytest.approx(q_n.bsi, abs=2)
    assert q_p.ksr == pytest.approx(q_n.ksr, abs=0.05)
    assert postsort.partitioner_name == "prompt-postsort"


def test_post_sort_pays_heartbeat_overhead():
    tuples = make_tuples({f"k{i}": 2 for i in range(200)}, shuffle_seed=4)
    fast = PromptPartitioner()
    slow = PromptPartitioner(post_sort=True)
    fast_batch = fast.partition(tuples, 4, INFO)
    slow_batch = slow.partition(tuples, 4, INFO)
    assert fast.heartbeat_overhead(fast_batch) == 0.0
    assert slow.heartbeat_overhead(slow_batch) > 0.0


def test_heartbeat_overhead_zero_for_empty_batch():
    part = PromptPartitioner(post_sort=True)
    batch = part.partition([], 2, INFO)
    assert part.heartbeat_overhead(batch) == 0.0


def test_allocate_reduce_uses_algorithm3():
    part = PromptPartitioner()
    clusters = [KeyCluster(key=f"k{i}", size=10 - i) for i in range(8)]
    out = part.allocate_reduce(clusters, split_keys=set(), num_buckets=4)
    counts = [0] * 4
    for b in out.assignment.values():
        counts[b] += 1
    assert counts == [2, 2, 2, 2]  # retirement: even cluster counts


def test_partition_accumulated_fast_path():
    part = PromptPartitioner()
    part.accumulator.start_interval(INFO)
    for t in make_tuples({"a": 6, "b": 3}):
        part.accumulator.accept(t)
    accumulated = part.accumulator.finalize()
    batch = part.partition_accumulated(accumulated, 3)
    batch.validate(expected_tuples=9)
    assert part.last_batch is accumulated


def test_reset_clears_last_batch():
    part = PromptPartitioner()
    part.partition(make_tuples({"a": 3}), 2, INFO)
    part.reset()
    assert part.last_batch is None


def test_uses_accumulator_flag():
    assert PromptPartitioner.uses_accumulator is True


def test_consecutive_batches_are_independent():
    part = PromptPartitioner()
    b1 = part.partition(make_tuples({"a": 10}), 2, INFO)
    info2 = BatchInfo(1, 1.0, 2.0)
    b2 = part.partition(make_tuples({"b": 4}, start=1.0), 2, info2)
    assert b1.distinct_keys() == {"a"}
    assert b2.distinct_keys() == {"b"}
