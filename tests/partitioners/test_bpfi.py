"""Reference B-BPFI solvers: FFD, FragMin, bounds, exact search."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioners.bpfi import (
    assignment_cardinalities,
    assignment_fragments,
    assignment_sizes,
    exact_min_fragments,
    first_fit_decreasing,
    fragment_lower_bound,
    fragmentation_minimization,
)

FIG5 = [("K1", 150), ("K2", 80), ("K3", 50), ("K4", 40),
        ("K5", 25), ("K6", 20), ("K7", 12), ("K8", 8)]


def _check_feasible(items, assignment, num_bins, capacity):
    assert len(assignment) == num_bins
    placed = {}
    for b in assignment:
        for key, size in b.items():
            placed[key] = placed.get(key, 0) + size
        assert sum(b.values()) <= capacity
    assert placed == dict(items)


@pytest.mark.parametrize("solver", [first_fit_decreasing, fragmentation_minimization])
def test_solvers_produce_feasible_assignments(solver):
    assignment = solver(FIG5, 4, 97)
    _check_feasible(FIG5, assignment, 4, 97)


@pytest.mark.parametrize("solver", [first_fit_decreasing, fragmentation_minimization])
def test_solvers_reject_infeasible_instance(solver):
    with pytest.raises(ValueError, match="infeasible"):
        solver([("a", 100)], 2, 10)


@pytest.mark.parametrize("solver", [first_fit_decreasing, fragmentation_minimization])
def test_solvers_validate_params(solver):
    with pytest.raises(ValueError):
        solver([("a", 1)], 0, 10)
    with pytest.raises(ValueError):
        solver([("a", 1)], 2, 0)
    with pytest.raises(ValueError):
        solver([("a", 0)], 2, 10)


def test_ffd_fills_bins_nearly_completely():
    assignment = first_fit_decreasing(FIG5, 4, 97)
    sizes = assignment_sizes(assignment)
    assert sizes[0] == 97  # first bin topped up


def test_fragmin_concentrates_cardinality():
    """FragMin packs big consecutive items together: unbalanced key counts."""
    assignment = fragmentation_minimization(FIG5, 4, 97)
    cards = assignment_cardinalities(assignment)
    assert max(cards) - min(cards) >= 2


def test_fragment_counts_and_helpers():
    assignment = [{"a": 5, "b": 2}, {"b": 3}]
    assert assignment_fragments(assignment) == 3
    assert assignment_sizes(assignment) == [7, 3]
    assert assignment_cardinalities(assignment) == [2, 1]


def test_lower_bound_on_fig5():
    lb = fragment_lower_bound(FIG5, 4, 97)
    # K1=150 needs >= 2 bins; everyone else >= 1 -> at least 9
    assert lb == 9
    for solver in (first_fit_decreasing, fragmentation_minimization):
        assert assignment_fragments(solver(FIG5, 4, 97)) >= lb


def test_lower_bound_oversize_item():
    lb = fragment_lower_bound([("big", 25)], 3, 10)
    assert lb == math.ceil(25 / 10)


def test_exact_min_fragments_tiny_instances():
    # trivially packable: one item per bin
    assert exact_min_fragments([("a", 5), ("b", 5)], 2, 5) == 2
    # forced split
    assert exact_min_fragments([("a", 10)], 2, 5) == 2
    # no whole packing exists (3+3 > 5): one split is forced
    assert exact_min_fragments([("a", 4), ("b", 3), ("c", 3)], 2, 5) == 4
    # whole packing exists
    assert exact_min_fragments([("a", 4), ("b", 3), ("c", 3)], 2, 7) == 3


def test_exact_matches_lower_bound_on_fig5():
    exact = exact_min_fragments(FIG5, 4, 97)
    assert exact >= fragment_lower_bound(FIG5, 4, 97)
    assert exact <= assignment_fragments(first_fit_decreasing(FIG5, 4, 97))


def test_exact_node_limit():
    items = [(f"k{i}", 7) for i in range(12)]
    with pytest.raises(RuntimeError):
        exact_min_fragments(items, 4, 25, node_limit=5)


@given(
    sizes=st.lists(st.integers(1, 30), min_size=1, max_size=20),
    num_bins=st.integers(1, 5),
)
@settings(max_examples=60, deadline=None)
def test_property_solvers_feasible_on_random_instances(sizes, num_bins):
    items = [(f"k{i}", s) for i, s in enumerate(sizes)]
    capacity = max(1, math.ceil(sum(sizes) / num_bins))
    for solver in (first_fit_decreasing, fragmentation_minimization):
        assignment = solver(items, num_bins, capacity)
        _check_feasible(items, assignment, num_bins, capacity)
        assert assignment_fragments(assignment) >= fragment_lower_bound(
            items, num_bins, capacity
        )


@given(
    sizes=st.lists(st.integers(1, 12), min_size=1, max_size=6),
    num_bins=st.integers(1, 3),
)
@settings(max_examples=40, deadline=None)
def test_property_exact_never_beaten_by_heuristics(sizes, num_bins):
    items = [(f"k{i}", s) for i, s in enumerate(sizes)]
    capacity = max(1, math.ceil(sum(sizes) / num_bins))
    exact = exact_min_fragments(items, num_bins, capacity)
    assert exact >= fragment_lower_bound(items, num_bins, capacity)
    for solver in (first_fit_decreasing, fragmentation_minimization):
        assert exact <= assignment_fragments(solver(items, num_bins, capacity))
