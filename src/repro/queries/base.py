"""Streaming query model: Map/Reduce functions over windowed batches.

Section 2.1: a streaming query compiles into a Map-Reduce execution
graph applied to every micro-batch; the Map stage is
``Map(k, v1) -> (k, List(V))`` — it transforms/filters values but keeps
the partitioning key — and the Reduce stage aggregates per key.  The
query answer aggregates all batch outputs inside the window, with
expired batches removed *incrementally* through an inverse Reduce
function (Figure 3), avoiding recomputation.

We express the per-key computation as an :class:`Aggregator` (zero /
add / merge / inverse), which gives the engine everything it needs:
map-side partial aggregation, reduce-side merging across Map fragments,
and window retraction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.tuples import Key

__all__ = [
    "Aggregator",
    "SumAggregator",
    "CountAggregator",
    "SumCountAggregator",
    "WindowSpec",
    "Query",
]


class Aggregator(abc.ABC):
    """An invertible, commutative per-key aggregation.

    ``merge`` must be associative and commutative (Map fragments arrive
    in arbitrary order); ``inverse`` must satisfy
    ``inverse(merge(a, b), b) == a`` — the inverse-Reduce property the
    paper relies on for sliding windows (Sections 2.1, 7).
    """

    @abc.abstractmethod
    def zero(self) -> Any:
        """The identity element."""

    @abc.abstractmethod
    def add(self, acc: Any, value: Any) -> Any:
        """Fold one mapped value into an accumulator."""

    @abc.abstractmethod
    def merge(self, a: Any, b: Any) -> Any:
        """Combine two accumulators."""

    @abc.abstractmethod
    def inverse(self, a: Any, b: Any) -> Any:
        """Remove accumulator ``b``'s contribution from ``a``."""

    def finalize(self, acc: Any) -> Any:
        """Turn an accumulator into a result value (default: itself)."""
        return acc


class SumAggregator(Aggregator):
    """Numeric sum — WordCount, DEBS fares/distances, TPC-H quantities."""

    def zero(self) -> float:
        return 0

    def add(self, acc: float, value: float) -> float:
        return acc + value

    def merge(self, a: float, b: float) -> float:
        return a + b

    def inverse(self, a: float, b: float) -> float:
        return a - b


class CountAggregator(Aggregator):
    """Occurrence count, ignoring the mapped value."""

    def zero(self) -> int:
        return 0

    def add(self, acc: int, value: Any) -> int:
        return acc + 1

    def merge(self, a: int, b: int) -> int:
        return a + b

    def inverse(self, a: int, b: int) -> int:
        return a - b


class SumCountAggregator(Aggregator):
    """(sum, count) pairs — finalizes to the mean (GCM resource averages)."""

    def zero(self) -> tuple[float, int]:
        return (0.0, 0)

    def add(self, acc: tuple[float, int], value: float) -> tuple[float, int]:
        return (acc[0] + value, acc[1] + 1)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def inverse(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] - b[0], a[1] - b[1])

    def finalize(self, acc: tuple[float, int]) -> float:
        total, count = acc
        return total / count if count else 0.0


@dataclass(frozen=True, slots=True)
class WindowSpec:
    """A sliding (or, when ``slide == length``, tumbling) time window."""

    length: float
    slide: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"window length must be positive, got {self.length}")
        if self.slide <= 0:
            raise ValueError(f"window slide must be positive, got {self.slide}")
        if self.slide > self.length:
            raise ValueError("slide must not exceed window length")

    @property
    def is_tumbling(self) -> bool:
        return self.slide == self.length

    def batches_per_window(self, batch_interval: float) -> int:
        """How many consecutive batches one window spans."""
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        return max(1, round(self.length / batch_interval))


@dataclass(frozen=True)
class Query:
    """A compiled streaming query.

    ``map_fn`` transforms one tuple's value (the key is fixed by the
    partitioning schema); returning ``None`` filters the tuple out.
    ``aggregator`` defines the Reduce (and inverse-Reduce) semantics.
    """

    name: str
    aggregator: Aggregator
    window: Optional[WindowSpec] = None
    map_fn: Optional[Callable[[Key, Any], Any]] = None
    #: Algebraic aggregations combine map-side: each Map task ships one
    #: partial record per key fragment instead of the raw values list
    #: (Spark's reduceByKey behaviour).  Holistic queries set this False
    #: and ship full value lists, so cluster sizes stay proportional to
    #: tuple counts.
    map_side_combine: bool = True

    def map_value(self, key: Key, value: Any) -> Any:
        """Apply the Map-stage value transform; None filters the tuple."""
        if self.map_fn is None:
            return value
        return self.map_fn(key, value)

    def reference_output(self, tuples) -> dict[Key, Any]:
        """Ground-truth per-key aggregate over raw tuples (test oracle).

        Computes the batch answer directly, bypassing partitioning,
        tasks, and shuffle — what any correct execution must equal.
        """
        out: dict[Key, Any] = {}
        for t in tuples:
            mapped = self.map_value(t.key, t.value)
            if mapped is None:
                continue
            acc = out.get(t.key)
            if acc is None:
                acc = self.aggregator.zero()
            out[t.key] = self.aggregator.add(acc, mapped)
        return out
