"""Aggregator algebra: associativity, commutativity, inverses."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.base import (
    CountAggregator,
    SumAggregator,
    SumCountAggregator,
)

AGGS = [SumAggregator(), CountAggregator(), SumCountAggregator()]


def _fold(agg, values):
    acc = agg.zero()
    for v in values:
        acc = agg.add(acc, v)
    return acc


def test_sum_aggregator():
    agg = SumAggregator()
    assert _fold(agg, [1, 2, 3]) == 6
    assert agg.merge(4, 5) == 9
    assert agg.inverse(9, 5) == 4
    assert agg.finalize(7) == 7


def test_count_aggregator_ignores_values():
    agg = CountAggregator()
    assert _fold(agg, ["x", None, 3.5]) == 3
    assert agg.merge(2, 5) == 7
    assert agg.inverse(7, 5) == 2


def test_sum_count_aggregator_finalizes_to_mean():
    agg = SumCountAggregator()
    acc = _fold(agg, [2.0, 4.0, 6.0])
    assert acc == (12.0, 3)
    assert agg.finalize(acc) == pytest.approx(4.0)
    assert agg.finalize(agg.zero()) == 0.0


@pytest.mark.parametrize("agg", AGGS, ids=lambda a: type(a).__name__)
def test_zero_is_merge_identity(agg):
    acc = _fold(agg, [1, 2])
    assert agg.merge(acc, agg.zero()) == acc
    assert agg.merge(agg.zero(), acc) == acc


@pytest.mark.parametrize("agg", AGGS, ids=lambda a: type(a).__name__)
def test_inverse_cancels_merge(agg):
    a = _fold(agg, [1, 2, 3])
    b = _fold(agg, [4, 5])
    assert agg.inverse(agg.merge(a, b), b) == a


@given(chunks=st.lists(st.lists(st.integers(-50, 50), max_size=8), min_size=2, max_size=6))
@settings(max_examples=60, deadline=None)
def test_property_merge_is_order_insensitive_for_sum(chunks):
    agg = SumAggregator()
    partials = [_fold(agg, chunk) for chunk in chunks]
    fwd = agg.zero()
    for p in partials:
        fwd = agg.merge(fwd, p)
    bwd = agg.zero()
    for p in reversed(partials):
        bwd = agg.merge(bwd, p)
    assert fwd == bwd == _fold(agg, [v for c in chunks for v in c])


@given(
    values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=20),
    split=st.integers(0, 20),
)
@settings(max_examples=60, deadline=None)
def test_property_sumcount_merge_inverse_roundtrip(values, split):
    agg = SumCountAggregator()
    cut = min(split, len(values))
    a = _fold(agg, values[:cut])
    b = _fold(agg, values[cut:])
    merged = agg.merge(a, b)
    back = agg.inverse(merged, b)
    assert back[0] == pytest.approx(a[0], abs=1e-6)
    assert back[1] == a[1]
