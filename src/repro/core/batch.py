"""Micro-batch, data block, and block reference-table model.

A *micro-batch* is the set of tuples buffered over one batch interval
(Section 1).  The batching phase partitions it into ``p`` *data blocks*,
one per Map task.  Section 5: "each data block is equipped with a
reference table.  In this table, keys that exist in the data block are
labeled to indicate if they are split over other data blocks" — Map
tasks use that label to route split keys by hashing (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .tuples import Key, StreamTuple

__all__ = ["DataBlock", "PartitionedBatch", "BatchInfo"]


@dataclass(frozen=True, slots=True)
class BatchInfo:
    """Identity and bounds of one micro-batch."""

    index: int
    t_start: float
    t_end: float

    @property
    def interval(self) -> float:
        return self.t_end - self.t_start


class DataBlock:
    """One partition of a micro-batch: the input of a single Map task.

    Tuples are stored grouped by key (*key fragments*, Section 3.3); the
    block tracks its total tuple weight and key cardinality in O(1).
    """

    __slots__ = ("index", "_fragments", "_fragment_weights", "_weight")

    def __init__(self, index: int) -> None:
        self.index = index
        self._fragments: dict[Key, list[StreamTuple]] = {}
        self._fragment_weights: dict[Key, int] = {}
        self._weight = 0

    # -- mutation -------------------------------------------------------
    def add_fragment(self, key: Key, tuples: Sequence[StreamTuple]) -> None:
        """Append ``tuples`` to this block's fragment of ``key``."""
        if not tuples:
            return
        weight = sum(t.weight for t in tuples)
        chain = self._fragments.get(key)
        if chain is None:
            self._fragments[key] = list(tuples)
            self._fragment_weights[key] = weight
        else:
            chain.extend(tuples)
            self._fragment_weights[key] += weight
        self._weight += weight

    def add_tuple(self, t: StreamTuple) -> None:
        self.add_fragment(t.key, (t,))

    def install_fragment(
        self, key: Key, tuples: Sequence[StreamTuple], weight: int
    ) -> None:
        """``add_fragment`` with a caller-vouched total ``weight``.

        The batch kernels already hold every fragment's exact weight
        (from vectorized sums), so re-summing ``t.weight`` per tuple
        here would re-pay the per-tuple Python cost the kernels exist
        to remove.  The caller is trusted; a wrong weight corrupts the
        block's size bookkeeping.
        """
        if not tuples:
            return
        chain = self._fragments.get(key)
        if chain is None:
            self._fragments[key] = list(tuples)
            self._fragment_weights[key] = weight
        else:
            chain.extend(tuples)
            self._fragment_weights[key] += weight
        self._weight += weight

    def remove_fragment(self, key: Key) -> list[StreamTuple]:
        """Detach and return this block's fragment of ``key``."""
        chain = self._fragments.pop(key, None)
        if chain is None:
            return []
        self._weight -= self._fragment_weights.pop(key)
        return chain

    # -- inspection ------------------------------------------------------
    @property
    def size(self) -> int:
        """Total tuple weight in the block (``|Block|`` in Eqn. 2)."""
        return self._weight

    @property
    def cardinality(self) -> int:
        """Distinct keys in the block (``||Block||`` in Eqn. 4)."""
        return len(self._fragments)

    @property
    def keys(self) -> Iterable[Key]:
        return self._fragments.keys()

    def fragment(self, key: Key) -> list[StreamTuple]:
        return self._fragments.get(key, [])

    def fragment_sizes(self) -> dict[Key, int]:
        """Per-key total weight inside this block (O(1) per key, cached)."""
        return dict(self._fragment_weights)

    def tuples(self) -> Iterator[StreamTuple]:
        for chain in self._fragments.values():
            yield from chain

    def tuple_count(self) -> int:
        return sum(len(chain) for chain in self._fragments.values())

    def __contains__(self, key: Key) -> bool:
        return key in self._fragments

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DataBlock(index={self.index}, size={self.size}, "
            f"cardinality={self.cardinality})"
        )


@dataclass(slots=True)
class PartitionedBatch:
    """The output of the batching phase: blocks + split-key reference table.

    ``split_keys`` maps every key that was fragmented over 2+ blocks to
    the sorted tuple of block indexes holding its fragments — the
    "reference table" each block carries into the processing phase.
    """

    info: BatchInfo
    blocks: list[DataBlock]
    split_keys: dict[Key, tuple[int, ...]] = field(default_factory=dict)
    partitioner_name: str = ""
    #: measured wall-clock of the buffering pass (Algorithm 1 work the
    #: partitioner performed at the partition call; 0.0 for techniques
    #: that buffer nothing)
    buffer_elapsed: float = 0.0
    #: measured wall-clock of the partition-planning pass (Algorithm 2
    #: for Prompt; the heartbeat sort + plan in the post-sort ablation)
    plan_elapsed: float = 0.0

    @property
    def partition_elapsed(self) -> float:
        """Total driver-side partitioning wall-clock (buffer + plan).

        Figure-14-style overhead attribution should read the split
        ``buffer_elapsed`` / ``plan_elapsed`` fields directly; the
        Early-Batch-Release slack audit compares ``plan_elapsed`` alone
        (only Algorithm 2 must hide inside the slack).
        """
        return self.buffer_elapsed + self.plan_elapsed

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_size(self) -> int:
        return sum(b.size for b in self.blocks)

    @property
    def total_tuples(self) -> int:
        return sum(b.tuple_count() for b in self.blocks)

    def distinct_keys(self) -> set[Key]:
        keys: set[Key] = set()
        for block in self.blocks:
            keys.update(block.keys)
        return keys

    def is_split(self, key: Key) -> bool:
        """Whether ``key``'s tuples live in more than one block."""
        return key in self.split_keys

    def key_fragment_count(self) -> int:
        """Total number of (key, block) fragments across all blocks."""
        return sum(block.cardinality for block in self.blocks)

    def compute_split_keys(self) -> None:
        """Rebuild ``split_keys`` from block contents.

        Partitioners that assign tuple-at-a-time (shuffle, PK2/PK5, ...)
        do not track splits as they go; they call this once at the end.
        """
        placements: dict[Key, list[int]] = {}
        for block in self.blocks:
            for key in block.keys:
                placements.setdefault(key, []).append(block.index)
        self.split_keys = {
            k: tuple(sorted(ixs)) for k, ixs in placements.items() if len(ixs) > 1
        }

    def validate(self, expected_tuples: int | None = None) -> None:
        """Sanity-check structural invariants (used by tests and harness)."""
        seen = self.total_tuples
        if expected_tuples is not None and seen != expected_tuples:
            raise AssertionError(
                f"partitioned batch holds {seen} tuples, expected {expected_tuples}"
            )
        for key, block_ixs in self.split_keys.items():
            if len(block_ixs) < 2:
                raise AssertionError(f"split key {key!r} lists {block_ixs}")
            for ix in block_ixs:
                if key not in self.blocks[ix]:
                    raise AssertionError(
                        f"split key {key!r} missing from block {ix}"
                    )
