"""Back-pressure signal and the stability criterion."""

from __future__ import annotations

import pytest

from repro.engine.backpressure import (
    BackpressureConfig,
    BackpressureMonitor,
    run_is_stable,
)
from repro.engine.stats import BatchRecord, RunStats


def _record(index, processing, interval=1.0, queue=0.0):
    heartbeat = (index + 1) * interval
    start = heartbeat + queue
    return BatchRecord(
        index=index,
        t_start=index * interval,
        heartbeat=heartbeat,
        ready_at=heartbeat,
        exec_start=start,
        exec_finish=start + processing,
        processing_time=processing,
        tuple_count=100,
        key_count=10,
        map_tasks=4,
        reduce_tasks=4,
        map_durations=(processing,),
        reduce_durations=(0.0,),
        bucket_weights=(100,),
    )


def test_monitor_quiet_under_light_load():
    monitor = BackpressureMonitor()
    for i in range(10):
        assert not monitor.observe(i, load=0.5, queue_delay=0.0, batch_interval=1.0)
    assert not monitor.triggered


def test_monitor_trips_on_queue_delay():
    monitor = BackpressureMonitor(BackpressureConfig(max_queue_intervals=1.0, warmup_batches=0))
    assert monitor.observe(0, load=0.5, queue_delay=1.5, batch_interval=1.0)
    assert monitor.triggered
    assert monitor.triggered_at == 0


def test_monitor_trips_on_sustained_overload():
    monitor = BackpressureMonitor(BackpressureConfig(warmup_batches=1))
    assert not monitor.observe(0, load=5.0, queue_delay=0.0, batch_interval=1.0)  # warmup
    fired = [monitor.observe(i, load=1.2, queue_delay=0.0, batch_interval=1.0) for i in range(1, 4)]
    assert any(fired)


def test_monitor_ignores_warmup_spike():
    monitor = BackpressureMonitor(BackpressureConfig(warmup_batches=2))
    monitor.observe(0, load=3.0, queue_delay=5.0, batch_interval=1.0)
    monitor.observe(1, load=3.0, queue_delay=5.0, batch_interval=1.0)
    assert not monitor.triggered
    for i in range(2, 8):
        monitor.observe(i, load=0.5, queue_delay=0.0, batch_interval=1.0)
    assert not monitor.triggered


def test_monitor_stays_triggered():
    monitor = BackpressureMonitor(BackpressureConfig(warmup_batches=0))
    monitor.observe(0, load=0.1, queue_delay=9.0, batch_interval=1.0)
    assert monitor.observe(1, load=0.1, queue_delay=0.0, batch_interval=1.0)
    assert monitor.triggered_at == 0


def test_config_validation():
    with pytest.raises(ValueError):
        BackpressureConfig(max_queue_intervals=-1)
    with pytest.raises(ValueError):
        BackpressureConfig(max_mean_load=0.0)
    with pytest.raises(ValueError):
        BackpressureConfig(warmup_batches=-1)


def test_run_is_stable_post_hoc():
    stats = RunStats(batch_interval=1.0)
    for i in range(6):
        stats.add(_record(i, processing=0.5))
    assert run_is_stable(stats)

    overloaded = RunStats(batch_interval=1.0)
    for i in range(6):
        overloaded.add(_record(i, processing=1.5, queue=float(i)))
    assert not run_is_stable(overloaded)
