"""Name-based construction of partitioning techniques.

The evaluation harness refers to techniques by the names used in the
paper's figures: ``time``, ``shuffle``, ``hash``, ``pk2``, ``pk5``,
``cam``, ``prompt`` (plus ablation variants ``prompt-postsort`` and
``prompt-exact``).
"""

from __future__ import annotations

from typing import Callable

from .base import Partitioner
from .cam import CAMPartitioner
from .fang import FangRepartitioner
from .hashing import HashPartitioner
from .heavy_split import HeavyHitterSplitPartitioner
from .key_split import (
    DChoicesPartitioner,
    PK2Partitioner,
    PK5Partitioner,
    WChoicesPartitioner,
)
from .prompt import PromptPartitioner
from .shuffle import ShufflePartitioner
from .time_based import TimeBasedPartitioner

__all__ = ["PARTITIONER_NAMES", "make_partitioner", "all_paper_techniques"]

_FACTORIES: dict[str, Callable[[], Partitioner]] = {
    "time": TimeBasedPartitioner,
    "shuffle": ShufflePartitioner,
    "hash": HashPartitioner,
    "pk2": PK2Partitioner,
    "pk5": PK5Partitioner,
    "pkh": HeavyHitterSplitPartitioner,
    "d-choices": DChoicesPartitioner,
    "w-choices": WChoicesPartitioner,
    "fang": FangRepartitioner,
    "cam": CAMPartitioner,
    "prompt": PromptPartitioner,
    "prompt-postsort": lambda: PromptPartitioner(post_sort=True),
    "prompt-exact": lambda: PromptPartitioner(exact_updates=True),
    "prompt-zigzag": lambda: PromptPartitioner(strategy="zigzag"),
    "prompt-sketch": lambda: PromptPartitioner(stats="sketch"),
}

PARTITIONER_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def make_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a technique by its figure name.

    Keyword arguments are forwarded to the constructor (e.g.
    ``make_partitioner("cam", d=8)``); names with no parameters reject
    unexpected kwargs naturally.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown partitioner {name!r}; known: {known}") from None
    if kwargs:
        if name in ("prompt-postsort", "prompt-exact", "prompt-zigzag", "prompt-sketch"):
            raise ValueError(f"{name!r} takes no keyword arguments")
        return _FACTORIES[name](**kwargs)  # type: ignore[call-arg]
    return factory()


def all_paper_techniques() -> list[Partitioner]:
    """The seven techniques compared throughout Section 7."""
    return [make_partitioner(n) for n in ("time", "shuffle", "hash", "pk2", "pk5", "cam", "prompt")]
