"""Technique registry: names, construction, kwargs routing."""

from __future__ import annotations

import pytest

from repro.partitioners import (
    PARTITIONER_NAMES,
    Partitioner,
    all_paper_techniques,
    make_partitioner,
)
from repro.partitioners.cam import CAMPartitioner
from repro.partitioners.prompt import PromptPartitioner


def test_all_names_construct():
    for name in PARTITIONER_NAMES:
        part = make_partitioner(name)
        assert isinstance(part, Partitioner)


def test_names_cover_paper_techniques():
    assert {"time", "shuffle", "hash", "pk2", "pk5", "cam", "prompt"} <= set(
        PARTITIONER_NAMES
    )


def test_ablation_variants_present():
    assert make_partitioner("prompt-postsort").post_sort is True
    assert make_partitioner("prompt-exact").accumulator.exact_updates is True
    assert (
        make_partitioner("prompt-zigzag").batch_partitioner.strategy == "zigzag"
    )


def test_unknown_name_raises_with_known_list():
    with pytest.raises(ValueError, match="unknown partitioner"):
        make_partitioner("nope")


def test_kwargs_forwarded():
    cam = make_partitioner("cam", d=8, gamma=0.5)
    assert isinstance(cam, CAMPartitioner)
    assert cam.d == 8
    assert cam.gamma == 0.5


def test_kwargs_rejected_for_fixed_variants():
    with pytest.raises(ValueError):
        make_partitioner("prompt-postsort", d=3)


def test_all_paper_techniques_order_and_count():
    techs = all_paper_techniques()
    assert [t.name for t in techs] == [
        "time", "shuffle", "hash", "pk2", "pk5", "cam", "prompt"
    ]
    assert isinstance(techs[-1], PromptPartitioner)


def test_each_call_returns_fresh_instance():
    assert make_partitioner("prompt") is not make_partitioner("prompt")
