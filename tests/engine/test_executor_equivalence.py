"""Differential harness: the parallel backend is bit-identical to serial.

The executor layer's whole contract is that *how* tasks are dispatched
never leaks into *what* the engine computes.  Every case here runs the
same seeded workload twice — once under :class:`SerialExecutor`, once
under :class:`ParallelExecutor` — and requires

- byte-identical windowed answers (compared as pickled bytes, so key
  order and value types match exactly, not just dict equality),
- equal ``RunStats`` records (wall-clock/backend fields are excluded
  from ``BatchRecord`` equality by design — everything else must match
  field for field),
- identical scaling decisions, backpressure verdicts and recoveries.

Coverage crosses three workloads (Zipf-skew SynD at two exponents,
the tweets trace) with engine option combinations: elasticity on/off,
early release slack, backpressure thresholds, topology-priced
shuffles, and both the accumulator (prompt) and heartbeat-cut (hash)
partitioning paths.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import EarlyReleaseConfig, ElasticityConfig
from repro.engine.backpressure import BackpressureConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.tasks import TaskCostModel
from repro.obs import ObservabilityConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source, tweets_source

NUM_BATCHES = 5

WORKLOADS = {
    "synd-mild": lambda: synd_source(
        0.6, num_keys=400, arrival=ConstantRate(1_200.0), seed=5
    ),
    "synd-skewed": lambda: synd_source(
        1.6, num_keys=400, arrival=ConstantRate(1_200.0), seed=7
    ),
    "tweets": lambda: tweets_source(rate=1_000.0, seed=42),
}

CONFIGS = {
    "base": dict(),
    "elastic": dict(
        cluster=ClusterConfig(num_nodes=4, cores_per_node=4),
        cost_model=TaskCostModel(
            map_fixed=0.05, reduce_fixed=0.05, map_per_tuple=4e-4
        ),
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=2, grace=1,
            max_map_tasks=8, max_reduce_tasks=8,
        ),
    ),
    "release-backpressure": dict(
        early_release=EarlyReleaseConfig(slack_fraction=0.05),
        backpressure=BackpressureConfig(
            max_queue_intervals=0.5, max_mean_load=0.9, warmup_batches=1
        ),
        cost_model=TaskCostModel(map_fixed=0.02, map_per_tuple=2e-4),
    ),
    "topology": dict(
        cluster=ClusterConfig(num_nodes=4, cores_per_node=2),
        use_topology=True,
        cost_model=TaskCostModel(
            map_per_tuple=3e-4, network_per_remote_fragment=1e-4
        ),
    ),
}


def _run(
    workload: str,
    config_name: str,
    partitioner: str,
    executor: str,
    observability: ObservabilityConfig | None = None,
):
    cfg = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        executor=executor,
        executor_workers=2,
        run_seed=13,
        observability=observability,
        **CONFIGS[config_name],
    )
    engine = MicroBatchEngine(
        make_partitioner(partitioner), wordcount_query(window_length=3.0), cfg
    )
    return engine.run(WORKLOADS[workload](), NUM_BATCHES)


def _assert_equivalent(serial, parallel):
    # answers: byte-identical per window, not merely ==.  (Windows are
    # pickled one at a time: pickling the whole list also encodes which
    # key objects are *shared* across windows via memo back-references,
    # and serial runs reuse accumulator key objects where parallel runs
    # get fresh ones from worker round-trips — identical content,
    # different object graph.)
    assert len(serial.window_answers) == len(parallel.window_answers)
    for s_window, p_window in zip(serial.window_answers, parallel.window_answers):
        assert pickle.dumps(s_window) == pickle.dumps(p_window)
    # stats: record-for-record equality (wall-clock fields excluded by design)
    assert serial.stats.records == parallel.stats.records
    assert serial.stats.batch_interval == parallel.stats.batch_interval
    # control-loop outcomes
    assert serial.scaling_history == parallel.scaling_history
    assert serial.backpressure.triggered == parallel.backpressure.triggered
    assert serial.stable == parallel.stable
    assert len(serial.recoveries) == len(parallel.recoveries)
    # state stores retained the same batches with the same outputs
    assert len(serial.state_store) == len(parallel.state_store)
    for record in serial.stats.records:
        if record.index in serial.state_store:
            assert dict(serial.state_store.get(record.index).output) == dict(
                parallel.state_store.get(record.index).output
            )
    # the parallel run really ran parallel, without degrading
    assert parallel.backend_name == "parallel"
    assert parallel.executor_fallbacks == 0
    assert parallel.stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_parallel_matches_serial_prompt(workload, config_name):
    """Accumulator path (prompt partitioner) across all option sets."""
    serial = _run(workload, config_name, "prompt", "serial")
    parallel = _run(workload, config_name, "prompt", "parallel")
    _assert_equivalent(serial, parallel)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_parallel_matches_serial_hash(workload):
    """Heartbeat-cut path (hash partitioner, default reduce allocation)."""
    serial = _run(workload, "base", "hash", "serial")
    parallel = _run(workload, "base", "hash", "parallel")
    _assert_equivalent(serial, parallel)


FEEDBACK_PARTITIONERS = ("d-choices", "w-choices", "fang")


@pytest.mark.parametrize("partitioner", FEEDBACK_PARTITIONERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_parallel_matches_serial_feedback_consumers(workload, partitioner):
    """The load-feedback loop closes over simulated durations, which are
    backend-invariant by contract — so the adaptive techniques must be
    bit-identical across executors too."""
    serial = _run(workload, "base", partitioner, "serial")
    parallel = _run(workload, "base", partitioner, "parallel")
    _assert_equivalent(serial, parallel)


def test_parallel_matches_serial_fang_under_elasticity():
    """Task counts change mid-run: fang's routing table must resolve the
    resize identically on both backends."""
    serial = _run("synd-skewed", "elastic", "fang", "serial")
    parallel = _run("synd-skewed", "elastic", "fang", "parallel")
    _assert_equivalent(serial, parallel)


def test_parallel_matches_serial_across_seeds():
    """The contract holds for any run seed, not one lucky constant."""
    for seed in (0, 1, 99):
        cfg_kwargs = dict(
            batch_interval=1.0, num_blocks=3, num_reducers=3,
            executor_workers=2, run_seed=seed,
        )
        runs = {}
        for executor in ("serial", "parallel"):
            engine = MicroBatchEngine(
                make_partitioner("prompt"),
                wordcount_query(window_length=2.0),
                EngineConfig(executor=executor, **cfg_kwargs),
            )
            runs[executor] = engine.run(
                synd_source(1.0, num_keys=200, arrival=ConstantRate(800.0), seed=3),
                3,
            )
        _assert_equivalent(runs["serial"], runs["parallel"])


def test_parallel_matches_serial_with_observability_enabled():
    """Tracing/metrics must observe the run, never steer it: the full
    differential contract holds with observability switched on, and the
    traced answers are byte-identical to the untraced baseline."""
    obs_cfg = ObservabilityConfig()
    serial = _run("synd-skewed", "base", "prompt", "serial", obs_cfg)
    parallel = _run("synd-skewed", "base", "prompt", "parallel", obs_cfg)
    _assert_equivalent(serial, parallel)
    untraced = _run("synd-skewed", "base", "prompt", "serial")
    assert pickle.dumps(serial.window_answers) == pickle.dumps(
        untraced.window_answers
    )
    assert serial.stats.records == untraced.stats.records
    # and the instrumentation actually captured the run
    assert len(serial.observability.tracer) > 0
    assert len(parallel.observability.tracer) > 0


def test_serial_runs_are_reproducible():
    """Baseline sanity: the serial reference itself is deterministic."""
    a = _run("synd-skewed", "base", "prompt", "serial")
    b = _run("synd-skewed", "base", "prompt", "serial")
    assert pickle.dumps(a.window_answers) == pickle.dumps(b.window_answers)
    assert a.stats.records == b.stats.records
