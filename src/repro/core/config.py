"""Configuration objects shared across Prompt's components.

Every tunable named in the paper lives here with its paper default:

- MPI weights ``p1=p2=p3=1/3`` (Section 3.3),
- accumulator update ``budget`` and initial frequency step (Section 4.1),
- early-release slack of 5% of the batch interval (Section 4.2),
- elasticity thresholds ``thres=90%``, ``step=10%``, window ``d``
  (Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class AccumulatorConfig:
    """Settings for the frequency-aware buffering stage (Algorithm 1).

    ``budget`` is the maximum number of CountTree repositionings a single
    key may trigger within one batch interval.  ``expected_tuples`` and
    ``expected_keys`` seed the initial frequency step
    ``f = N_est / (K_avg * budget)``; both adapt from observed history
    once at least one batch has completed.
    """

    budget: int = 8
    expected_tuples: int = 10_000
    expected_keys: int = 100
    history_window: int = 4

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if self.expected_tuples < 1:
            raise ValueError("expected_tuples must be >= 1")
        if self.expected_keys < 1:
            raise ValueError("expected_keys must be >= 1")
        if self.history_window < 1:
            raise ValueError("history_window must be >= 1")

    @property
    def initial_frequency_step(self) -> int:
        """``f = N_est / (K_avg * budget)``, at least 1."""
        return max(1, self.expected_tuples // (self.expected_keys * self.budget))


@dataclass(frozen=True, slots=True)
class MPIWeights:
    """Weights of the Micro-batch Partitioning-Imbalance metric (Eqn. 6).

    ``p1`` scales size imbalance (BSI), ``p2`` cardinality imbalance
    (BCI), ``p3`` the key-split ratio (KSR).  They must sum to 1.
    ``p1=1`` reproduces shuffle-like behaviour, ``p3=1`` hash-like
    (Section 3.3).
    """

    p1: float = 1.0 / 3.0
    p2: float = 1.0 / 3.0
    p3: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        for name, value in (("p1", self.p1), ("p2", self.p2), ("p3", self.p3)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        total = self.p1 + self.p2 + self.p3
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"MPI weights must sum to 1, got {total}")


@dataclass(frozen=True, slots=True)
class PartitionerConfig:
    """Settings for the micro-batch partitioner (Algorithm 2)."""

    weights: MPIWeights = field(default_factory=MPIWeights)
    # Multiplier on the key-split cutoff S_cut = P_size / P_|k|; 1.0 is the
    # paper's rule, ablations sweep 0.5 and 2.0.
    split_cutoff_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.split_cutoff_scale <= 0:
            raise ValueError("split_cutoff_scale must be positive")


@dataclass(frozen=True, slots=True)
class EarlyReleaseConfig:
    """Early Batch Release (Section 4.2, Figure 7).

    The batching cut-off precedes the heartbeat by
    ``slack_fraction * batch_interval``; the paper observes 5% suffices.
    """

    slack_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack_fraction < 1.0:
            raise ValueError(
                f"slack_fraction must be in [0, 1), got {self.slack_fraction}"
            )


@dataclass(frozen=True, slots=True)
class ElasticityConfig:
    """Latency-aware auto-scale settings (Algorithm 4, Figure 9).

    ``threshold`` is the upper load threshold on
    ``W = processing_time / batch_interval`` (paper: 90%); ``step`` the
    scale-in hysteresis increment (paper: 10%); ``window`` the number of
    consecutive batches ``d`` a condition must hold; ``grace`` the number
    of batches after an action during which no reverse decision is made.
    """

    threshold: float = 0.90
    step: float = 0.10
    window: int = 3
    grace: int = 3
    min_map_tasks: int = 1
    max_map_tasks: int = 64
    min_reduce_tasks: int = 1
    max_reduce_tasks: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 2.0:
            raise ValueError(f"threshold must be in (0, 2], got {self.threshold}")
        if not 0.0 < self.step < self.threshold:
            raise ValueError("step must be positive and below threshold")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.grace < 0:
            raise ValueError("grace must be >= 0")
        if not 1 <= self.min_map_tasks <= self.max_map_tasks:
            raise ValueError("need 1 <= min_map_tasks <= max_map_tasks")
        if not 1 <= self.min_reduce_tasks <= self.max_reduce_tasks:
            raise ValueError("need 1 <= min_reduce_tasks <= max_reduce_tasks")


@dataclass(frozen=True, slots=True)
class PromptConfig:
    """Top-level configuration bundle for the Prompt scheme."""

    accumulator: AccumulatorConfig = field(default_factory=AccumulatorConfig)
    partitioner: PartitionerConfig = field(default_factory=PartitionerConfig)
    early_release: EarlyReleaseConfig = field(default_factory=EarlyReleaseConfig)
    elasticity: ElasticityConfig = field(default_factory=ElasticityConfig)
