"""Pipelined-driver overlap: wall-clock reclaimed by ``pipeline_depth=2``.

The pipelined driver exists to buy back real time: while batch k's
tasks execute on the worker pool (the dispatch thread blocked in
``wait()``, GIL released), the driver ingests and partitions batch k+1
— pure Python work that previously ran strictly *after* the join.  The
win is bounded by the smaller of the two phases, so the bench workload
is built to make both sides genuinely expensive:

- **driver side** — a high-rate Zipf stream through the accumulator
  (``prompt``) partitioner: per-tuple HTable chaining plus budgeted
  CountTree repositioning, the nontrivial buffering of Algorithm 1;
- **executor side** — CPU-heavy Map bodies (``HEAVY_ROUNDS`` rounds of
  crc32 mixing per tuple, as in the speedup/payload benches) on the
  parallel backend, so the pool spends real time computing while the
  dispatcher waits with the GIL released.

Both depths run the *same* seeded workload; the bench asserts
byte-identical windowed answers and field-equal batch records before
reporting a single number — a speedup obtained by changing the answer
would be worthless.  CI gates depth 2 at <= 0.9x the depth-1 wall.

A second probe measures the ingest fast path in isolation: the
one-lookup ``HTable.append`` (returning ``(record, was_new)``) against
the two-lookup idiom it replaced (``key in table`` followed by append),
in nanoseconds per tuple over the same tuple stream.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any

from ..core.htable import HTable
from ..engine.engine import EngineConfig, MicroBatchEngine, RunResult
from ..partitioners.registry import make_partitioner
from ..queries.base import Query, SumAggregator, WindowSpec
from ..workloads.arrival import ConstantRate
from ..workloads.synd import synd_source
from .payload import HEAVY_ROUNDS, VocabWeightTable

__all__ = ["bench_pipeline_overlap", "bench_ingest_fast_path"]


def _heavy_wordcount_query(window_length: float, vocab_size: int) -> Query:
    """CPU-bound WordCount: each Map call burns ``HEAVY_ROUNDS`` of crc32."""
    return Query(
        name="wordcount-pipelined",
        aggregator=SumAggregator(),
        window=WindowSpec(length=window_length, slide=window_length / 10),
        map_fn=VocabWeightTable(vocab_size, rounds=HEAVY_ROUNDS),
    )


def _timed_run(
    depth: int,
    *,
    workers: int | None,
    rate: float,
    num_batches: int,
    num_keys: int,
    exponent: float,
    num_blocks: int,
    vocab_size: int,
    seed: int,
) -> tuple[float, RunResult]:
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
    )
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=num_blocks,
        num_reducers=num_blocks,
        executor="parallel",
        executor_workers=workers,
        run_seed=seed,
        pipeline_depth=depth,
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"), _heavy_wordcount_query(3.0, vocab_size), config
    )
    started = time.perf_counter()
    result = engine.run(source, num_batches)
    return time.perf_counter() - started, result


def bench_pipeline_overlap(
    *,
    rate: float = 6_000.0,
    num_batches: int = 6,
    num_keys: int = 2_000,
    exponent: float = 1.1,
    num_blocks: int = 8,
    vocab_size: int = 5_000,
    workers: int | None = 2,
    seed: int = 13,
    repeats: int = 2,
) -> list[dict[str, Any]]:
    """One row per pipeline depth, plus the wall-clock ratio on each.

    Each depth runs ``repeats`` times and keeps the fastest wall (the
    engine's answer is deterministic, so repeats only de-noise the
    clock).  Raises ``AssertionError`` if the depths disagree on the
    windowed answers or the batch records.
    """
    walls: dict[int, float] = {}
    runs: dict[int, RunResult] = {}
    for depth in (1, 2):
        best = float("inf")
        for _ in range(repeats):
            wall, result = _timed_run(
                depth,
                workers=workers,
                rate=rate,
                num_batches=num_batches,
                num_keys=num_keys,
                exponent=exponent,
                num_blocks=num_blocks,
                vocab_size=vocab_size,
                seed=seed,
            )
            best = min(best, wall)
            runs[depth] = result
        walls[depth] = best

    base, pipelined = runs[1], runs[2]
    identical = len(base.window_answers) == len(pipelined.window_answers) and all(
        pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(base.window_answers, pipelined.window_answers)
    )
    assert identical, "pipeline depths disagree on windowed answers"
    assert base.stats.records == pipelined.stats.records, (
        "pipeline depths disagree on batch records"
    )
    assert base.executor_fallbacks == 0
    assert pipelined.executor_fallbacks == 0

    rows: list[dict[str, Any]] = []
    for depth in (1, 2):
        result = runs[depth]
        rows.append(
            {
                "Depth": depth,
                "CpuCount": os.cpu_count() or 1,
                "Workers": workers,
                "Tuples": result.stats.total_tuples,
                "Batches": num_batches,
                "WallSeconds": walls[depth],
                "WallRatioVsDepth1": walls[depth] / walls[1],
                "OverlapSeconds": result.stats.total_pipeline_overlap_seconds(),
                "StallSeconds": result.stats.total_pipeline_wait_seconds(),
                "OutputsIdentical": identical,
            }
        )
    return rows


def bench_ingest_fast_path(
    *,
    num_tuples: int = 200_000,
    num_keys: int = 2_000,
    exponent: float = 1.1,
    seed: int = 13,
    repeats: int = 5,
) -> dict[str, Any]:
    """ns/tuple: one-lookup ``HTable.append`` vs the two-lookup idiom.

    The two-lookup loop reproduces the old ``accept`` hot path exactly
    — a ``key in table`` containment probe followed by the append — so
    the comparison isolates the probe the API change removed.  Both
    loops run over the same materialized tuple stream; fastest of
    ``repeats`` passes per variant.
    """
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(float(num_tuples)), seed=seed
    )
    source.reset()
    tuples = source.tuples_between(0.0, 1.0)[:num_tuples]
    assert tuples, "workload produced no tuples"

    def two_lookup() -> float:
        table = HTable()
        append = table.append
        started = time.perf_counter()
        for t in tuples:
            _known = t.key in table
            record, _ = append(t)
        return time.perf_counter() - started

    def one_lookup() -> float:
        table = HTable()
        append = table.append
        started = time.perf_counter()
        for t in tuples:
            record, _was_new = append(t)
        return time.perf_counter() - started

    slow = min(two_lookup() for _ in range(repeats))
    fast = min(one_lookup() for _ in range(repeats))
    n = len(tuples)
    return {
        "Tuples": n,
        "Keys": num_keys,
        "TwoLookupNsPerTuple": slow / n * 1e9,
        "OneLookupNsPerTuple": fast / n * 1e9,
        "Speedup": slow / fast if fast > 0 else 0.0,
    }
