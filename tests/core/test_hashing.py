"""Deterministic hashing: stability, bucketing, candidate sets."""

from __future__ import annotations

import subprocess
import sys
from collections import Counter

import pytest

from repro.core.hashing import candidate_buckets, hash_to_bucket, stable_hash


def test_stable_within_process():
    assert stable_hash("word") == stable_hash("word")
    assert stable_hash(42) == stable_hash(42)


def test_stable_across_processes():
    """str keys must hash identically despite PYTHONHASHSEED salting."""
    code = "from repro.core.hashing import stable_hash; print(stable_hash('word', 3))"
    outs = {
        subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.strip()
        for _ in range(2)
    }
    assert outs == {str(stable_hash("word", 3))}


def test_seeds_decorrelate():
    values = {stable_hash("key", seed) for seed in range(8)}
    assert len(values) >= 7  # essentially all distinct


def test_key_types():
    # distinct canonical byte forms: no silent collisions between types
    assert stable_hash("1") != stable_hash(1)
    assert stable_hash(b"raw") == stable_hash(b"raw")
    assert isinstance(stable_hash(("tuple", 1)), int)
    assert stable_hash(-5) != stable_hash(5)


def test_hash_to_bucket_range():
    for key in range(100):
        assert 0 <= hash_to_bucket(key, 7) < 7


def test_hash_to_bucket_rejects_zero_buckets():
    with pytest.raises(ValueError):
        hash_to_bucket("a", 0)


def test_bucket_distribution_is_roughly_uniform():
    counts = Counter(hash_to_bucket(i, 10) for i in range(10_000))
    assert min(counts.values()) > 700
    assert max(counts.values()) < 1300


def test_candidate_buckets_count_and_range():
    cands = candidate_buckets("key", 16, 5)
    assert len(cands) == 5
    assert all(0 <= c < 16 for c in cands)


def test_candidate_buckets_deterministic():
    assert candidate_buckets("key", 16, 3) == candidate_buckets("key", 16, 3)


def test_candidate_buckets_rejects_bad_d():
    with pytest.raises(ValueError):
        candidate_buckets("key", 16, 0)


def test_candidates_differ_across_keys():
    a = candidate_buckets("alpha", 64, 2)
    b = candidate_buckets("beta", 64, 2)
    assert a != b
