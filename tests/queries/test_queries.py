"""The Section 7.1 benchmark queries: windows, map functions, filters."""

from __future__ import annotations

import pytest

from repro.core.tuples import StreamTuple
from repro.queries import (
    WindowSpec,
    debs_query1,
    debs_query2,
    gcm_avg_cpu_query,
    gcm_total_memory_query,
    select_top_k,
    topk_query,
    tpch_query1,
    tpch_query6,
    wordcount_query,
)


# ----------------------------------------------------------------------
# WindowSpec
# ----------------------------------------------------------------------
def test_window_spec_tumbling():
    spec = WindowSpec(length=10.0, slide=10.0)
    assert spec.is_tumbling
    assert not WindowSpec(length=10.0, slide=1.0).is_tumbling


def test_window_spec_batches_per_window():
    assert WindowSpec(length=30.0, slide=1.0).batches_per_window(3.0) == 10
    assert WindowSpec(length=1.0, slide=1.0).batches_per_window(3.0) == 1
    with pytest.raises(ValueError):
        WindowSpec(length=10.0, slide=1.0).batches_per_window(0.0)


@pytest.mark.parametrize(
    "kwargs",
    [{"length": 0.0, "slide": 1.0}, {"length": 5.0, "slide": 0.0}, {"length": 5.0, "slide": 6.0}],
)
def test_window_spec_validation(kwargs):
    with pytest.raises(ValueError):
        WindowSpec(**kwargs)


# ----------------------------------------------------------------------
# WordCount / TopK
# ----------------------------------------------------------------------
def test_wordcount_counts_occurrences():
    q = wordcount_query()
    tuples = [StreamTuple(ts=0.0, key=w, value=None) for w in ["a", "b", "a"]]
    assert q.reference_output(tuples) == {"a": 2, "b": 1}
    assert q.window.length == 30.0


def test_topk_query_and_selection():
    q = topk_query(k=2)
    tuples = [
        StreamTuple(ts=0.0, key=w)
        for w in ["x"] * 5 + ["y"] * 3 + ["z"] * 1
    ]
    counts = q.reference_output(tuples)
    assert select_top_k(counts, 2) == [("x", 5), ("y", 3)]


def test_topk_ties_break_deterministically():
    assert select_top_k({"b": 2, "a": 2, "c": 1}, 2) == [("a", 2), ("b", 2)]


def test_topk_validation():
    with pytest.raises(ValueError):
        topk_query(k=0)
    with pytest.raises(ValueError):
        select_top_k({}, 0)


# ----------------------------------------------------------------------
# DEBS
# ----------------------------------------------------------------------
def test_debs_q1_sums_fares():
    q = debs_query1()
    tuples = [
        StreamTuple(ts=0.0, key="taxi1", value=(10.0, 2.0)),
        StreamTuple(ts=0.1, key="taxi1", value=(5.5, 1.0)),
        StreamTuple(ts=0.2, key="taxi2", value=(3.0, 0.5)),
    ]
    out = q.reference_output(tuples)
    assert out["taxi1"] == pytest.approx(15.5)
    assert out["taxi2"] == pytest.approx(3.0)
    # paper proportions: window/slide == 7200/300
    assert q.window.length / q.window.slide == pytest.approx(24.0)


def test_debs_q2_sums_distances():
    q = debs_query2()
    tuples = [StreamTuple(ts=0.0, key="t", value=(10.0, 2.5))]
    assert q.reference_output(tuples)["t"] == pytest.approx(2.5)
    assert q.window.length / q.window.slide == pytest.approx(45.0)


def test_debs_time_scale_validation():
    with pytest.raises(ValueError):
        debs_query1(time_scale=0.0)
    with pytest.raises(ValueError):
        debs_query2(time_scale=-1.0)


# ----------------------------------------------------------------------
# GCM
# ----------------------------------------------------------------------
def test_gcm_avg_cpu():
    q = gcm_avg_cpu_query()
    tuples = [
        StreamTuple(ts=0.0, key="job", value=(0.2, 0.1)),
        StreamTuple(ts=0.1, key="job", value=(0.4, 0.3)),
    ]
    acc = q.reference_output(tuples)["job"]
    assert q.aggregator.finalize(acc) == pytest.approx(0.3)


def test_gcm_total_memory():
    q = gcm_total_memory_query()
    tuples = [
        StreamTuple(ts=0.0, key="job", value=(0.2, 0.1)),
        StreamTuple(ts=0.1, key="job", value=(0.4, 0.3)),
    ]
    assert q.reference_output(tuples)["job"] == pytest.approx(0.4)


# ----------------------------------------------------------------------
# TPC-H
# ----------------------------------------------------------------------
def test_tpch_q1_quantity_per_part():
    q = tpch_query1()
    tuples = [
        StreamTuple(ts=0.0, key=7, value=(10, 1000.0, 0.05)),
        StreamTuple(ts=0.1, key=7, value=(5, 500.0, 0.02)),
    ]
    assert q.reference_output(tuples)[7] == 15
    assert q.window.length / q.window.slide == pytest.approx(60.0)


def test_tpch_q6_predicate_filters():
    q = tpch_query6()
    tuples = [
        StreamTuple(ts=0.0, key=1, value=(10, 1000.0, 0.06)),   # passes
        StreamTuple(ts=0.1, key=1, value=(30, 3000.0, 0.06)),   # qty >= 24
        StreamTuple(ts=0.2, key=1, value=(10, 1000.0, 0.20)),   # discount out
        StreamTuple(ts=0.3, key=2, value=(23, 100.0, 0.05)),    # passes
    ]
    out = q.reference_output(tuples)
    assert out[1] == pytest.approx(60.0)
    assert out[2] == pytest.approx(5.0)


def test_tpch_scale_validation():
    with pytest.raises(ValueError):
        tpch_query1(time_scale=0)
    with pytest.raises(ValueError):
        tpch_query6(time_scale=-2)


def test_queries_default_to_map_side_combine():
    for q in (wordcount_query(), debs_query1(), gcm_avg_cpu_query(), tpch_query1()):
        assert q.map_side_combine
