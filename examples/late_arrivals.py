#!/usr/bin/env python3
"""Out-of-order delivery and the bounded-delay contract (Section 8).

Wraps a taxi-trip stream in :class:`DelayedSource` so ~30% of tuples
arrive late (exponentially delayed, capped at 0.4 s), then runs the
engine under a lateness contract of 0.1 s: tuples within the contract
join the batch that ingests them (coarse-grained ordering, as the paper
specifies); older tuples are dropped and counted — the traffic a
revision-tuple mechanism would have to compensate.

Run:  python examples/late_arrivals.py
"""

from __future__ import annotations

from repro import EngineConfig, MicroBatchEngine, make_partitioner
from repro.engine import LatenessConfig
from repro.queries import debs_query1
from repro.workloads import DelayedSource, debs_taxi_source


def main() -> None:
    base = debs_taxi_source(num_taxis=1_000, rate=4_000.0, seed=21)
    source = DelayedSource(
        base, max_delay=0.4, delayed_fraction=0.3, seed=21
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        debs_query1(time_scale=1 / 2400.0),
        EngineConfig(
            batch_interval=0.5,
            num_blocks=8,
            num_reducers=8,
            lateness=LatenessConfig(max_delay=0.1),
        ),
    )
    result = engine.run(source, num_batches=16)

    monitor = result.lateness
    assert monitor is not None
    total = monitor.total
    print(f"ingested tuples:      {total:,}")
    print(f"  on time:            {monitor.on_time:,} ({monitor.on_time / total:.1%})")
    print(f"  late but accepted:  {monitor.late_accepted:,} "
          f"({monitor.late_accepted / total:.1%})  [within the 0.1s contract]")
    print(f"  overdue, dropped:   {monitor.overdue:,} "
          f"({monitor.drop_rate():.1%})  [would need revision tuples]")
    print(f"\nprocessed into batches: {result.stats.total_tuples:,}")
    print(f"stable: {result.stable}")


if __name__ == "__main__":
    main()
