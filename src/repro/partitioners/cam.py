"""cAM — cardinality-imbalance-aware partitioning (Katsipoulakis et al.).

"A Holistic View of Stream Partitioning Costs" (VLDB'17) extends
key-splitting by charging, at assignment time, both the *tuple-count*
imbalance and the *cardinality* (aggregation-cost) imbalance a candidate
placement would cause.  Each tuple considers the ``d`` candidate blocks
of its key and picks the one minimizing::

    (size_j + w - min_size) / avg_size  +  gamma * new_key(j)

where ``new_key(j)`` is 1 iff the key is not yet present in block ``j``
(placing there would grow that block's cardinality and later its per-key
aggregation work).

Following the paper's evaluation protocol (Section 7): "For cAM, we
always report the best performance achieved from several runs with
various candidates" — the bench harness sweeps ``d`` and keeps the best.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.hashing import CandidateCache
from ..core.tuples import Key, StreamTuple
from .base import StreamingPartitioner

__all__ = ["CAMPartitioner"]


class CAMPartitioner(StreamingPartitioner):
    """Holistic (size + cardinality) candidate-based assignment."""

    name = "cam"

    def __init__(
        self, d: int = 4, gamma: float = 1.0, *, cache_size: int = 65_536
    ) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.d = d
        self.gamma = gamma
        self._candidate_cache = CandidateCache(cache_size)
        self._seen = 0

    def reset(self) -> None:
        self._candidate_cache.clear()
        self._seen = 0

    def _candidates(self, key: Key, num_blocks: int) -> list[int]:
        return self._candidate_cache.get(key, num_blocks, self.d)

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        candidates = self._candidates(t.key, len(blocks))
        # Normalize the size term by the running average block size so
        # the two cost components stay commensurate as the batch fills.
        total = sum(blocks[i].size for i in range(len(blocks)))
        avg = max(1.0, total / len(blocks))
        min_size = min(blocks[i].size for i in candidates)

        def cost(i: int) -> tuple[float, int]:
            block = blocks[i]
            size_term = (block.size + t.weight - min_size) / avg
            card_term = self.gamma * (0.0 if t.key in block else 1.0)
            return (size_term + card_term, i)

        return min(candidates, key=cost)
