"""CLI: argument handling and experiment dispatch."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_requires_known_experiment():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_table1(capsys):
    assert main(["run", "table1", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Tweets" in out


def test_run_fig6(capsys):
    assert main(["run", "fig6", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "Prompt (Algorithm 2)" in out


def test_run_fig10_with_dataset(capsys):
    assert main(["run", "fig10", "--dataset", "tpch", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "tpch" in out
    assert "prompt" in out


def test_run_fig14b(capsys):
    assert main(["run", "fig14b", "--no-save"]) == 0
    out = capsys.readouterr().out
    assert "OverheadPct" in out


def test_run_saves_results(tmp_path, capsys, monkeypatch):
    import repro.bench.reporting as reporting
    import repro.cli as cli

    monkeypatch.setattr(reporting, "results_dir", lambda: tmp_path)
    monkeypatch.setattr(cli, "save_results", reporting.save_results)
    assert main(["run", "fig6"]) == 0
    assert (tmp_path / "cli_fig6.json").exists()


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
