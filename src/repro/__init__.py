"""repro — reproduction of *Prompt: Dynamic Data-Partitioning for
Distributed Micro-batch Stream Processing Systems* (SIGMOD 2020).

Public API layout:

- :mod:`repro.core` — the paper's contribution: frequency-aware
  buffering (Alg. 1), B-BPFI batch partitioning (Alg. 2), B-BPVC reduce
  allocation (Alg. 3), latency-aware elasticity (Alg. 4), and the
  BSI/BCI/KSR/MPI cost model.
- :mod:`repro.partitioners` — Prompt plus every baseline technique
  (time-based, shuffle, hashing, PK2/PK5, cAM).
- :mod:`repro.engine` — the simulated micro-batch engine substrate
  (receiver, scheduler, tasks, windows, state, faults, back-pressure).
- :mod:`repro.queries` — the Section 7.1 benchmark queries.
- :mod:`repro.workloads` — dataset generators and arrival processes.
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the evaluation.
- :mod:`repro.obs` — optional zero-dependency observability: span
  tracing, a metrics registry, and Chrome-trace/JSONL/Prometheus
  exporters (enable via ``EngineConfig.observability``).

Quickstart::

    import repro
    from repro.queries import wordcount_query
    from repro.workloads import tweets_source

    result = repro.run(
        tweets_source(rate=5_000),
        wordcount_query(window_length=10.0),
        partitioner="prompt",
        num_batches=12,
    )
    print(result.stats.throughput(), result.stats.mean_latency())

The explicit form — build a partitioner, a query, and an
:class:`EngineConfig`, then drive a :class:`MicroBatchEngine` — remains
available for anything the one-shot entry cannot express (failure
injection, partitioner reuse, sweeps).

The names exported here — ``__all__`` below — are the frozen v0 public
surface; ``docs/api.md`` documents each one and a doc-sync test keeps
the two lists identical.  Symbols deeper in subpackages remain
importable but carry no stability promise.
"""

from .api import run
from .core import (
    AccumulatorConfig,
    AutoScaler,
    BatchInfo,
    CountTree,
    ElasticityConfig,
    MicroBatchAccumulator,
    MPIWeights,
    PartitionedBatch,
    PromptBatchPartitioner,
    PromptConfig,
    ReduceBucketAllocator,
    StreamTuple,
    evaluate_partition,
)
from .engine import EngineConfig, ExecutorKind, MicroBatchEngine, RunResult
from .obs import ObservabilityConfig, RunObservability
from .partitioners import make_partitioner
from .queries import Query, WindowSpec

__version__ = "1.0.0"

__all__ = [
    "AccumulatorConfig",
    "AutoScaler",
    "BatchInfo",
    "CountTree",
    "ElasticityConfig",
    "EngineConfig",
    "ExecutorKind",
    "MPIWeights",
    "MicroBatchAccumulator",
    "MicroBatchEngine",
    "ObservabilityConfig",
    "PartitionedBatch",
    "PromptBatchPartitioner",
    "PromptConfig",
    "Query",
    "ReduceBucketAllocator",
    "RunObservability",
    "RunResult",
    "StreamTuple",
    "WindowSpec",
    "__version__",
    "evaluate_partition",
    "make_partitioner",
    "run",
]
