"""Key-split partitioning — PK2/PK5 and the D-/W-Choices rivals.

The "power of both choices" family (Nasir et al., ICDE'15/'16): ``d``
independent hash functions give each key ``d`` candidate blocks, and
each arriving tuple goes to the *least loaded* of its key's candidates.
PK2 fixes ``d=2`` ("The Power of Both Choices"), PK5 ``d=5`` ("When Two
Choices Are Not Enough").

Load balance improves exponentially with ``d`` for size, but each key
still fragments over up to ``d`` blocks (hurting KSR and the Reduce
per-key aggregation), and per-block *cardinality* is uncontrolled.
Because these techniques come from continuous tuple-at-a-time DSPSs,
they are obliged to decide per tuple with only running statistics —
precisely the restriction Prompt's whole-batch view removes.

:class:`DChoicesPartitioner` / :class:`WChoicesPartitioner` implement
the head/tail refinement of "When Two Choices Are Not Enough" proper:
only keys above the frequency threshold θ (detected by a Space-Saving
sketch) are split, the long tail is plain-hashed to preserve key
locality.  D-Choices scales the number of candidates per head key with
its estimated frequency share — a key carrying share ``s`` needs about
``s/θ`` workers to dilute below θ each — capped at ``w``; W-Choices
lets head keys choose among *all* workers.  Both consume the engine's
:class:`~repro.partitioners.feedback.WorkerLoadFeedback` (carry-over
load observed on completed batches biases the least-loaded choice, so a
worker that ran hot in batch ``k-2`` attracts less of batch ``k``).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.hashing import CandidateCache, hash_to_bucket
from ..core.sketches import SpaceSavingSketch
from ..core.tuples import Key, StreamTuple
from .base import StreamingPartitioner
from .feedback import WorkerLoadFeedback

__all__ = [
    "KeySplitPartitioner",
    "PK2Partitioner",
    "PK5Partitioner",
    "DChoicesPartitioner",
    "WChoicesPartitioner",
]


class KeySplitPartitioner(StreamingPartitioner):
    """Power-of-*d*-choices key splitting."""

    name = "pkd"

    def __init__(self, d: int = 2, *, cache_size: int = 65_536) -> None:
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = d
        self._candidate_cache = CandidateCache(cache_size)

    def reset(self) -> None:
        self._candidate_cache.clear()

    def _candidates(self, key: Key, num_blocks: int, d: int | None = None) -> list[int]:
        return self._candidate_cache.get(key, num_blocks, d if d is not None else self.d)

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        candidates = self._candidates(t.key, len(blocks))
        # Least-loaded candidate at decision time (Section 2.2.4 (1)).
        return min(candidates, key=lambda i: (blocks[i].size, i))


class PK2Partitioner(KeySplitPartitioner):
    """Partial key grouping with two choices (Nasir et al., ICDE'15)."""

    name = "pk2"

    def __init__(self) -> None:
        super().__init__(d=2)


class PK5Partitioner(KeySplitPartitioner):
    """Key splitting with five choices (Nasir et al., ICDE'16)."""

    name = "pk5"

    def __init__(self) -> None:
        super().__init__(d=5)


class DChoicesPartitioner(KeySplitPartitioner):
    """Split head keys over frequency-scaled ``d`` choices; hash the tail.

    Head detection follows the θ threshold of Nasir et al.: once the
    sketch has seen at least ``sketch_capacity`` tuples, a key whose
    guaranteed share exceeds ``threshold`` is a head key and receives
    ``d = clamp(ceil(share / threshold), 2, w)`` candidates — enough
    workers to bring its per-worker share back under θ.  Tail keys are
    plain-hashed (KSR stays 1 for them).  Worker-load feedback from
    completed batches biases the candidate choice by each block's
    observed relative load.
    """

    name = "d-choices"
    uses_feedback = True

    def __init__(
        self,
        w: int | None = None,
        *,
        threshold: float = 0.01,
        sketch_capacity: int = 128,
        feedback_weight: float = 0.25,
        cache_size: int = 65_536,
    ) -> None:
        if w is not None and w < 2:
            raise ValueError(f"w must be >= 2 when set, got {w}")
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if sketch_capacity < 1:
            raise ValueError("sketch_capacity must be >= 1")
        if feedback_weight < 0.0:
            raise ValueError("feedback_weight must be >= 0")
        super().__init__(d=2, cache_size=cache_size)
        self.w = w
        self.threshold = threshold
        self.sketch_capacity = sketch_capacity
        self.feedback_weight = feedback_weight
        self._sketch = SpaceSavingSketch(sketch_capacity)
        #: per-block score bias from the last delivered feedback, in
        #: tuple-weight units (positive = block ran hot, avoid it)
        self._load_bias: tuple[float, ...] = ()

    def reset(self) -> None:
        super().reset()
        self._sketch = SpaceSavingSketch(self.sketch_capacity)
        self._load_bias = ()

    def observe_load(self, feedback: WorkerLoadFeedback) -> None:
        relative = feedback.relative_block_loads()
        if not relative or not feedback.block_sizes:
            self._load_bias = ()
            return
        mean_size = sum(feedback.block_sizes) / len(feedback.block_sizes)
        self._load_bias = tuple(
            self.feedback_weight * (rel - 1.0) * mean_size for rel in relative
        )

    def _degree(self, key: Key, num_blocks: int) -> int:
        """Candidate count for ``key``: 0 = tail (hash), else 2..w."""
        total = self._sketch.total
        if total < self.sketch_capacity:
            return 0  # not enough evidence yet
        share = self._sketch.guaranteed(key) / total
        if share <= self.threshold:
            return 0
        w = num_blocks if self.w is None else min(self.w, num_blocks)
        if w < 2:
            return 0
        return max(2, min(w, math.ceil(share / self.threshold)))

    def _score(self, blocks: Sequence[DataBlock], i: int) -> tuple[float, int]:
        bias = self._load_bias[i] if i < len(self._load_bias) else 0.0
        return (blocks[i].size + bias, i)

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        self._sketch.add(t.key)
        num_blocks = len(blocks)
        d = self._degree(t.key, num_blocks)
        if d == 0:
            return hash_to_bucket(t.key, num_blocks)
        if d >= num_blocks:
            # saturated: every worker is a candidate (the W-Choices case) —
            # no point hashing d times when the set is the whole cluster
            candidates: Sequence[int] = range(num_blocks)
        else:
            candidates = self._candidates(t.key, num_blocks, d)
        return min(candidates, key=lambda i: self._score(blocks, i))


class WChoicesPartitioner(DChoicesPartitioner):
    """W-Choices: head keys may go to *any* worker; the tail still hashes.

    The limit case of D-Choices (Nasir et al., ICDE'16): once a key is
    hot enough to split at all, it is worth spreading over the whole
    cluster — best possible size balance for the head at the price of
    up to ``num_blocks`` fragments per head key.
    """

    name = "w-choices"

    def _degree(self, key: Key, num_blocks: int) -> int:
        if num_blocks < 2:
            return 0
        return 0 if super()._degree(key, num_blocks) == 0 else num_blocks
