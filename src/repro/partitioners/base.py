"""Common interface for batching-phase partitioning techniques.

Every technique — the paper's Prompt scheme and the baselines of
Section 2.2 / Section 7 — consumes the tuples of one batch interval and
produces a :class:`~repro.core.batch.PartitionedBatch` of ``p`` data
blocks.  Tuple-at-a-time techniques (time-based, shuffle, hashing,
PK2/PK5, cAM) decide per tuple in arrival order, exactly as they must in
a native DSPS; Prompt decides over the whole batch.

The interface also covers the processing phase: ``allocate_reduce`` maps
one Map task's key clusters to Reduce buckets.  The default is the
conventional hashing assignment every baseline uses (Section 5,
Figure 8a); Prompt overrides it with Algorithm 3.
"""

from __future__ import annotations

import abc
from typing import Callable, Collection, Sequence

from ..core.batch import BatchInfo, DataBlock, PartitionedBatch
from ..core.plan_stream import PlanStream, eager_plan_stream
from ..core.reduce_allocator import (
    BucketAssignment,
    KeyCluster,
    hash_allocate,
    hash_reduce_allocation,
)
from ..core.tuples import Key, StreamTuple
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from .feedback import WorkerLoadFeedback

__all__ = ["Partitioner", "StreamingPartitioner", "ReduceAllocation"]

#: pure callable routing one Map task's clusters to Reduce buckets
ReduceAllocation = Callable[[Sequence[KeyCluster], Collection[Key], int], BucketAssignment]


class Partitioner(abc.ABC):
    """A batching-phase data partitioning technique."""

    #: registry identifier, e.g. ``"prompt"`` or ``"pk2"``
    name: str = "base"
    #: whether the technique needs the frequency-aware accumulator running
    uses_accumulator: bool = False
    #: whether the technique consumes :class:`WorkerLoadFeedback` — the
    #: engine only builds and routes feedback when this is True, so the
    #: default keeps the pre-feedback engine path (and its outputs)
    #: byte-identical
    uses_feedback: bool = False
    #: metrics sink the engine binds per run (no-op by default, so
    #: techniques may publish unconditionally; see repro.obs.metrics)
    metrics: MetricsRegistry = NULL_METRICS

    def bind_observability(self, metrics: MetricsRegistry) -> None:
        """Attach the run's metrics registry (engine calls this at start).

        Instance-level assignment, so concurrent engines sharing a
        partitioner *class* still get isolated sinks; rebinding with the
        no-op registry detaches.
        """
        self.metrics = metrics

    @abc.abstractmethod
    def partition(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PartitionedBatch:
        """Partition one batch's tuples into ``num_blocks`` data blocks.

        ``tuples`` are in arrival (timestamp) order.  Implementations
        must place every tuple exactly once.
        """

    def partition_stream(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PlanStream:
        """Streaming counterpart of :meth:`partition`.

        Returns a :class:`~repro.core.plan_stream.PlanStream` whose
        emissions are finalized blocks in block-index order and whose
        ``result()`` is the completed batch — byte-identical to
        :meth:`partition`.  The default plans eagerly and replays the
        finished blocks, so every technique supports streaming
        consumers; techniques with a genuinely incremental plan (Prompt)
        override this to emit blocks before the plan tail completes.
        """
        return eager_plan_stream(self.partition(tuples, num_blocks, info))

    def allocate_reduce(
        self,
        clusters: Sequence[KeyCluster],
        split_keys: Collection[Key],
        num_buckets: int,
    ) -> BucketAssignment:
        """Route one Map task's key clusters to Reduce buckets.

        Default: conventional hashing (key locality is guaranteed, load
        balance is not).  ``split_keys`` is ignored by hashing since it
        routes every key identically anyway.
        """
        return hash_allocate(list(clusters), num_buckets)

    def reduce_allocation(self) -> ReduceAllocation:
        """A picklable, pure callable equivalent to :meth:`allocate_reduce`.

        Execution backends dispatch Map tasks to worker processes; the
        allocation logic travels with each task and must therefore be
        (a) free of shared mutable state and (b) cheap to pickle.  The
        default returns the module-level hashing function when
        ``allocate_reduce`` is not overridden; a subclass that overrides
        only ``allocate_reduce`` falls back to its bound method (which
        pickles the whole partitioner — correct, but heavier; override
        this method too for a slim handle).
        """
        if type(self).allocate_reduce is Partitioner.allocate_reduce:
            return hash_reduce_allocation
        return self.allocate_reduce

    def configure_ingest(self, kernel: str) -> None:
        """Select the ingest/placement implementation for this technique.

        ``kernel`` is ``"python"`` (the reference path) or ``"numpy"``
        (the vectorized batch kernels of :mod:`repro.core.kernels`).
        The engine forwards :attr:`EngineConfig.ingest_kernel` here when
        set.  Techniques without a vectorized path ignore the request —
        the knob is an implementation selector, never a semantic one, so
        honoring it is optional while outputs must stay identical.
        """

    def observe_load(self, feedback: WorkerLoadFeedback) -> None:
        """Consume one completed batch's observed per-worker load.

        The engine delivers feedback in batch order with a fixed lag of
        :data:`~repro.partitioners.feedback.FEEDBACK_LAG` batches (see
        that module's determinism contract), and only when
        ``uses_feedback`` is True.  The default is a no-op so existing
        techniques are untouched.
        """

    def heartbeat_overhead(self, batch: PartitionedBatch) -> float:
        """Simulated work this technique adds at the heartbeat (seconds).

        Zero for per-tuple techniques and for Prompt with Early Batch
        Release (the partitioning runs inside the batching slack); the
        post-sort ablation pays an explicit sort here (Figure 14a).
        """
        return 0.0

    def reset(self) -> None:
        """Clear any cross-batch state (called when a run starts)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class StreamingPartitioner(Partitioner):
    """Base for tuple-at-a-time techniques.

    Subclasses implement :meth:`assign`, deciding a block for each tuple
    as it arrives, optionally reading the running block states (this is
    what lets PK/cAM pick the least-loaded candidate).
    """

    @abc.abstractmethod
    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        """Return the target block index for tuple ``t`` (``seq`` = arrival #)."""

    def partition(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PartitionedBatch:
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        blocks = [DataBlock(i) for i in range(num_blocks)]
        for seq, t in enumerate(tuples):
            target = self.assign(t, seq, blocks, info)
            if not 0 <= target < num_blocks:
                raise AssertionError(
                    f"{self.name} assigned tuple to invalid block {target}"
                )
            blocks[target].add_tuple(t)
        batch = PartitionedBatch(info=info, blocks=blocks, partitioner_name=self.name)
        batch.compute_split_keys()
        return batch
