"""Extensions beyond the paper's core: techniques it cites and contrasts."""

from .batch_sizing import BatchSizeController, BatchSizingConfig

__all__ = ["BatchSizeController", "BatchSizingConfig"]
