"""End-to-end engine runs: correctness, stability, elasticity, faults."""

from __future__ import annotations

import pytest

from repro.core.config import EarlyReleaseConfig, ElasticityConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import FailureInjector
from repro.engine.tasks import TaskCostModel
from repro.partitioners import PARTITIONER_NAMES, make_partitioner
from repro.queries import wordcount_query
from repro.queries.base import Query, SumAggregator, WindowSpec
from repro.workloads.arrival import ConstantRate, RampRate
from repro.workloads.elastic import ElasticWorkloadSource
from repro.workloads.synd import synd_source


def _config(**kw):
    defaults = dict(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
    )
    defaults.update(kw)
    return EngineConfig(**defaults)


def _source(rate=2000.0, z=1.0, seed=0):
    return synd_source(z, num_keys=500, arrival=ConstantRate(rate), seed=seed)


def test_run_produces_one_record_per_batch():
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), _config())
    result = engine.run(_source(), 6)
    assert len(result.stats.records) == 6
    assert [r.index for r in result.stats.records] == list(range(6))


def test_run_rejects_zero_batches():
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), _config())
    with pytest.raises(ValueError):
        engine.run(_source(), 0)


@pytest.mark.parametrize("name", ["time", "shuffle", "hash", "pk2", "cam", "prompt"])
def test_every_technique_computes_identical_answers(name):
    """Partitioning must never change query semantics."""
    query = Query(
        name="sum",
        aggregator=SumAggregator(),
        window=WindowSpec(length=3.0, slide=1.0),
        map_fn=lambda k, v: 1,
    )
    config = _config(early_release=EarlyReleaseConfig(slack_fraction=0.0))
    engine = MicroBatchEngine(make_partitioner(name), query, config)
    result = engine.run(_source(rate=800, seed=4), 4)
    # reference: recompute window answers from the raw stream
    reference_source = _source(rate=800, seed=4)
    batch_refs = [
        query.reference_output(reference_source.tuples_between(float(k), float(k + 1)))
        for k in range(4)
    ]
    for k in range(4):
        naive: dict = {}
        for b in batch_refs[max(0, k - 2) : k + 1]:
            for key, v in b.items():
                naive[key] = naive.get(key, 0) + v
        assert result.window_answers[k] == naive, f"batch {k} mismatch for {name}"


def test_light_load_is_stable_heavy_load_is_not():
    light = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), _config())
    assert light.run(_source(rate=1000), 5).stable
    heavy = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(),
        _config(cost_model=TaskCostModel(map_per_tuple=5e-3)),
    )
    assert not heavy.run(_source(rate=2000), 5).stable


def test_latency_includes_queueing_under_overload():
    engine = MicroBatchEngine(
        make_partitioner("hash"),
        wordcount_query(),
        _config(cost_model=TaskCostModel(map_per_tuple=2e-3)),
    )
    result = engine.run(_source(rate=2000), 6)
    assert result.stats.max_queue_delay() > 0
    # queueing grows monotonically while overloaded
    delays = [r.queue_delay for r in result.stats.records]
    assert delays[-1] >= delays[1]


def test_prompt_engine_uses_early_release_cutoff():
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), _config())
    result = engine.run(_source(rate=1000), 3)
    # partitioning latency was audited against the slack
    assert len(result.early_release.observations) == 3


def test_elasticity_scales_out_under_ramp():
    arrival = RampRate(500, 8000, 2.0, 18.0)
    source = ElasticWorkloadSource(arrival, keys_start=100, keys_end=1500, t0=2.0, t1=18.0, seed=5)
    config = _config(
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=8, cores_per_node=4),
        elasticity=ElasticityConfig(
            threshold=0.9, step=0.3, window=2, grace=1,
            max_map_tasks=16, max_reduce_tasks=16,
        ),
        cost_model=TaskCostModel(map_per_tuple=4e-4, reduce_per_fragment=1e-3),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    result = engine.run(source, 20)
    final = result.stats.records[-1]
    assert final.map_tasks > 2  # grew with the workload
    assert any(d.acted for d in result.scaling_history)


def test_fixed_plan_without_elasticity():
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), _config())
    result = engine.run(_source(), 4)
    assert all(r.map_tasks == 4 and r.reduce_tasks == 4 for r in result.stats.records)
    assert result.scaling_history == []


def test_fault_injection_recovers_exactly_once():
    config = _config(replicate_inputs=True)
    injector = FailureInjector([1, 2])
    engine = MicroBatchEngine(
        make_partitioner("prompt"), wordcount_query(), config,
        failure_injector=injector,
    )
    result = engine.run(_source(rate=500), 4)
    assert len(result.recoveries) == 2
    assert all(e.matched_original for e in result.recoveries)


def test_state_eviction_tracks_window():
    query = wordcount_query(window_length=2.0)  # 2 batches per window
    engine = MicroBatchEngine(make_partitioner("hash"), query, _config())
    result = engine.run(_source(rate=300), 6)
    # only the active window's states remain
    assert len(result.state_store) <= 2


def test_track_outputs_disabled_skips_state():
    config = _config(track_outputs=False)
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), config)
    result = engine.run(_source(rate=300), 3)
    assert result.window_answers == []
    assert len(result.state_store) == 0


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(batch_interval=0.0)
    with pytest.raises(ValueError):
        EngineConfig(num_blocks=0)
    with pytest.raises(ValueError):
        EngineConfig(num_reducers=0)


def test_deterministic_runs():
    def run():
        engine = MicroBatchEngine(
            make_partitioner("prompt"), wordcount_query(), _config()
        )
        return engine.run(_source(seed=9), 4)

    a, b = run(), run()
    assert [r.processing_time for r in a.stats.records] == [
        r.processing_time for r in b.stats.records
    ]
    assert a.window_answers == b.window_answers
