"""Key churn: a Zipf-keyed stream whose vocabulary drifts over time.

Real streams (trending hashtags, session ids, rotating device fleets)
do not draw from a fixed key universe: old keys fall out of use and new
ones appear continuously.  This axis stresses everything that memoizes
per-key state — candidate caches, sketches, routing tables — because
the *lifetime* vocabulary grows without bound even though the *instant*
vocabulary stays a constant ``num_keys``.

The generator keeps the Zipf popularity shape fixed over ranks and
shifts the rank→identity mapping by ``drift_keys`` identities every
``churn_interval`` seconds (computed per tuple from its own timestamp,
so drift lands mid-batch too): after each shift, the ``drift_keys``
least popular identities retire and the same number of never-seen
identities enter at the bottom of the popularity order.
"""

from __future__ import annotations

import numpy as np

from ..core.tuples import StreamTuple
from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, StreamSource
from .zipf import ZipfSampler

__all__ = ["KeyChurnSource", "key_churn_source"]


class KeyChurnSource(StreamSource):
    """Zipf keys whose identities slide as the stream progresses."""

    def __init__(
        self,
        name: str = "churn",
        *,
        arrival: ArrivalProcess,
        num_keys: int,
        exponent: float,
        churn_interval: float,
        drift_keys: int | None = None,
        seed: int = 0,
        dataset: DatasetProperties | None = None,
    ) -> None:
        if churn_interval <= 0:
            raise ValueError("churn_interval must be positive")
        if drift_keys is not None and drift_keys < 1:
            raise ValueError("drift_keys must be >= 1 when set")
        self.name = name
        self.arrival = arrival
        self.seed = seed
        self.churn_interval = churn_interval
        self.drift_keys = drift_keys if drift_keys is not None else max(1, num_keys // 10)
        self._sampler = ZipfSampler(num_keys, exponent, seed=seed)
        self._dataset = dataset

    @property
    def num_keys(self) -> int:
        return self._sampler.num_keys

    @property
    def exponent(self) -> float:
        return self._sampler.exponent

    def properties(self) -> DatasetProperties | None:
        return self._dataset

    def reset(self) -> None:
        self.arrival.reset()
        self._sampler.reseed(self.seed)

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        count = self.arrival.count_between(t0, t1)
        if count == 0:
            return []
        timestamps = self.arrival.timestamps(t0, t1, count)
        ranks = self._sampler.sample(count)
        # identity = rank + epoch(ts) * drift: each epoch retires the
        # bottom `drift_keys` identities and admits as many fresh ones
        epochs = np.floor(np.asarray(timestamps) / self.churn_interval).astype(np.int64)
        drift = self.drift_keys
        return [
            StreamTuple(ts=float(ts), key=f"c{int(rank) + int(epoch) * drift}", value=None)
            for ts, rank, epoch in zip(timestamps, ranks, epochs)
        ]


def key_churn_source(
    *,
    rate: float = 5_000.0,
    num_keys: int = 2_000,
    exponent: float = 1.2,
    churn_interval: float = 2.0,
    drift_keys: int | None = None,
    arrival: ArrivalProcess | None = None,
    seed: int = 0,
) -> KeyChurnSource:
    """A churning Zipf stream (defaults: 10% vocabulary turnover / 2s)."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="Churn",
        paper_size="n/a",
        paper_cardinality="unbounded",
        scaled_cardinality=num_keys,
        description="Zipf stream with vocabulary drift (scenario axis).",
    )
    return KeyChurnSource(
        name=f"churn-z{exponent:g}",
        arrival=arrival,
        num_keys=num_keys,
        exponent=exponent,
        churn_interval=churn_interval,
        drift_keys=drift_keys,
        seed=seed,
        dataset=props,
    )
