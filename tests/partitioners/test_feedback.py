"""Unit tests for the worker-load feedback channel and its consumers."""

from __future__ import annotations

from repro.core.batch import BatchInfo
from repro.core.metrics import evaluate_partition
from repro.partitioners import (
    FEEDBACK_LAG,
    NULL_FEEDBACK,
    DChoicesPartitioner,
    FangRepartitioner,
    FeedbackBuffer,
    NullFeedback,
    Partitioner,
    WChoicesPartitioner,
    WorkerLoadFeedback,
    make_partitioner,
)

from ..conftest import make_tuples, zipfish_freqs


def _fb(index: int, loads: tuple[float, ...] = (1.0, 1.0)) -> WorkerLoadFeedback:
    return WorkerLoadFeedback(
        batch_index=index,
        block_sizes=tuple(100 for _ in loads),
        block_cardinalities=tuple(10 for _ in loads),
        block_loads=loads,
        bucket_weights=(),
        bucket_loads=(),
    )


class SpyPartitioner:
    def __init__(self):
        self.seen: list[int] = []

    def observe_load(self, feedback: WorkerLoadFeedback) -> None:
        self.seen.append(feedback.batch_index)


# ----------------------------------------------------------------------
# FeedbackBuffer / NullFeedback
# ----------------------------------------------------------------------
class TestFeedbackBuffer:
    def test_holds_feedback_until_lag_expires(self):
        buffer = FeedbackBuffer()
        spy = SpyPartitioner()
        for k in range(4):
            delivered = buffer.deliver(spy, k)
            assert delivered == (1 if k >= FEEDBACK_LAG else 0)
            buffer.publish(_fb(k))
        assert spy.seen == [0, 1]  # batches <= 3 - 2

    def test_delivery_is_in_batch_order_regardless_of_publish_order(self):
        buffer = FeedbackBuffer()
        spy = SpyPartitioner()
        # the pipelined driver can drain out of submission order
        for index in (2, 0, 1, 3):
            buffer.publish(_fb(index))
        assert buffer.deliver(spy, 5) == 4
        assert spy.seen == [0, 1, 2, 3]

    def test_each_feedback_is_delivered_exactly_once(self):
        buffer = FeedbackBuffer()
        spy = SpyPartitioner()
        buffer.publish(_fb(0))
        buffer.deliver(spy, 2)
        buffer.deliver(spy, 3)
        buffer.deliver(spy, 99)
        assert spy.seen == [0]

    def test_null_feedback_is_disabled_and_inert(self):
        spy = SpyPartitioner()
        assert NULL_FEEDBACK.enabled is False
        assert isinstance(NULL_FEEDBACK, NullFeedback)
        NULL_FEEDBACK.publish(_fb(0))
        assert NULL_FEEDBACK.deliver(spy, 10) == 0
        assert spy.seen == []

    def test_buffer_is_enabled(self):
        assert FeedbackBuffer().enabled is True


class TestWorkerLoadFeedback:
    def test_relative_block_loads_normalises_by_mean(self):
        fb = _fb(0, loads=(3.0, 1.0))
        assert fb.relative_block_loads() == (1.5, 0.5)

    def test_relative_block_loads_degenerate_cases(self):
        assert _fb(0, loads=()).relative_block_loads() == ()
        assert _fb(0, loads=(0.0, 0.0)).relative_block_loads() == (1.0, 1.0)


def test_base_partitioner_ignores_feedback_by_default():
    assert Partitioner.uses_feedback is False
    part = make_partitioner("hash")
    assert part.uses_feedback is False
    part.observe_load(_fb(0))  # default hook: a no-op


def test_only_the_new_techniques_opt_in():
    consumers = {
        name
        for name in ("hash", "pk2", "pk5", "prompt", "d-choices", "w-choices", "fang")
        if make_partitioner(name).uses_feedback
    }
    assert consumers == {"d-choices", "w-choices", "fang"}


# ----------------------------------------------------------------------
# D-Choices / W-Choices
# ----------------------------------------------------------------------
class TestDChoices:
    def _warm(self, part: DChoicesPartitioner) -> None:
        """Seed the sketch: h carries half the mass, the rest is tail."""
        for key, count in (("h", 50), ("x", 20), ("y", 20), ("z", 10)):
            for _ in range(count):
                part._sketch.add(key)

    def test_degree_scales_with_frequency_share(self):
        part = DChoicesPartitioner(threshold=0.1, sketch_capacity=4)
        assert part._degree("h", 8) == 0  # no evidence yet -> tail
        self._warm(part)
        # share 0.5 / theta 0.1 -> 5 candidates; capped by the cluster
        assert part._degree("h", 8) == 5
        assert part._degree("h", 3) == 3
        # share 0.1 <= theta -> tail, as is an unseen key
        assert part._degree("z", 8) == 0
        assert part._degree("never-seen", 8) == 0

    def test_w_caps_the_degree(self):
        part = DChoicesPartitioner(w=2, threshold=0.1, sketch_capacity=4)
        self._warm(part)
        assert part._degree("h", 8) == 2

    def test_w_choices_uses_every_worker_for_head_keys(self):
        part = WChoicesPartitioner(threshold=0.1, sketch_capacity=4)
        self._warm(part)
        assert part._degree("h", 8) == 8
        assert part._degree("z", 8) == 0
        assert part._degree("h", 1) == 0

    def test_observe_load_biases_against_hot_blocks(self):
        part = DChoicesPartitioner(threshold=0.1, sketch_capacity=4, feedback_weight=1.0)
        part.observe_load(_fb(0, loads=(3.0, 1.0)))
        # mean size 100: block 0 ran 1.5x mean -> +50, block 1 0.5x -> -50
        assert part._load_bias == (50.0, -50.0)
        part.observe_load(_fb(1, loads=()))
        assert part._load_bias == ()

    def test_head_key_avoids_the_observed_hot_block(self):
        part = WChoicesPartitioner(threshold=0.1, sketch_capacity=4, feedback_weight=1.0)
        self._warm(part)
        info = BatchInfo(0, 0.0, 1.0)
        tuples = make_tuples({"h": 40})
        baseline = part.partition(tuples, 2, info)
        spread = {b.index: b.size for b in baseline.blocks}
        assert spread[0] == spread[1] == 20  # no feedback: plain least-loaded
        part.observe_load(_fb(0, loads=(9.0, 1.0)))  # block 0 ran very hot
        biased = part.partition(tuples, 2, info)
        sizes = {b.index: b.size for b in biased.blocks}
        assert sizes[1] > sizes[0]


# ----------------------------------------------------------------------
# Fang
# ----------------------------------------------------------------------
def _run_fang(part: FangRepartitioner, num_batches: int, *, num_blocks: int = 4):
    tuples = make_tuples(zipfish_freqs(24, 600), shuffle_seed=3)
    batches = []
    for k in range(num_batches):
        info = BatchInfo(k, float(k), float(k + 1))
        batches.append(part.partition(tuples, num_blocks, info))
    return batches


class TestFang:
    def test_migrates_toward_balance_and_never_splits(self):
        part = FangRepartitioner()
        batches = _run_fang(part, 4)
        assert part.migrations_total > 0
        first, last = evaluate_partition(batches[0]), evaluate_partition(batches[-1])
        assert last.bsi < first.bsi  # the plan actually helps
        for batch in batches:
            assert evaluate_partition(batch).ksr == 1.0
            assert not batch.split_keys

    def test_max_migrations_caps_moves_per_batch(self):
        part = FangRepartitioner(max_migrations=1)
        _run_fang(part, 3)
        assert 0 < part.migrations_total <= 3

    def test_prohibitive_migration_cost_freezes_the_routing(self):
        part = FangRepartitioner(migration_cost=1_000.0)
        batches = _run_fang(part, 3)
        assert part.migrations_total == 0
        # with no migrations every batch keeps the initial hash layout
        layouts = [
            {b.index: sorted(b.fragment_sizes()) for b in batch.blocks}
            for batch in batches
        ]
        assert layouts[0] == layouts[1] == layouts[2]

    def test_reset_clears_all_learned_state(self):
        part = FangRepartitioner()
        _run_fang(part, 3)
        part.reset()
        assert part.migrations_total == 0
        assert part._routing == {} and part._rates == {}

    def test_observed_load_steers_the_blend(self):
        part = FangRepartitioner(feedback_weight=1.0)
        _run_fang(part, 1)
        part.observe_load(_fb(0, loads=(4.0, 1.0, 1.0, 2.0)))
        assert part._observed_relative == (2.0, 0.5, 0.5, 1.0)

    def test_identical_history_gives_identical_layouts(self):
        a, b = FangRepartitioner(), FangRepartitioner()
        for part in (a, b):
            part.reset()
        batches_a = _run_fang(a, 3)
        batches_b = _run_fang(b, 3)
        for x, y in zip(batches_a, batches_b):
            assert [bl.fragment_sizes() for bl in x.blocks] == [
                bl.fragment_sizes() for bl in y.blocks
            ]
