"""Pipelined-driver overlap benchmark and its CI gate.

Runs a CPU-heavy WordCount (crc32-mixing Map bodies) over a high-rate
Zipf stream through the accumulator partitioner — both sides of the
pipeline genuinely expensive — at ``pipeline_depth`` 1 and 2 on the
parallel backend.  The bench asserts byte-identical outputs between
depths before reporting any number, so the artifact can never show a
speedup obtained by changing the answer.

This is also the regression gate for the pipelined driver: depth 2 must
finish in at most 0.9x the depth-1 wall-clock, and the overlap
accounting must show real reclaimed execution time.  A second probe
gates the ingest fast path: the one-lookup ``HTable.append`` must not
be slower than the two-lookup idiom it replaced.

Artifact: ``benchmarks/results/BENCH_pipeline_overlap.json``.
"""

from __future__ import annotations

from repro.bench import (
    bench_ingest_fast_path,
    bench_pipeline_overlap,
    format_table,
)


def test_pipeline_overlap(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_pipeline_overlap(
            rate=6_000.0,
            num_batches=6,
            num_keys=2_000,
            exponent=1.1,
            num_blocks=8,
            vocab_size=5_000,
            workers=2,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    ingest = bench_ingest_fast_path()
    record_experiment(
        "BENCH_pipeline_overlap",
        format_table(rows, title="Pipelined driver: wall-clock by depth")
        + "\n"
        + format_table([ingest], title="Ingest fast path: ns per tuple"),
        {"overlap": rows, "ingest": ingest},
        store=dict(backend="parallel", partitioner="prompt"),
    )
    assert len(rows) == 2
    for row in rows:
        # output equality is asserted inside the bench; re-check the flag
        assert row["OutputsIdentical"] is True
        assert row["WallSeconds"] > 0
    depth1 = next(r for r in rows if r["Depth"] == 1)
    depth2 = next(r for r in rows if r["Depth"] == 2)
    # depth 1 is the synchronous path: no handle joins, no overlap
    assert depth1["OverlapSeconds"] == 0.0
    assert depth1["StallSeconds"] == 0.0
    # the pipelined run really overlapped execution with driver work
    assert depth2["OverlapSeconds"] > 0.0
    # The acceptance gate: overlapping batch k+1's ingest/partition with
    # batch k's execution must buy at least 10% of the sequential wall.
    ratio = depth2["WallSeconds"] / depth1["WallSeconds"]
    assert ratio <= 0.9, (
        f"expected depth-2 wall <= 0.9x depth-1, got {ratio:.3f}x "
        f"({depth1['WallSeconds']:.3f}s -> {depth2['WallSeconds']:.3f}s)"
    )
    # The ingest fast path: one dict probe per tuple instead of two must
    # not be slower (it is typically ~1.2x faster; the gate only demands
    # parity so clock noise cannot flake CI).
    assert ingest["Speedup"] >= 1.0, (
        f"one-lookup append slower than the two-lookup idiom: "
        f"{ingest['TwoLookupNsPerTuple']:.0f} -> "
        f"{ingest['OneLookupNsPerTuple']:.0f} ns/tuple"
    )
