"""Arrival processes: rates, integrated counts, timestamp placement."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.workloads.arrival import (
    ConstantRate,
    PiecewiseRate,
    RampRate,
    ScaledRate,
    SinusoidalRate,
)


def test_constant_rate_counts():
    arr = ConstantRate(100.0)
    assert arr.count_between(0.0, 1.0) == 100
    assert arr.count_between(1.0, 3.0) == 200


def test_constant_rate_validation():
    with pytest.raises(ValueError):
        ConstantRate(-1.0)


def test_fractional_carry_preserves_totals():
    arr = ConstantRate(10.5)
    total = sum(arr.count_between(i * 1.0, (i + 1) * 1.0) for i in range(10))
    assert total == 105


def test_reset_clears_carry():
    arr = ConstantRate(10.5)
    arr.count_between(0.0, 1.0)
    arr.reset()
    assert arr._carry == 0.0


def test_timestamps_ordered_and_bounded():
    arr = ConstantRate(50.0)
    ts = arr.timestamps(2.0, 3.0, 50)
    assert len(ts) == 50
    assert np.all(np.diff(ts) >= 0)
    assert ts[0] >= 2.0
    assert ts[-1] < 3.0


def test_timestamps_zero_count():
    assert len(ConstantRate(10.0).timestamps(0.0, 1.0, 0)) == 0


def test_sinusoidal_rate_shape():
    arr = SinusoidalRate(mean=100.0, amplitude=50.0, period=4.0)
    assert arr.rate(0.0) == pytest.approx(100.0)
    assert arr.rate(1.0) == pytest.approx(150.0)
    assert arr.rate(3.0) == pytest.approx(50.0)


def test_sinusoidal_rate_floors_at_zero():
    arr = SinusoidalRate(mean=10.0, amplitude=100.0, period=4.0)
    assert arr.rate(3.0) == 0.0


def test_sinusoidal_validation():
    with pytest.raises(ValueError):
        SinusoidalRate(mean=-1, amplitude=1, period=1)
    with pytest.raises(ValueError):
        SinusoidalRate(mean=1, amplitude=-1, period=1)
    with pytest.raises(ValueError):
        SinusoidalRate(mean=1, amplitude=1, period=0)


def test_sinusoidal_timestamps_cluster_at_peak():
    arr = SinusoidalRate(mean=100.0, amplitude=90.0, period=4.0)
    ts = arr.timestamps(0.0, 4.0, 400)
    # peak at t=1 (rate 190), trough at t=3 (rate 10)
    near_peak = np.sum((ts > 0.5) & (ts < 1.5))
    near_trough = np.sum((ts > 2.5) & (ts < 3.5))
    assert near_peak > 3 * near_trough


def test_ramp_rate_profile():
    arr = RampRate(10.0, 110.0, 1.0, 2.0)
    assert arr.rate(0.5) == 10.0
    assert arr.rate(1.5) == pytest.approx(60.0)
    assert arr.rate(5.0) == 110.0


def test_ramp_validation():
    with pytest.raises(ValueError):
        RampRate(-1, 10, 0, 1)
    with pytest.raises(ValueError):
        RampRate(1, 10, 1, 1)


def test_piecewise_rate():
    arr = PiecewiseRate([(0.0, 10.0), (5.0, 100.0)])
    assert arr.rate(1.0) == 10.0
    assert arr.rate(5.0) == 100.0
    assert arr.rate(-1.0) == 0.0


def test_piecewise_validation():
    with pytest.raises(ValueError):
        PiecewiseRate([])
    with pytest.raises(ValueError):
        PiecewiseRate([(0.0, -5.0)])


def test_scaled_rate():
    base = ConstantRate(100.0)
    arr = ScaledRate(base, 2.5)
    assert arr.rate(0.0) == pytest.approx(250.0)
    with pytest.raises(ValueError):
        ScaledRate(base, -1.0)


def test_integrated_count_matches_mean_rate():
    arr = SinusoidalRate(mean=1000.0, amplitude=500.0, period=2.0)
    count = arr.count_between(0.0, 2.0)  # full period: mean holds
    assert count == pytest.approx(2000, abs=20)


def test_degenerate_zero_rate_timestamps_spread():
    arr = ConstantRate(0.0)
    ts = arr.timestamps(0.0, 1.0, 10)
    assert len(ts) == 10
    assert np.all((ts >= 0.0) & (ts < 1.0))
