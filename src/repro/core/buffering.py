"""Frequency-aware micro-batch buffering (Algorithm 1).

While tuples of the current batch interval arrive, the accumulator
maintains:

- an :class:`~repro.core.htable.HTable` chaining the tuples of each key
  with exact frequency counts, and
- a :class:`~repro.core.count_tree.CountTree` of *approximate* counts
  kept quasi-sorted online.

Re-positioning a CountTree node costs ``O(log K)``, so Algorithm 1
rations updates: every key gets a per-interval ``budget`` of tree
updates, and an update fires only when the key's pending frequency delta
reaches its frequency step (``f.step``) or when its time step
(``t.step``) elapses.  ``f.step`` adapts to each key's share of the
traffic (frequent keys need bigger deltas); ``t.step`` guarantees that
rare keys are still refreshed before the heartbeat.  This bounds the
total update work by ``budget * K * log K`` per interval while the
in-order traversal at the heartbeat yields a quasi-sorted key list *for
free* — no post-sort step delays the processing phase (Figure 14a
quantifies what that post-sort would cost).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .batch import BatchInfo
from .config import AccumulatorConfig
from .count_tree import CountTree
from .htable import HTable, KeyRecord
from .tuples import Key, KeyGroup, StreamTuple

__all__ = ["AccumulatedBatch", "MicroBatchAccumulator"]


@dataclass(slots=True)
class AccumulatedBatch:
    """Output of one batching phase.

    ``key_groups`` is quasi-sorted by descending frequency — the order
    the CountTree tracked online.  Each group carries its *exact* tuple
    chain (from the HTable) plus the possibly stale ``tracked_count``
    that determined its position.
    """

    info: BatchInfo
    key_groups: list[KeyGroup]
    tuple_count: int
    total_weight: int
    tree_updates: int

    @property
    def key_count(self) -> int:
        return len(self.key_groups)

    @property
    def data_rate(self) -> float:
        """Average arrival rate over the interval (tuples/second).

        A non-positive interval has no meaningful rate; it reports 0.0
        rather than silently pretending the interval was one second.
        """
        interval = self.info.interval
        return self.tuple_count / interval if interval > 0 else 0.0

    def arrival_order(self) -> list[StreamTuple]:
        """All tuples re-sorted by timestamp (for order-sensitive baselines).

        Each per-key chain is already in arrival (timestamp) order —
        tuples are appended as they arrive — so a K-way merge
        reconstructs the global order in ``O(N log K)`` instead of
        re-sorting the concatenation in ``O(N log N)``.  ``heapq.merge``
        breaks timestamp ties by iterable position, exactly how a stable
        sort of the concatenation would, so the output is identical.
        """
        return list(
            heapq.merge(*(g.tuples for g in self.key_groups), key=lambda t: t.ts)
        )

    def sort_quality(self) -> float:
        """Fraction of adjacent group pairs in correct (descending) exact order.

        1.0 means the quasi-sort equals an exact sort at the granularity
        of adjacent comparisons; used to validate the budget mechanism.
        """
        if len(self.key_groups) < 2:
            return 1.0
        good = sum(
            1
            for a, b in zip(self.key_groups, self.key_groups[1:])
            if a.size >= b.size
        )
        return good / (len(self.key_groups) - 1)


class MicroBatchAccumulator:
    """Implements the Micro-batch Accumulator of Algorithm 1.

    Usage per interval::

        acc = MicroBatchAccumulator(config)
        acc.start_interval(BatchInfo(0, t0, t0 + interval))
        for t in arriving_tuples:
            acc.accept(t)
        batch = acc.finalize()

    ``exact_updates=True`` disables the budget mechanism and reflects
    every tuple into the CountTree immediately (the "no approximation"
    ablation; the traversal is then exactly sorted).
    """

    def __init__(
        self,
        config: AccumulatorConfig | None = None,
        *,
        exact_updates: bool = False,
    ) -> None:
        self.config = config or AccumulatorConfig()
        self.exact_updates = exact_updates
        self.htable = HTable()
        self.count_tree = CountTree()
        self._info: Optional[BatchInfo] = None
        self._tree_updates = 0
        # History for adapting N_est and K_avg (Section 4.1).
        self._tuple_history: deque[int] = deque(maxlen=self.config.history_window)
        self._key_history: deque[int] = deque(maxlen=self.config.history_window)
        self._initial_f_step = self.config.initial_frequency_step

    # ------------------------------------------------------------------
    @property
    def info(self) -> BatchInfo:
        if self._info is None:
            raise RuntimeError("accumulator has no open interval; call start_interval")
        return self._info

    @property
    def tuple_count(self) -> int:
        return self.htable.tuple_count

    @property
    def key_count(self) -> int:
        return len(self.htable)

    @property
    def tree_updates(self) -> int:
        """CountTree repositionings performed in the current interval."""
        return self._tree_updates

    def estimated_tuples(self) -> int:
        """``N_est``: expected tuples this interval, from recent history."""
        if not self._tuple_history:
            return self.config.expected_tuples
        return max(1, sum(self._tuple_history) // len(self._tuple_history))

    def average_keys(self) -> int:
        """``K_avg``: average distinct keys over the past few batches."""
        if not self._key_history:
            return self.config.expected_keys
        return max(1, sum(self._key_history) // len(self._key_history))

    # ------------------------------------------------------------------
    def start_interval(self, info: BatchInfo) -> None:
        """Reset HTable and CountTree and open a new batch interval."""
        if info.t_end <= info.t_start:
            raise ValueError(f"empty batch interval: {info}")
        self.htable.clear()
        self.count_tree.clear()
        self._info = info
        self._tree_updates = 0
        # f <- N_est / (K_avg * budget), re-estimated each interval.
        self._initial_f_step = max(
            1, self.estimated_tuples() // (self.average_keys() * self.config.budget)
        )

    def accept(self, t: StreamTuple, now: float | None = None) -> None:
        """Buffer one tuple, possibly refreshing its CountTree node.

        ``now`` is the ingestion time; it defaults to the tuple's source
        timestamp (the simulator feeds tuples in timestamp order, which
        matches the paper's sorted-arrival assumption in Section 2.1).
        """
        info = self.info
        when = t.ts if now is None else now
        record, was_new = self.htable.append(t)
        if was_new:
            self._register_new_key(record, when, info)
            return
        if self.exact_updates:
            self._apply_update(record, when, info, consume_budget=False)
            return
        if record.budget_left <= 0:
            return  # not eligible: budget exhausted for this interval
        delta_freq = record.pending_delta
        delta_time = when - record.last_update_time
        if delta_freq >= record.f_step:
            self._apply_update(record, when, info)
            self._retune_f_step(record, info)
        elif delta_time >= record.t_step:
            self._apply_update(record, when, info)
            self._retune_t_step(record, when, info)
        # else: key is not eligible for an update yet (Algorithm 1 line 21)

    def finalize(self) -> AccumulatedBatch:
        """Close the interval: traverse, package, record history, reset.

        The descending in-order traversal of the CountTree yields the
        quasi-sorted ``<k, count, tupleList>`` list consumed by
        Algorithm 2.
        """
        info = self.info
        groups: list[KeyGroup] = []
        for node in self.count_tree.in_order_desc():
            record = self.htable.get(node.key)
            assert record is not None, "CountTree key missing from HTable"
            groups.append(
                KeyGroup(key=node.key, tuples=record.tuples, tracked_count=node.count)
            )
        batch = AccumulatedBatch(
            info=info,
            key_groups=groups,
            tuple_count=self.htable.tuple_count,
            total_weight=self.htable.weight,
            tree_updates=self._tree_updates,
        )
        self._tuple_history.append(batch.tuple_count)
        self._key_history.append(batch.key_count)
        self.htable.clear()
        self.count_tree.clear()
        self._info = None
        return batch

    def record_interval_stats(self, tuple_count: int, key_count: int) -> None:
        """Feed one interval's totals into the ``N_est``/``K_avg`` history.

        ``finalize`` does this implicitly; the batch ingest kernel
        (:mod:`repro.core.kernels`) computes an interval without ever
        opening one here, so it reports the totals through this hook —
        keeping the cross-batch adaptation state identical between the
        two paths.
        """
        self._tuple_history.append(tuple_count)
        self._key_history.append(key_count)

    def accept_all(self, tuples: Iterable[StreamTuple]) -> None:
        """Bulk-feed tuples (simulator convenience).

        The bound-method hoist matters here: this loop is the receiver's
        per-interval ingest path, and re-resolving ``self.accept`` per
        tuple is measurable at high arrival rates.
        """
        accept = self.accept
        for t in tuples:
            accept(t)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _register_new_key(
        self, record: KeyRecord, when: float, info: BatchInfo
    ) -> None:
        """Algorithm 1, lines 24-30: first sighting of a key."""
        record.node = self.count_tree.insert(record.key, 1)
        record.freq_updated = 1
        record.last_update_time = when
        record.budget_left = self.config.budget
        record.f_step = self._initial_f_step
        remaining = max(info.t_end - when, 0.0)
        record.t_step = remaining / self.config.budget

    def _apply_update(
        self,
        record: KeyRecord,
        when: float,
        info: BatchInfo,
        *,
        consume_budget: bool = True,
    ) -> None:
        """Reflect the key's exact frequency into its CountTree node."""
        assert record.node is not None
        self.count_tree.update(record.node, record.freq_current)
        record.freq_updated = record.freq_current
        record.last_update_time = when
        if consume_budget:
            record.budget_left -= 1
        self._tree_updates += 1

    def _retune_f_step(self, record: KeyRecord, info: BatchInfo) -> None:
        """``f.step = (N_est / budget) * freq_current / N_C`` (line 13)."""
        n_c = max(1, self.htable.tuple_count)
        share = record.freq_current / n_c
        step = (self.estimated_tuples() / self.config.budget) * share
        record.f_step = max(1, int(step))

    def _retune_t_step(self, record: KeyRecord, when: float, info: BatchInfo) -> None:
        """``t.step = (t_end - now) / budget_left`` (line 19)."""
        remaining = max(info.t_end - when, 0.0)
        denom = max(1, record.budget_left)
        record.t_step = remaining / denom
