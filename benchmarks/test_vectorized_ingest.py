"""Vectorized ingest kernels: wall-clock gate vs the pure-Python oracle.

Times the full ingest → quasi-sort → placement pipeline on SynD
light-workload rows with both ``ingest_kernel`` settings.  Every row
first proves the numpy path byte-identical to the oracle (the bench
asserts this internally before timing), then the gate requires a ≥3x
geometric-mean tuples/sec improvement with a 2x floor per row; the
paper-facing 10x target is recorded (the ``prompt-exact`` ablation row
reaches it) but not gated.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.bench import format_table
from repro.bench.ingest import INGEST_SCENARIOS, bench_vectorized_ingest, ingest_gate


def test_vectorized_ingest(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_vectorized_ingest(),
        rounds=1,
        iterations=1,
    )
    gate = ingest_gate(rows)
    payload = {"rows": rows, "gate": gate}
    record_experiment(
        "BENCH_vectorized_ingest",
        format_table(
            rows,
            columns=[
                "Row",
                "ZipfExponent",
                "NumKeys",
                "ExactUpdates",
                "Tuples",
                "PythonSeconds",
                "NumpySeconds",
                "Speedup",
                "NumpyTuplesPerSec",
            ],
            title="Vectorized ingest kernels: python oracle vs numpy wall-clock",
        )
        + "\n\n"
        + format_table([gate], title="Gate: geomean >= 3x, per-row floor 2x"),
        payload,
        store=dict(ingest_kernel="numpy"),
    )

    # Coverage: every default scenario ran and proved identity.
    assert len(rows) == len(INGEST_SCENARIOS)
    assert all(r["OutputsIdentical"] for r in rows)

    # The gate.  The 10x target is informational: the exact-updates
    # ablation clears it by a wide margin on this container, but host
    # noise must not be able to fail CI on an aspirational number.
    assert gate["GatePassed"], gate
