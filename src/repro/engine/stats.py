"""Per-batch execution records and run-level statistics.

End-to-end latency is defined at batch granularity as
``batch interval + processing time`` (Section 1) — plus any queueing
delay when the pipeline falls behind (Cases II-IV of Figure 2).  These
records feed every evaluation figure: throughput (11), task-count
traces (12), reduce-latency distributions (13), and overhead (14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.elasticity import ScalingDecision

__all__ = ["BatchRecord", "RunStats", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for empty input.

    NaN inputs are rejected explicitly: ``sorted`` with NaNs present
    produces an ordering that depends on the input arrangement (NaN
    compares false against everything), which would make the "same"
    distribution yield different percentiles run to run.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if any(math.isnan(v) for v in values):
        raise ValueError("percentile input contains NaN")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """Everything measured about one batch's journey through the engine."""

    index: int
    t_start: float
    heartbeat: float           # processing cut-off (end of batch interval)
    ready_at: float            # when the partitioned batch was ready
    exec_start: float          # when processing actually began
    exec_finish: float
    processing_time: float
    tuple_count: int
    key_count: int
    map_tasks: int
    reduce_tasks: int
    map_durations: tuple[float, ...]
    reduce_durations: tuple[float, ...]
    bucket_weights: tuple[int, ...]
    #: driver-side wall-clock of the partitioning call, split by phase so
    #: Figure-14-style overhead benches can attribute Algorithm 1
    #: (buffering) vs. Algorithm 2 (planning) cost — real time, so both
    #: are excluded from equality like the other measured-seconds fields
    buffer_elapsed: float = field(default=0.0, compare=False)
    plan_elapsed: float = field(default=0.0, compare=False)
    scaling: Optional[ScalingDecision] = None
    #: which execution backend processed the batch.  Excluded from
    #: equality along with the wall-clock fields: two runs that differ
    #: only in *how* tasks were dispatched must compare equal record
    #: for record (the differential harness relies on this).
    backend: str = field(default="serial", compare=False)
    #: measured per-task wall-clock (real seconds, not simulated time)
    map_wall_seconds: tuple[float, ...] = field(default=(), compare=False)
    reduce_wall_seconds: tuple[float, ...] = field(default=(), compare=False)
    #: fault-tolerance tallies from the dispatch layer.  Excluded from
    #: equality like the other dispatch-side fields: a run that needed
    #: retries must still compare equal, record for record, to a clean
    #: run — that equality *is* the exactly-once evidence.
    task_attempts: int = field(default=0, compare=False)
    task_retries: int = field(default=0, compare=False)
    pool_resurrections: int = field(default=0, compare=False)
    speculative_wins: int = field(default=0, compare=False)
    timeout_trips: int = field(default=0, compare=False)
    #: driver→worker dispatch bytes (pickled payloads per launched
    #: attempt, and run-context broadcasts attributed to this batch).
    #: Dispatch-side observations like the tallies above, so likewise
    #: excluded from equality: a delta-dispatch run and a full-payload
    #: run must still compare equal record for record.
    payload_bytes: int = field(default=0, compare=False)
    context_installs: int = field(default=0, compare=False)
    context_bytes: int = field(default=0, compare=False)
    #: pipelined-driver overlap accounting (real seconds, compare=False
    #: like every wall-clock observation): how long the driver stalled
    #: in ``BatchHandle.result()`` joining this batch, and how much of
    #: the batch's execution ran while the driver was off doing other
    #: work (ingesting/partitioning its successor).  Both stay 0.0 at
    #: ``pipeline_depth=1``, where execution is synchronous.
    pipeline_wait_seconds: float = field(default=0.0, compare=False)
    pipeline_overlap_seconds: float = field(default=0.0, compare=False)

    @property
    def partition_elapsed(self) -> float:
        """Total driver-side partitioning wall-clock (buffer + plan)."""
        return self.buffer_elapsed + self.plan_elapsed

    @property
    def batch_interval(self) -> float:
        return self.heartbeat - self.t_start

    @property
    def queue_delay(self) -> float:
        return self.exec_start - self.ready_at

    @property
    def latency(self) -> float:
        """End-to-end: from the first instant of the interval to output."""
        return self.exec_finish - self.t_start

    @property
    def load(self) -> float:
        """``W = processing_time / batch_interval`` (Algorithm 4)."""
        interval = self.batch_interval
        return self.processing_time / interval if interval > 0 else float("inf")

    @property
    def task_wall_seconds(self) -> float:
        """Total measured wall-clock spent in this batch's task bodies."""
        return sum(self.map_wall_seconds) + sum(self.reduce_wall_seconds)

    @property
    def max_reduce_time(self) -> float:
        return max(self.reduce_durations, default=0.0)

    @property
    def mean_reduce_time(self) -> float:
        if not self.reduce_durations:
            return 0.0
        return sum(self.reduce_durations) / len(self.reduce_durations)


@dataclass
class RunStats:
    """Aggregated view over a run's batch records."""

    batch_interval: float
    records: list[BatchRecord] = field(default_factory=list)

    def add(self, record: BatchRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- volumes ---------------------------------------------------------
    @property
    def total_tuples(self) -> int:
        return sum(r.tuple_count for r in self.records)

    def throughput(self) -> float:
        """Processed tuples per second of simulated time.

        The span runs from the first interval's start to whichever came
        last: the final heartbeat or the final batch's actual finish.
        Stopping at the heartbeat alone would divide the tuple count by
        less time than the run really took whenever processing lagged
        the intervals (queue delay > 0, Cases II-IV of Figure 2) —
        overstating throughput exactly for the overloaded runs where the
        number matters most.
        """
        if not self.records:
            return 0.0
        last = self.records[-1]
        span = max(last.exec_finish, last.heartbeat) - self.records[0].t_start
        return self.total_tuples / span if span > 0 else 0.0

    # -- latency / load ---------------------------------------------------
    def latencies(self) -> list[float]:
        return [r.latency for r in self.records]

    def loads(self) -> list[float]:
        return [r.load for r in self.records]

    def mean_latency(self) -> float:
        lat = self.latencies()
        return sum(lat) / len(lat) if lat else 0.0

    def p95_latency(self) -> float:
        return percentile(self.latencies(), 95)

    def max_queue_delay(self) -> float:
        return max((r.queue_delay for r in self.records), default=0.0)

    def mean_load(self, *, skip: int = 0) -> float:
        loads = [r.load for r in self.records[skip:]]
        return sum(loads) / len(loads) if loads else 0.0

    # -- stability --------------------------------------------------------
    def is_stable(self, *, skip: int = 0, max_queue_delay: float | None = None) -> bool:
        """Whether the run kept up: processing fit inside the intervals.

        Stability per Section 1: "The system is stable as long as
        processing time <= batch interval", operationalized as mean load
        <= 1 after warm-up and bounded queueing throughout.
        """
        if not self.records:
            return True
        limit = (
            max_queue_delay
            if max_queue_delay is not None
            else self.batch_interval  # at most one batch stuck behind
        )
        if self.max_queue_delay() > limit:
            return False
        return self.mean_load(skip=skip) <= 1.0

    # -- real wall-clock (execution backends) -----------------------------
    def total_task_wall_seconds(self) -> float:
        """Measured wall-clock summed over every task of every batch.

        This is *real* time spent in task bodies, regardless of where
        they ran; the serial-vs-parallel speedup microbenchmark compares
        it against end-to-end run wall-clock per backend.
        """
        return sum(r.task_wall_seconds for r in self.records)

    def backends_used(self) -> tuple[str, ...]:
        """Distinct execution backends that processed batches, sorted."""
        return tuple(sorted({r.backend for r in self.records}))

    # -- fault tolerance (parallel dispatch) ------------------------------
    def total_task_attempts(self) -> int:
        """Task attempts launched on worker pools, including duplicates."""
        return sum(r.task_attempts for r in self.records)

    def total_task_retries(self) -> int:
        """Attempts re-executed after a transient task failure."""
        return sum(r.task_retries for r in self.records)

    def total_pool_resurrections(self) -> int:
        """Times a broken process pool was rebuilt mid-batch."""
        return sum(r.pool_resurrections for r in self.records)

    def total_speculative_wins(self) -> int:
        """Straggler duplicates that delivered before the original copy."""
        return sum(r.speculative_wins for r in self.records)

    def total_timeout_trips(self) -> int:
        """Per-task timeout deadlines that expired with the task running."""
        return sum(r.timeout_trips for r in self.records)

    # -- dispatch bytes (parallel backend) ---------------------------------
    def total_payload_bytes(self) -> int:
        """Pickled driver→worker payload bytes over every launched attempt."""
        return sum(r.payload_bytes for r in self.records)

    def total_context_installs(self) -> int:
        """Run-context broadcasts installed into worker pools."""
        return sum(r.context_installs for r in self.records)

    def total_context_bytes(self) -> int:
        """Bytes shipped by run-context broadcasts (installs × blob size)."""
        return sum(r.context_bytes for r in self.records)

    # -- pipelined driver (overlap accounting) -----------------------------
    def total_pipeline_wait_seconds(self) -> float:
        """Real seconds the driver stalled joining in-flight batch handles."""
        return sum(r.pipeline_wait_seconds for r in self.records)

    def total_pipeline_overlap_seconds(self) -> float:
        """Real seconds of execution overlapped with driver-side work.

        The wall-clock the pipelined driver reclaimed: execution time
        that elapsed while the driver was buffering/partitioning a later
        batch instead of blocking.  Always 0.0 at ``pipeline_depth=1``.
        """
        return sum(r.pipeline_overlap_seconds for r in self.records)

    # -- figure extracts ----------------------------------------------
    def reduce_time_series(self) -> list[tuple[int, float, float]]:
        """(batch, mean, max) reduce-task times — Figure 13's scatter."""
        return [
            (r.index, r.mean_reduce_time, r.max_reduce_time) for r in self.records
        ]

    def task_count_series(self) -> list[tuple[int, int, int]]:
        """(batch, map_tasks, reduce_tasks) — Figure 12's traces."""
        return [(r.index, r.map_tasks, r.reduce_tasks) for r in self.records]

    def partition_overhead_fractions(self) -> list[float]:
        """Algorithm 2 planning cost as a fraction of the interval — Figure 14b.

        Buffering (Algorithm 1) is excluded: it replaces the receiver's
        ordinary ingestion work and overlaps the batch interval, whereas
        the plan step is the marginal cost Prompt adds at the heartbeat.
        """
        interval = self.batch_interval
        if interval <= 0:
            return []
        return [r.plan_elapsed / interval for r in self.records]
