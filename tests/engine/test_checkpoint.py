"""Driver checkpointing: snapshot/restore and exactly-once continuation."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.checkpoint import (
    CheckpointManager,
    WindowSnapshot,
    restore_window,
    snapshot_window,
)
from repro.engine.windows import WindowedAggregator
from repro.queries.base import SumAggregator

BATCHES = [
    {"a": 1, "b": 2},
    {"a": 3},
    {"c": 5},
    {"a": 1, "c": -5},
    {"b": 4},
    {"a": 2, "b": 1},
]


def _window():
    return WindowedAggregator(SumAggregator(), batches_per_window=3)


def test_snapshot_roundtrip_continues_identically():
    """Crash after batch k, restore, replay the rest: identical answers."""
    for crash_after in range(1, len(BATCHES)):
        reference = _window()
        expected = [reference.add_batch(b) for b in BATCHES]

        live = _window()
        for b in BATCHES[:crash_after]:
            live.add_batch(b)
        snapshot = snapshot_window(live, next_batch_index=crash_after)

        recovered = restore_window(_window(), snapshot)
        resumed = [recovered.add_batch(b) for b in BATCHES[crash_after:]]
        assert resumed == expected[crash_after:], f"crash_after={crash_after}"


def test_snapshot_is_deep():
    live = _window()
    live.add_batch({"a": 1})
    snapshot = snapshot_window(live, 1)
    live.add_batch({"a": 10})
    assert snapshot.answer == {"a": 1}


def test_restore_validates_window_shape():
    live = _window()
    live.add_batch({"a": 1})
    snapshot = snapshot_window(live, 1)
    wrong = WindowedAggregator(SumAggregator(), batches_per_window=5)
    with pytest.raises(ValueError, match="window spans"):
        restore_window(wrong, snapshot)


def test_restore_requires_fresh_target():
    live = _window()
    live.add_batch({"a": 1})
    snapshot = snapshot_window(live, 1)
    dirty = _window()
    dirty.add_batch({"x": 1})
    with pytest.raises(ValueError, match="fresh"):
        restore_window(dirty, snapshot)


def test_snapshot_validation():
    with pytest.raises(ValueError):
        WindowSnapshot(
            next_batch_index=-1, batches_per_window=2, cached_outputs=(), answer={}
        )
    with pytest.raises(ValueError):
        WindowSnapshot(
            next_batch_index=0,
            batches_per_window=1,
            cached_outputs=({}, {}),
            answer={},
        )


def test_manager_save_load_latest_prune(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpt")
    live = _window()
    for i, b in enumerate(BATCHES[:4]):
        live.add_batch(b)
        manager.save(snapshot_window(live, i + 1))
    assert manager.load(2).next_batch_index == 2
    latest = manager.latest()
    assert latest is not None
    assert latest.next_batch_index == 4
    removed = manager.prune(keep=2)
    assert removed == 2
    assert manager.latest().next_batch_index == 4
    with pytest.raises(FileNotFoundError):
        manager.load(1)


def test_manager_latest_empty(tmp_path):
    assert CheckpointManager(tmp_path / "none").latest() is None


def test_manager_rejects_foreign_pickles(tmp_path):
    manager = CheckpointManager(tmp_path)
    path = manager.path_for(0)
    path.write_bytes(pickle.dumps({"not": "a snapshot"}))
    with pytest.raises(TypeError):
        manager.load(0)


def test_manager_prune_validation(tmp_path):
    with pytest.raises(ValueError):
        CheckpointManager(tmp_path).prune(keep=0)
