"""The Prompt scheme packaged behind the common Partitioner interface.

Combines the three run-time pieces of the paper:

- frequency-aware buffering (Algorithm 1) over the batch interval,
- the B-BPFI batch partitioning heuristic (Algorithm 2) at the (early)
  batching cut-off, and
- the B-BPVC reduce allocation heuristic (Algorithm 3) inside each Map
  task during the processing phase.

``partition`` stamps the measured wall-clock partitioning cost onto the
result so the early-release audit (Figure 14b) can compare it against
the 5% slack budget.
"""

from __future__ import annotations

import math
import time
import warnings
from typing import Collection, Sequence

from ..core import kernels
from ..core.batch import BatchInfo, PartitionedBatch
from ..core.batch_partitioner import PromptBatchPartitioner
from ..core.buffering import AccumulatedBatch, MicroBatchAccumulator
from ..core.config import PromptConfig
from ..core.plan_stream import PlanStream, eager_plan_stream
from ..core.reduce_allocator import (
    BucketAssignment,
    KeyCluster,
    ReduceBucketAllocator,
    bpvc_reduce_allocation,
)
from ..core.sketch_accumulator import SketchMicroBatchAccumulator
from ..core.tuples import Key, StreamTuple, sorted_key_groups
from .base import Partitioner

__all__ = ["PromptPartitioner"]


class PromptPartitioner(Partitioner):
    """Prompt's full data-partitioning scheme (Sections 4-5).

    ``post_sort=True`` switches to the ablation of Figure 14a: skip the
    frequency-aware accumulator and sort all keys exactly at the
    heartbeat instead (same partition quality, but the sort happens
    inside the critical path rather than during batching).
    """

    name = "prompt"
    uses_accumulator = True

    #: simulated cost of the heartbeat sort in the post-sort ablation:
    #: seconds per key * log2(keys) (comparison-sort work over the key
    #: list that frequency-aware buffering amortizes into batching).
    SORT_COST_PER_KEY_LOG = 2e-6

    def __init__(
        self,
        config: PromptConfig | None = None,
        *,
        exact_updates: bool = False,
        post_sort: bool = False,
        strategy: str = "greedy",
        stats: str = "tree",
        sketch_capacity: int = 256,
        ingest_kernel: str = "python",
    ) -> None:
        self.config = config or PromptConfig()
        self.post_sort = post_sort
        if stats == "tree":
            self.accumulator: MicroBatchAccumulator | SketchMicroBatchAccumulator = (
                MicroBatchAccumulator(
                    self.config.accumulator, exact_updates=exact_updates
                )
            )
        elif stats == "sketch":
            if exact_updates:
                raise ValueError("exact_updates only applies to stats='tree'")
            self.accumulator = SketchMicroBatchAccumulator(sketch_capacity)
        else:
            raise ValueError(f"stats must be 'tree' or 'sketch', got {stats!r}")
        self.stats = stats
        self.exact_updates = exact_updates
        self.sketch_capacity = sketch_capacity
        self.batch_partitioner = PromptBatchPartitioner(
            self.config.partitioner, strategy=strategy
        )
        self.last_batch: AccumulatedBatch | None = None
        self.ingest_kernel = "python"
        self.configure_ingest(ingest_kernel)

    def configure_ingest(self, kernel: str) -> None:
        """Select the ingest path: ``"python"`` (oracle) or ``"numpy"``.

        ``"numpy"`` enables the batch-at-a-time kernels of
        :mod:`repro.core.kernels` for Algorithm 1 and (with the greedy
        strategy) Algorithm 2 — bit-compatible with the Python path.
        When numpy is not installed the request degrades to the Python
        path with a warning instead of failing the run.
        """
        if kernel not in ("python", "numpy"):
            raise ValueError(
                f"ingest_kernel must be 'python' or 'numpy', got {kernel!r}"
            )
        if kernel == "numpy" and not kernels.HAVE_NUMPY:
            warnings.warn(
                "ingest_kernel='numpy' requested but numpy is not installed; "
                "falling back to the pure-Python ingest path",
                RuntimeWarning,
                stacklevel=2,
            )
            kernel = "python"
        self.ingest_kernel = kernel

    def _kernel_active(self) -> bool:
        """Whether this call should take the vectorized ingest path.

        The kernels replicate the CountTree accumulator; the sketch
        accumulator and the post-sort ablation measure *different*
        mechanisms, so they always run their own (Python) code.
        """
        return (
            self.ingest_kernel == "numpy"
            and self.stats == "tree"
            and not self.post_sort
        )

    def reset(self) -> None:
        """Forget cross-batch state, including the accumulator's adaptive
        N_est/K_avg history, so a fresh run replays identically."""
        if self.stats == "tree":
            self.accumulator = MicroBatchAccumulator(
                self.config.accumulator, exact_updates=self.exact_updates
            )
        else:
            self.accumulator = SketchMicroBatchAccumulator(self.sketch_capacity)
        self.last_batch = None

    # ------------------------------------------------------------------
    def partition(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PartitionedBatch:
        """Buffer ``tuples`` through Algorithm 1, then run Algorithm 2.

        The buffering cost is charged to the batching phase (it runs as
        tuples arrive); only the Algorithm 2 pass — plus the exact sort,
        in the ``post_sort`` ablation — counts as partitioning latency.
        """
        if self.post_sort:
            started = time.perf_counter()
            groups = sorted_key_groups(tuples, descending=True)
            batch = self.batch_partitioner.partition(groups, num_blocks, info)
            batch.plan_elapsed = time.perf_counter() - started
            batch.partitioner_name = "prompt-postsort"
            self.last_batch = None
            return batch

        if self._kernel_active():
            assert isinstance(self.accumulator, MicroBatchAccumulator)
            buffering_started = time.perf_counter()
            ingest = kernels.accumulate_batch(tuples, info, self.accumulator)
            accumulated = ingest.batch
            buffer_elapsed = time.perf_counter() - buffering_started
            self.last_batch = accumulated
            started = time.perf_counter()
            if self.batch_partitioner.strategy == "greedy":
                batch = kernels.plan_greedy(
                    self.batch_partitioner,
                    accumulated.key_groups,
                    num_blocks,
                    info,
                    sizes=ingest.group_sizes,
                    unit_weights=ingest.unit_weights,
                    chain_weights=ingest.chain_weights,
                )
            else:
                batch = self.batch_partitioner.partition(
                    accumulated.key_groups, num_blocks, info
                )
            batch.plan_elapsed = time.perf_counter() - started
        else:
            buffering_started = time.perf_counter()
            self.accumulator.start_interval(info)
            self.accumulator.accept_all(tuples)
            accumulated = self.accumulator.finalize()
            buffer_elapsed = time.perf_counter() - buffering_started
            self.last_batch = accumulated
            started = time.perf_counter()
            batch = self.batch_partitioner.partition(
                accumulated.key_groups, num_blocks, info
            )
            batch.plan_elapsed = time.perf_counter() - started
        batch.buffer_elapsed = buffer_elapsed
        self.metrics.counter(
            "prompt_tree_updates_total",
            "CountTree updates spent by Algorithm 1's per-key budget",
        ).inc(accumulated.tree_updates)
        self.metrics.gauge(
            "prompt_accumulator_keys",
            "Distinct keys the accumulator tracked in the last interval",
        ).set(accumulated.key_count)
        return batch

    def partition_stream(
        self,
        tuples: Sequence[StreamTuple],
        num_blocks: int,
        info: BatchInfo,
    ) -> PlanStream:
        """Stream Algorithm 2's emissions while buffering stays synchronous.

        Algorithm 1 runs to completion on the caller's thread (it is
        batching-phase work and must finish before any placement
        decision exists), then the heap-LPT pass is handed back as a
        :class:`~repro.core.plan_stream.PlanStream` so the dispatcher
        can launch Map tasks for early blocks while the plan tail
        (rebalance + materialization of later blocks) is still running.
        Draining the stream yields a batch byte-identical to
        :meth:`partition`.  The post-sort ablation deliberately plans
        eagerly: its entire point is paying the plan inside the critical
        path, so overlapping it would unmeasure the ablation.
        """
        if self.post_sort:
            return eager_plan_stream(self.partition(tuples, num_blocks, info))

        if self._kernel_active():
            assert isinstance(self.accumulator, MicroBatchAccumulator)
            buffering_started = time.perf_counter()
            ingest = kernels.accumulate_batch(tuples, info, self.accumulator)
            accumulated = ingest.batch
            buffer_elapsed = time.perf_counter() - buffering_started
            self.last_batch = accumulated
            if self.batch_partitioner.strategy == "greedy":
                gen = kernels.plan_greedy_stream(
                    self.batch_partitioner,
                    accumulated.key_groups,
                    num_blocks,
                    info,
                    sizes=ingest.group_sizes,
                    unit_weights=ingest.unit_weights,
                    chain_weights=ingest.chain_weights,
                )
            else:
                gen = self.batch_partitioner.partition_stream(
                    accumulated.key_groups, num_blocks, info
                )
        else:
            buffering_started = time.perf_counter()
            self.accumulator.start_interval(info)
            self.accumulator.accept_all(tuples)
            accumulated = self.accumulator.finalize()
            buffer_elapsed = time.perf_counter() - buffering_started
            self.last_batch = accumulated
            gen = self.batch_partitioner.partition_stream(
                accumulated.key_groups, num_blocks, info
            )
        # buffering is done, so the accumulator telemetry is final; the
        # eager path emits these after planning, but the registry is
        # cumulative so the end-of-run values are identical either way
        self.metrics.counter(
            "prompt_tree_updates_total",
            "CountTree updates spent by Algorithm 1's per-key budget",
        ).inc(accumulated.tree_updates)
        self.metrics.gauge(
            "prompt_accumulator_keys",
            "Distinct keys the accumulator tracked in the last interval",
        ).set(accumulated.key_count)
        return PlanStream(info, gen, buffer_elapsed=buffer_elapsed)

    def partition_accumulated(
        self, accumulated: AccumulatedBatch, num_blocks: int
    ) -> PartitionedBatch:
        """Algorithm 2 over an already-buffered batch (engine fast path)."""
        self.last_batch = accumulated
        started = time.perf_counter()
        batch = self.batch_partitioner.partition(
            accumulated.key_groups, num_blocks, accumulated.info
        )
        batch.plan_elapsed = time.perf_counter() - started
        return batch

    def heartbeat_overhead(self, batch: PartitionedBatch) -> float:
        """Post-sort pays an explicit K log K sort inside the heartbeat.

        With Early Batch Release (the default), the partitioning work is
        hidden in the batching slack and costs the processing phase
        nothing — the contrast Figure 14a measures.
        """
        if not self.post_sort:
            return 0.0
        keys = len(batch.distinct_keys())
        if keys == 0:
            return 0.0
        return self.SORT_COST_PER_KEY_LOG * keys * max(1.0, math.log2(keys))

    # ------------------------------------------------------------------
    def allocate_reduce(
        self,
        clusters: Sequence[KeyCluster],
        split_keys: Collection[Key],
        num_buckets: int,
    ) -> BucketAssignment:
        """Algorithm 3: local load-aware allocation instead of hashing."""
        allocator = ReduceBucketAllocator(num_buckets)
        return allocator.allocate(list(clusters), split_keys)

    def reduce_allocation(self):
        """Slim process-safe handle: Algorithm 3 without the accumulator.

        The partitioner instance drags the whole buffered batch
        (``last_batch``) along; pickling it into every Map task would
        dwarf the task payload, so parallel backends get the stateless
        module-level function instead.
        """
        return bpvc_reduce_allocation
