"""Benchmark harness regenerating the paper's tables and figures."""

from .experiments import (
    PAPER_TECHNIQUES,
    fig6_assignment_tradeoffs,
    fig10_partition_metrics,
    fig11_throughput_vs_interval,
    fig11d_skew_sweep,
    fig12_elasticity,
    fig13_latency_distribution,
    fig14a_post_sort_throughput,
    fig14b_partition_overhead,
    table1_dataset_stats,
)
from .harness import ThroughputResult, ThroughputSearch, run_at_rate
from .ingest import INGEST_SCENARIOS, bench_vectorized_ingest, ingest_gate
from .report import render_run, sparkline
from .reporting import format_series, format_table, results_dir, save_results
from .payload import (
    VocabWeightTable,
    bench_payload_overhead,
    broadcast_wordcount_query,
)
from .pipeline import bench_ingest_fast_path, bench_pipeline_overlap
from .shootout import (
    SHOOTOUT_TECHNIQUES,
    ShootoutScenario,
    joint_imbalance_score,
    partitioner_shootout,
    high_skew_verdicts,
    shootout_quality,
    shootout_runtime,
    shootout_scenarios,
)
from .speedup import bench_parallel_speedup, heavy_count_one

__all__ = [
    "INGEST_SCENARIOS",
    "PAPER_TECHNIQUES",
    "SHOOTOUT_TECHNIQUES",
    "ShootoutScenario",
    "ThroughputResult",
    "ThroughputSearch",
    "VocabWeightTable",
    "bench_ingest_fast_path",
    "bench_parallel_speedup",
    "bench_payload_overhead",
    "bench_pipeline_overlap",
    "bench_vectorized_ingest",
    "broadcast_wordcount_query",
    "fig6_assignment_tradeoffs",
    "fig10_partition_metrics",
    "fig11_throughput_vs_interval",
    "fig11d_skew_sweep",
    "fig12_elasticity",
    "fig13_latency_distribution",
    "fig14a_post_sort_throughput",
    "fig14b_partition_overhead",
    "format_series",
    "format_table",
    "heavy_count_one",
    "joint_imbalance_score",
    "partitioner_shootout",
    "high_skew_verdicts",
    "ingest_gate",
    "render_run",
    "results_dir",
    "shootout_quality",
    "shootout_runtime",
    "shootout_scenarios",
    "sparkline",
    "run_at_rate",
    "save_results",
    "table1_dataset_stats",
]
