"""Execution backends: seeds, registry, fallback policy, pool lifecycle,
and the task-level fault-tolerance layer (retries, pool resurrection,
straggler speculation)."""

from __future__ import annotations

import pickle

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.engine.engine import EngineConfig
from repro.engine.executors import (
    EXECUTOR_NAMES,
    ExecutorKind,
    ParallelExecutor,
    PayloadSerializationError,
    SerialExecutor,
    _is_infrastructure_error,
    make_executor,
)
from repro.engine.faults import InjectedTaskFault, TaskFaultInjector, TransientTaskError
from repro.engine.tasks import TaskCostModel, derive_task_seed, execute_batch_tasks
from repro.partitioners import HashPartitioner
from repro.queries.base import Query, SumAggregator
from repro.queries.wordcount import count_one

INFO = BatchInfo(0, 0.0, 1.0)


def _tuples(n=40, keys=5):
    return [
        StreamTuple(ts=i * 0.01, key=f"k{i % keys}", value=i) for i in range(n)
    ]


def _batch(tuples=None, p=3):
    part = HashPartitioner()
    return part.partition(tuples if tuples is not None else _tuples(), p, INFO), part


def _query(**kw):
    kw.setdefault("map_fn", count_one)
    return Query(name="q", aggregator=SumAggregator(), **kw)


# ----------------------------------------------------------------------
# seed derivation
# ----------------------------------------------------------------------
def test_task_seed_is_stable():
    assert derive_task_seed(0, 0, "map", 0) == derive_task_seed(0, 0, "map", 0)


def test_task_seed_distinguishes_every_coordinate():
    base = derive_task_seed(1, 2, "map", 3)
    assert derive_task_seed(9, 2, "map", 3) != base
    assert derive_task_seed(1, 9, "map", 3) != base
    assert derive_task_seed(1, 2, "reduce", 3) != base
    assert derive_task_seed(1, 2, "map", 9) != base


def test_task_seed_fits_in_63_bits():
    for args in [(0, 0, "map", 0), (2**40, 10**6, "reduce", 4096)]:
        seed = derive_task_seed(*args)
        assert 0 <= seed < 2**63


# ----------------------------------------------------------------------
# ExecutorKind
# ----------------------------------------------------------------------
def test_executor_kind_is_string_compatible():
    """The enum replaced stringly-typed config without breaking either
    direction: members equal their registry strings and render as them."""
    assert ExecutorKind.SERIAL == "serial"
    assert ExecutorKind.PARALLEL == "parallel"
    assert str(ExecutorKind.PARALLEL) == "parallel"
    assert f"{ExecutorKind.SERIAL}" == "serial"
    assert ExecutorKind("parallel") is ExecutorKind.PARALLEL
    assert EXECUTOR_NAMES == tuple(kind.value for kind in ExecutorKind)


def test_engine_config_normalizes_executor_strings():
    assert EngineConfig().executor is ExecutorKind.SERIAL
    assert EngineConfig(executor="parallel").executor is ExecutorKind.PARALLEL
    assert (
        EngineConfig(executor=ExecutorKind.PARALLEL).executor
        is ExecutorKind.PARALLEL
    )


def test_engine_config_rejects_unknown_executor():
    with pytest.raises(ValueError, match="executor must be one of"):
        EngineConfig(executor="gpu")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_make_executor_builds_both_backends():
    assert isinstance(make_executor("serial"), SerialExecutor)
    parallel = make_executor("parallel", max_workers=2, run_seed=5)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.max_workers == 2
    assert parallel.run_seed == 5
    parallel.close()


def test_make_executor_accepts_enum_members():
    make_executor(ExecutorKind.SERIAL).close()
    backend = make_executor(ExecutorKind.PARALLEL, max_workers=2)
    assert isinstance(backend, ParallelExecutor)
    backend.close()


def test_make_executor_passes_resident_context_knob():
    on = make_executor("parallel", max_workers=2)
    off = make_executor("parallel", max_workers=2, resident_context=False)
    try:
        assert on.resident_context is True
        assert off.resident_context is False
    finally:
        on.close()
        off.close()


def test_make_executor_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("gpu")


def test_executor_names_cover_registry():
    for name in EXECUTOR_NAMES:
        make_executor(name).close()


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(0)


# ----------------------------------------------------------------------
# serial backend
# ----------------------------------------------------------------------
def test_serial_executor_matches_reference_function():
    batch, part = _batch()
    query = _query()
    with SerialExecutor(run_seed=3) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    reference = execute_batch_tasks(
        batch, query, part, 2, TaskCostModel(), run_seed=3
    )
    assert execution.batch_output() == reference.batch_output()
    assert execution.map_durations == reference.map_durations
    assert execution.backend == "serial"


# ----------------------------------------------------------------------
# parallel backend
# ----------------------------------------------------------------------
def test_parallel_executor_matches_serial_on_one_batch():
    batch, part = _batch()
    query = _query()
    serial = execute_batch_tasks(batch, query, part, 3, TaskCostModel())
    with ParallelExecutor(2) as backend:
        parallel = backend.run_batch(batch, query, part, 3, TaskCostModel())
    assert backend.fallbacks == 0
    assert parallel.backend == "parallel"
    assert pickle.dumps(parallel.batch_output()) == pickle.dumps(
        serial.batch_output()
    )
    assert parallel.map_durations == serial.map_durations
    assert parallel.reduce_durations == serial.reduce_durations


def test_parallel_pool_is_reused_across_batches():
    part = HashPartitioner()
    with ParallelExecutor(2) as backend:
        for k in range(3):
            info = BatchInfo(k, float(k), float(k + 1))
            batch = part.partition(_tuples(), 3, info)
            backend.run_batch(batch, _query(), part, 2, TaskCostModel())
        assert backend._pool is not None
        pool = backend._pool
        batch = part.partition(_tuples(), 3, BatchInfo(9, 9.0, 10.0))
        backend.run_batch(batch, _query(), part, 2, TaskCostModel())
        assert backend._pool is pool
    assert backend._pool is None  # context exit shut the pool down


def test_unpicklable_query_falls_back_to_serial():
    batch, part = _batch()
    query = _query(map_fn=lambda k, v: 1)  # lambdas cannot be pickled
    with ParallelExecutor(2) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 1
    assert backend.last_fallback_reason is not None
    assert execution.backend == "serial"
    reference = execute_batch_tasks(batch, query, part, 2, TaskCostModel())
    assert execution.batch_output() == reference.batch_output()


def test_unpicklable_query_raises_when_fallback_disabled():
    batch, part = _batch()
    query = _query(map_fn=lambda k, v: 1)
    with ParallelExecutor(2, fallback_to_serial=False) as backend:
        with pytest.raises(Exception):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 0


def _raise_for_k3(key, value):
    if key == "k3":
        raise RuntimeError("application bug in map_fn")
    return 1


def test_application_errors_propagate_instead_of_falling_back():
    batch, part = _batch()
    query = _query(map_fn=_raise_for_k3)
    with ParallelExecutor(2) as backend:
        with pytest.raises(RuntimeError, match="application bug"):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 0  # a masked bug would be worse than a crash


def test_infrastructure_error_classifier():
    """Classification is by raise-site, not message text."""
    assert _is_infrastructure_error(pickle.PicklingError("x"))
    assert _is_infrastructure_error(PayloadSerializationError("unpicklable"))
    assert _is_infrastructure_error(BrokenProcessPool("pool died"))
    # a *worker-raised* TypeError/AttributeError is the query's own bug,
    # even when its message happens to mention pickle
    assert not _is_infrastructure_error(TypeError("cannot pickle '_thread.lock'"))
    assert not _is_infrastructure_error(
        AttributeError("Can't pickle local object 'f.<locals>.<lambda>'")
    )
    assert not _is_infrastructure_error(TypeError("bad operand type"))
    assert not _is_infrastructure_error(AttributeError("no attribute 'foo'"))
    assert not _is_infrastructure_error(RuntimeError("boom"))
    assert not _is_infrastructure_error(AssertionError("key locality violated"))


def _raise_pickle_flavoured_typeerror(key, value):
    raise TypeError("cannot pickle this value (application bug)")


def _raise_pickle_flavoured_attributeerror(key, value):
    raise AttributeError("Can't pickle local object (application bug)")


@pytest.mark.parametrize(
    "map_fn, exc_type",
    [
        (_raise_pickle_flavoured_typeerror, TypeError),
        (_raise_pickle_flavoured_attributeerror, AttributeError),
    ],
)
def test_worker_raised_pickle_flavoured_errors_propagate(map_fn, exc_type):
    """A query bug whose message mentions "pickle" must not be swallowed
    into the serial fallback — the payload pickled fine on the driver."""
    batch, part = _batch()
    query = _query(map_fn=map_fn)
    with ParallelExecutor(2) as backend:
        with pytest.raises(exc_type, match="application bug"):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert backend.fallbacks == 0


def test_parallel_rejects_zero_reducers():
    batch, part = _batch()
    with ParallelExecutor(2) as backend:
        with pytest.raises(ValueError):
            backend.run_batch(batch, _query(), part, 0, TaskCostModel())


def test_close_is_idempotent():
    backend = ParallelExecutor(2)
    backend.close()
    backend.close()


# ----------------------------------------------------------------------
# task-level fault tolerance
# ----------------------------------------------------------------------
def _reference(batch, part, query, reducers=2):
    return execute_batch_tasks(batch, query, part, reducers, TaskCostModel())


def test_injected_crash_is_retried_with_identical_result():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().crash(0, "map", 0, times=2)
    with ParallelExecutor(2, fault_injector=injector, max_task_retries=2) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert execution.backend == "parallel"
    assert execution.task_retries == 2
    # 3 map tasks + 2 retried map attempts + 2 reduce tasks
    assert execution.task_attempts == len(batch.blocks) + 2 + 2
    assert backend.task_retries == 2
    assert backend.fallbacks == 0
    reference = _reference(batch, part, query)
    assert pickle.dumps(execution.batch_output()) == pickle.dumps(
        reference.batch_output()
    )
    assert execution.map_durations == reference.map_durations


def test_retried_task_reuses_its_seed():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().crash(0, "reduce", 1, times=1)
    with ParallelExecutor(2, fault_injector=injector, run_seed=7) as backend:
        execution = backend.run_batch(batch, query, part, 3, TaskCostModel())
    for r in execution.reduce_results:
        assert r.task_seed == derive_task_seed(7, 0, "reduce", r.bucket_index)


def test_retries_exhausted_propagates_the_fault():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().crash(0, "map", 1, times=5)
    with ParallelExecutor(2, fault_injector=injector, max_task_retries=1) as backend:
        with pytest.raises(InjectedTaskFault):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    # an injected fault is transient, not infrastructure: no serial mask
    assert backend.fallbacks == 0
    assert backend.task_retries == 1


def _raise_transient(key, value):
    raise TransientTaskError("flaky dependency")


def test_transient_application_error_consumes_budget_then_propagates():
    """TransientTaskError is retried; a deterministic one eventually
    propagates instead of being masked by the serial fallback."""
    batch, part = _batch()
    query = _query(map_fn=_raise_transient)
    with ParallelExecutor(2, max_task_retries=2) as backend:
        with pytest.raises(TransientTaskError, match="flaky dependency"):
            backend.run_batch(batch, query, part, 2, TaskCostModel())
    # every map task fails deterministically; at least one task had to
    # burn its whole budget before the propagation (others race freely)
    assert 2 <= backend.task_retries <= 2 * len(batch.blocks)
    assert backend.fallbacks == 0


def test_pool_resurrection_resumes_the_same_batch():
    """A poisoned worker breaks the pool mid-wave; the pool is rebuilt
    and only unfinished tasks rerun — the batch still completes parallel."""
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().poison(0, "map", 1)
    with ParallelExecutor(2, fault_injector=injector) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
        assert execution.backend == "parallel"
        assert execution.pool_resurrections == 1
        assert backend.pool_resurrections == 1
        assert backend.fallbacks == 0
        reference = _reference(batch, part, query)
        assert pickle.dumps(execution.batch_output()) == pickle.dumps(
            reference.batch_output()
        )
        # the replacement pool is healthy for the next batch
        batch2 = part.partition(_tuples(), 3, BatchInfo(1, 1.0, 2.0))
        execution2 = backend.run_batch(batch2, query, part, 2, TaskCostModel())
        assert execution2.backend == "parallel"
        assert execution2.pool_resurrections == 0


def test_pool_break_no_longer_pins_the_run_to_serial():
    """Regression: one BrokenProcessPool used to degrade every later
    batch to serial.  With the resurrection budget exhausted the broken
    batch falls back — and the *next* batch runs parallel again."""
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().poison(0, "map", 0)
    with ParallelExecutor(
        2, fault_injector=injector, max_pool_resurrections=0
    ) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
        assert execution.backend == "serial"
        assert backend.fallbacks == 1
        assert "BrokenProcessPool" in backend.last_fallback_reason
        batch2 = part.partition(_tuples(), 3, BatchInfo(1, 1.0, 2.0))
        execution2 = backend.run_batch(batch2, query, part, 2, TaskCostModel())
        assert execution2.backend == "parallel"
        assert backend.fallbacks == 1  # no new fallback


def test_straggler_speculation_races_a_duplicate():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().delay(0, "map", 0, seconds=0.8)
    with ParallelExecutor(
        3, fault_injector=injector, task_timeout=0.05, speculative=True
    ) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert execution.timeout_trips >= 1
    assert execution.speculative_wins >= 1
    assert backend.speculative_wins >= 1
    reference = _reference(batch, part, query)
    assert pickle.dumps(execution.batch_output()) == pickle.dumps(
        reference.batch_output()
    )


def test_timeout_trips_are_counted_without_speculation():
    batch, part = _batch()
    query = _query()
    injector = TaskFaultInjector().delay(0, "map", 0, seconds=0.3)
    with ParallelExecutor(
        2, fault_injector=injector, task_timeout=0.05, speculative=False
    ) as backend:
        execution = backend.run_batch(batch, query, part, 2, TaskCostModel())
    assert execution.timeout_trips >= 1
    assert execution.speculative_wins == 0
    assert execution.task_attempts == len(batch.blocks) + 2  # no duplicates


def test_parallel_rejects_bad_fault_tolerance_knobs():
    with pytest.raises(ValueError):
        ParallelExecutor(2, max_task_retries=-1)
    with pytest.raises(ValueError):
        ParallelExecutor(2, task_timeout=0.0)
    with pytest.raises(ValueError):
        ParallelExecutor(2, max_pool_resurrections=-1)


def test_make_executor_passes_fault_tolerance_knobs():
    injector = TaskFaultInjector()
    backend = make_executor(
        "parallel",
        max_workers=2,
        max_task_retries=5,
        task_timeout=1.5,
        speculative=True,
        max_pool_resurrections=7,
        fault_injector=injector,
    )
    try:
        assert backend.max_task_retries == 5
        assert backend.task_timeout == 1.5
        assert backend.speculative is True
        assert backend.max_pool_resurrections == 7
        assert backend.fault_injector is injector
    finally:
        backend.close()
