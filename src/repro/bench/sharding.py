"""Sharded-topology scale-out benchmark.

Weak-scaling sweep over the shard axis: each row offers ``N`` shards a
multi-tenant SynD union whose aggregate rate grows ∝ ``N`` (per-tenant
rate × N), so a topology that actually spreads work keeps every shard
at the 1-shard baseline load while the fleet's aggregate throughput
grows ~linearly.  All timing is the engine's simulated clock — the
sweep measures the *model's* scale-out behaviour, which is the claim
the sharded topology makes, not host parallelism.

The numbers are worthless unless the topology is answer-preserving, so
the bench first replays one fixed-rate union at 1 shard and 2 shards
and asserts the merged window answers byte-identical (the same
contract ``tests/engine/test_sharding_equivalence.py`` proves per
tenant) before any row is timed.

``scaleout_gate`` turns the rows into the CI verdict: every row
stable, per-shard load flat relative to the 1-shard baseline, and
aggregate throughput ≥ ``0.8 · N × baseline``.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional, Sequence

from ..engine.engine import EngineConfig
from ..engine.sharding import ShardedEngine
from ..queries import wordcount_query
from ..workloads.synd import synd_source
from ..workloads.tenants import MultiTenantSource, TenantStream

__all__ = ["DEFAULT_SHARD_COUNTS", "bench_sharding_scaleout", "scaleout_gate"]

#: the shard axis of the sweep; 1 is the baseline every gate compares to
DEFAULT_SHARD_COUNTS: tuple[int, ...] = (1, 2, 4)

#: (tenant id, Zipf exponent, per-tenant base rate share, seed)
_TENANT_SPECS: tuple[tuple[str, float, float, int], ...] = (
    ("alpha", 1.4, 0.30, 211),
    ("bravo", 0.8, 0.25, 212),
    ("charlie", 1.6, 0.25, 213),
    ("delta", 1.1, 0.20, 214),
)


def _union(total_rate: float, num_keys: int) -> MultiTenantSource:
    return MultiTenantSource(
        [
            TenantStream(
                name,
                synd_source(
                    exponent, num_keys=num_keys, rate=total_rate * share, seed=seed
                ),
            )
            for name, exponent, share, seed in _TENANT_SPECS
        ]
    )


def _config(batch_interval: float) -> EngineConfig:
    return EngineConfig(
        batch_interval=batch_interval, num_blocks=4, num_reducers=4
    )


def _run(
    shards: int,
    total_rate: float,
    *,
    router: str,
    partitioner: str,
    num_batches: int,
    batch_interval: float,
    num_keys: int,
):
    engine = ShardedEngine(
        partitioner,
        wordcount_query(window_length=2 * batch_interval),
        _config(batch_interval),
        num_shards=shards,
        router=router,
    )
    return engine.run(_union(total_rate, num_keys), num_batches=num_batches)


def bench_sharding_scaleout(
    *,
    base_rate: float = 2_000.0,
    num_batches: int = 8,
    batch_interval: float = 0.5,
    num_keys: int = 200,
    router: str = "hash",
    partitioner: str = "prompt",
    shard_counts: Optional[Sequence[int]] = None,
) -> list[dict[str, Any]]:
    """Weak-scaling rows over the shard axis, identity-checked first.

    Raises ``AssertionError`` if the 1-vs-2-shard fixed-rate replay is
    not byte-identical — scale-out numbers for a topology that changes
    answers would be meaningless.
    """
    counts = tuple(shard_counts or DEFAULT_SHARD_COUNTS)
    if 1 not in counts:
        counts = (1,) + counts

    # Identity first: same offered stream, 1 shard vs 2 shards.
    kwargs = dict(
        router=router,
        partitioner=partitioner,
        num_batches=num_batches,
        batch_interval=batch_interval,
        num_keys=num_keys,
    )
    one = _run(1, base_rate, **kwargs)
    two = _run(2, base_rate, **kwargs)
    identical = pickle.dumps(one.window_answers) == pickle.dumps(
        two.window_answers
    )
    assert identical, "sharding changed the merged window answers"

    rows: list[dict[str, Any]] = []
    for shards in counts:
        result = _run(shards, base_rate * shards, **kwargs)
        tuple_shares = [
            r.stats.total_tuples for r in result.shard_results
        ]
        total = sum(tuple_shares) or 1
        rows.append(
            {
                "Shards": shards,
                "Router": router,
                "Partitioner": partitioner,
                "OfferedRate": base_rate * shards,
                "TotalTuples": result.total_tuples(),
                "AggThroughput": result.throughput(),
                "MeanShardLoad": result.mean_load(),
                "MaxShardShare": max(tuple_shares) / total,
                "Stable": result.stable,
                "AnswersIdentical": identical,
            }
        )
    return rows


def scaleout_gate(
    rows: Sequence[dict[str, Any]],
    *,
    throughput_floor: float = 0.8,
    load_band: float = 0.5,
) -> dict[str, Any]:
    """CI verdict over the weak-scaling rows.

    - every row stable (processing fits the intervals at every N),
    - per-shard mean load flat: within ``±load_band`` (relative) of the
      1-shard baseline — rising load under weak scaling means the
      router is concentrating tenants instead of spreading them,
    - aggregate throughput of row N ≥ ``throughput_floor · N ×``
      baseline — the scale-out headline, with slack for merge overhead
      and tenant-granular imbalance.
    """
    baseline = next(r for r in rows if r["Shards"] == 1)
    base_tp = float(baseline["AggThroughput"]) or 1.0
    base_load = float(baseline["MeanShardLoad"]) or 1.0

    worst_speedup_ratio = min(
        float(r["AggThroughput"]) / (base_tp * r["Shards"]) for r in rows
    )
    worst_load_drift = max(
        abs(float(r["MeanShardLoad"]) - base_load) / base_load for r in rows
    )
    all_stable = all(bool(r["Stable"]) for r in rows)
    identical = all(bool(r["AnswersIdentical"]) for r in rows)
    return {
        "AllStable": all_stable,
        "AnswersIdentical": identical,
        "WorstSpeedupRatio": worst_speedup_ratio,
        "WorstLoadDrift": worst_load_drift,
        "GatePassed": (
            all_stable
            and identical
            and worst_speedup_ratio >= throughput_floor
            and worst_load_drift <= load_band
        ),
    }
