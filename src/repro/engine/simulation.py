"""A minimal deterministic discrete-event simulation kernel.

The micro-batch engine is simulated, not wall-clocked: heartbeats,
batch-ready signals, and task completions are events on a virtual
timeline.  Determinism rules: events fire in (time, priority, seq)
order, where ``seq`` is the scheduling order — two events at the same
instant fire in the order they were scheduled unless priorities differ.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on kernel misuse (e.g. scheduling into the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then priority, then seq."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Priority-queue event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._fired = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}; clock is at {self._now:.6f}"
            )
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority=priority, label=label)

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._fired += 1
            event.callback()
            return True
        return False

    def run(self, *, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Drain the queue, optionally stopping the clock at ``until``.

        Events scheduled at exactly ``until`` still fire; later ones
        stay queued with the clock parked at ``until``.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                return
            if fired >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            fired += 1
        if until is not None:
            self._now = max(self._now, until)
