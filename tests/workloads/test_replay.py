"""Replay source: slicing, looping, engine compatibility."""

from __future__ import annotations

import pytest

from repro.core.tuples import StreamTuple
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ReplaySource


def _recording(n=10, spacing=0.1):
    return [StreamTuple(ts=i * spacing, key=f"k{i % 3}") for i in range(n)]


def test_rejects_unsorted_recording():
    tuples = [StreamTuple(ts=1.0, key="a"), StreamTuple(ts=0.5, key="b")]
    with pytest.raises(ValueError, match="sorted"):
        ReplaySource(tuples)


def test_slicing_by_timestamp():
    source = ReplaySource(_recording())
    got = source.tuples_between(0.25, 0.65)
    assert [t.ts for t in got] == pytest.approx([0.3, 0.4, 0.5, 0.6])
    assert source.tuples_between(5.0, 6.0) == []
    assert source.tuples_between(0.5, 0.5) == []


def test_boundaries_are_half_open():
    source = ReplaySource(_recording())
    got = source.tuples_between(0.0, 0.1)
    assert len(got) == 1
    assert got[0].ts == 0.0


def test_len_and_reset():
    source = ReplaySource(_recording(5))
    assert len(source) == 5
    source.reset()  # no-op but must exist
    assert len(source.tuples_between(0.0, 1.0)) == 5


def test_loop_repeats_with_shifted_timestamps():
    source = ReplaySource(_recording(4, spacing=0.2), loop_every=1.0)
    first = source.tuples_between(0.0, 1.0)
    second = source.tuples_between(1.0, 2.0)
    assert len(first) == len(second) == 4
    assert [t.ts for t in second] == pytest.approx([t.ts + 1.0 for t in first])
    assert [t.key for t in second] == [t.key for t in first]


def test_loop_interval_straddling_periods():
    source = ReplaySource(_recording(4, spacing=0.2), loop_every=1.0)
    got = source.tuples_between(0.5, 1.5)
    assert [t.ts for t in got] == pytest.approx([0.6, 1.0, 1.2, 1.4])


def test_loop_validation():
    with pytest.raises(ValueError):
        ReplaySource(_recording(), loop_every=0.0)
    with pytest.raises(ValueError, match="spans past"):
        ReplaySource(_recording(20, spacing=0.1), loop_every=1.0)


def test_replay_through_the_engine():
    recording = [
        StreamTuple(ts=i * 0.01, key=f"w{i % 5}") for i in range(80)
    ]
    source = ReplaySource(recording, loop_every=1.0)
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(window_length=2.0),
        EngineConfig(batch_interval=1.0, num_blocks=2, num_reducers=2),
    )
    result = engine.run(source, 4)
    assert result.stats.total_tuples > 0
    # steady loop: every full batch sees the identical recording
    counts = [r.tuple_count for r in result.stats.records[1:]]
    assert len(set(counts)) == 1
