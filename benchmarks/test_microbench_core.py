"""Micro-benchmarks of the hot per-tuple / per-batch code paths.

Unlike the figure benches (single-shot experiment regenerations), these
use pytest-benchmark's statistical machinery — multiple rounds, real
timing distributions — on the operations a deployment would care about:
accumulator ingestion, CountTree maintenance, Algorithm 2 partitioning,
and Algorithm 3 allocation.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.buffering import MicroBatchAccumulator
from repro.core.count_tree import CountTree
from repro.core.reduce_allocator import KeyCluster, ReduceBucketAllocator
from repro.core.sketch_accumulator import SketchMicroBatchAccumulator
from repro.core.tuples import sorted_key_groups
from repro.partitioners import PromptPartitioner
from repro.workloads.synd import synd_source

INFO = BatchInfo(0, 0.0, 1.0)


@pytest.fixture(scope="module")
def batch_tuples():
    """One 10k-tuple Zipfian batch, built once."""
    return synd_source(1.2, num_keys=5_000, rate=10_000.0, seed=23).tuples_between(
        0.0, 1.0
    )


def test_bench_accumulator_ingest(benchmark, batch_tuples):
    """Algorithm 1 ingestion: HTable chaining + budgeted tree updates."""

    def ingest():
        acc = MicroBatchAccumulator()
        acc.start_interval(INFO)
        acc.accept_all(batch_tuples)
        return acc.finalize()

    batch = benchmark(ingest)
    assert batch.tuple_count == len(batch_tuples)


def test_bench_sketch_accumulator_ingest(benchmark, batch_tuples):
    """Sketch-statistics ingestion (the tuple-at-a-time alternative)."""

    def ingest():
        acc = SketchMicroBatchAccumulator(capacity=256)
        acc.start_interval(INFO)
        acc.accept_all(batch_tuples)
        return acc.finalize()

    batch = benchmark(ingest)
    assert batch.tuple_count == len(batch_tuples)


def test_bench_count_tree_updates(benchmark):
    """Raw CountTree maintenance: 2k keys x 5 repositionings each."""

    def churn():
        tree = CountTree()
        nodes = [tree.insert(i, 1) for i in range(2_000)]
        for round_ in range(5):
            for i, node in enumerate(nodes):
                tree.update(node, node.count + (i % 7) + 1)
        return len(tree)

    assert benchmark(churn) == 2_000


def test_bench_algorithm2_partition(benchmark, batch_tuples):
    """Algorithm 2 over a pre-sorted 10k-tuple batch (16 blocks)."""
    groups = sorted_key_groups(batch_tuples)
    partitioner = PromptPartitioner()

    def run():
        return partitioner.batch_partitioner.partition(groups, 16, INFO)

    batch = benchmark(run)
    assert batch.total_tuples == len(batch_tuples)


def test_bench_algorithm3_allocate(benchmark):
    """Algorithm 3 over 3k key clusters into 16 buckets."""
    clusters = [
        KeyCluster(key=i, size=(i * 37) % 11 + 1) for i in range(3_000)
    ]
    split = {i for i in range(0, 3_000, 101)}
    allocator = ReduceBucketAllocator(16)

    def run():
        return allocator.allocate(clusters, split)

    out = benchmark(run)
    assert len(out.assignment) == 3_000
