"""The candidate cache must stay bounded under key churn.

Regression for the unbounded ``_candidate_cache`` dict the key-split
partitioners used to keep: with a churning vocabulary the lifetime key
universe is unbounded, so the memo has to evict.  Eviction is safe by
construction — candidates are a pure function of (key, buckets, d) —
which the equality test pins down.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.hashing import CandidateCache, candidate_buckets
from repro.partitioners.cam import CAMPartitioner
from repro.partitioners.heavy_split import HeavyHitterSplitPartitioner
from repro.partitioners.key_split import KeySplitPartitioner, PK2Partitioner
from repro.workloads import key_churn_source


class TestCandidateCache:
    def test_returns_the_pure_function_result(self):
        cache = CandidateCache(capacity=4)
        for key in ("a", "b", "c"):
            assert cache.get(key, 8, 2) == candidate_buckets(key, 8, 2)
        assert len(cache) == 3

    def test_capacity_is_a_hard_bound(self):
        cache = CandidateCache(capacity=10)
        for i in range(1000):
            cache.get(f"k{i}", 8, 2)
        assert len(cache) == 10

    def test_evicts_least_recently_used_first(self):
        cache = CandidateCache(capacity=2)
        cache.get("old", 8, 2)
        cache.get("new", 8, 2)
        cache.get("old", 8, 2)  # refresh: "new" is now the LRU entry
        cache.get("third", 8, 2)
        assert ("old", 8, 2) in cache._entries
        assert ("new", 8, 2) not in cache._entries

    def test_eviction_never_changes_candidates(self):
        cache = CandidateCache(capacity=3)
        first = {f"k{i}": cache.get(f"k{i}", 8, 5) for i in range(50)}
        again = {f"k{i}": cache.get(f"k{i}", 8, 5) for i in range(50)}
        assert first == again

    def test_distinct_bucket_counts_are_distinct_entries(self):
        cache = CandidateCache()
        assert cache.get("k", 8, 2) is not cache.get("k", 16, 2)
        assert len(cache) == 2

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CandidateCache(capacity=0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: KeySplitPartitioner(d=2, cache_size=64),
        lambda: PK2Partitioner(),
        lambda: HeavyHitterSplitPartitioner(cache_size=64),
        lambda: CAMPartitioner(cache_size=64),
    ],
    ids=["pkd", "pk2", "pkh", "cam"],
)
def test_cache_stays_bounded_under_key_churn(factory):
    """Many churn batches must not grow the memo past its capacity."""
    part = factory()
    part.reset()
    source = key_churn_source(
        rate=2_000.0, num_keys=500, churn_interval=0.25, drift_keys=250, seed=9
    )
    for k in range(12):
        tuples = source.tuples_between(k * 0.5, (k + 1) * 0.5)
        batch = part.partition(tuples, 8, BatchInfo(k, k * 0.5, (k + 1) * 0.5))
        batch.validate(expected_tuples=len(tuples))
    assert len(part._candidate_cache) <= part._candidate_cache.capacity


def test_layout_unchanged_by_cache_pressure():
    """A tiny cache (constant thrashing) still yields identical layouts."""
    roomy, tiny = KeySplitPartitioner(d=2), KeySplitPartitioner(d=2, cache_size=1)
    source = key_churn_source(rate=2_000.0, num_keys=300, seed=4)
    tuples = source.tuples_between(0.0, 1.0)
    info = BatchInfo(0, 0.0, 1.0)
    a = roomy.partition(tuples, 8, info)
    b = tiny.partition(tuples, 8, info)
    assert [bl.fragment_sizes() for bl in a.blocks] == [
        bl.fragment_sizes() for bl in b.blocks
    ]
