"""Adaptive batch sizing (Das et al., SoCC'14) — the contrasted approach.

The paper's introduction singles out batch-interval resizing as the
prior way to keep micro-batch systems stable: "The batch interval is
resized to maintain an equal relationship between the processing and
batching times.  However, batch resizing ... may lead to delays in
result delivery" (Section 1).  Section 9 calls it *orthogonal* to
Prompt.  To make that comparison runnable, this module implements the
control algorithm: a fixed-point controller that learns the (locally
linear) relationship ``processing_time ≈ slope * interval + intercept``
from recent batches and picks the next interval so that the predicted
processing time is ``target_ratio`` of it.

The extension bench (``benchmarks/test_ext_batch_sizing.py``) runs the
same overload scenario through (a) a fixed interval, (b) this
controller, and (c) Prompt's elasticity — reproducing the trade-off the
paper argues: resizing restores stability *by growing latency*, while
elasticity holds latency and spends resources.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

__all__ = ["BatchSizingConfig", "BatchSizeController"]


@dataclass(frozen=True, slots=True)
class BatchSizingConfig:
    """Control parameters for the batch-interval controller."""

    #: desired processing_time / interval ratio (Das et al. use ~0.9
    #: minus a safety margin)
    target_ratio: float = 0.8
    min_interval: float = 0.25
    max_interval: float = 10.0
    #: recent samples used for the linear fit
    window: int = 8
    #: per-step bound on relative interval change (slew-rate limiting)
    max_step: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.target_ratio < 1.0:
            raise ValueError(f"target_ratio must be in (0, 1), got {self.target_ratio}")
        if not 0 < self.min_interval <= self.max_interval:
            raise ValueError("need 0 < min_interval <= max_interval")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < self.max_step <= 1.0:
            raise ValueError("max_step must be in (0, 1]")


class BatchSizeController:
    """Fixed-point batch-interval controller.

    Feed each completed batch's ``(interval, processing_time)``; ask
    :meth:`next_interval` for the interval the next batch should use.

    With fewer than two distinct samples the controller falls back to a
    multiplicative step toward the target ratio; once the window holds
    a usable spread it solves the linear model
    ``slope * T + intercept = target_ratio * T`` for ``T``.
    """

    def __init__(self, config: BatchSizingConfig | None = None) -> None:
        self.config = config or BatchSizingConfig()
        self._samples: Deque[tuple[float, float]] = deque(maxlen=self.config.window)
        self._current = self.config.min_interval

    @property
    def current_interval(self) -> float:
        return self._current

    def seed(self, interval: float) -> None:
        """Set the starting interval (before any observation)."""
        self._current = self._clamp(interval)

    def observe(self, interval: float, processing_time: float) -> None:
        """Record one completed batch."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if processing_time < 0:
            raise ValueError("processing_time must be >= 0")
        self._samples.append((interval, processing_time))
        self._current = self._clamp(interval)

    def next_interval(self) -> float:
        """The interval the next batch should use."""
        if not self._samples:
            return self._current
        fitted = self._solve_fixed_point()
        if fitted is None:
            fitted = self._multiplicative_step()
        # Slew-rate limit: never move more than max_step relative.
        lo = self._current * (1 - self.config.max_step)
        hi = self._current * (1 + self.config.max_step)
        self._current = self._clamp(min(max(fitted, lo), hi))
        return self._current

    # ------------------------------------------------------------------
    def _clamp(self, interval: float) -> float:
        return min(max(interval, self.config.min_interval), self.config.max_interval)

    def _multiplicative_step(self) -> float:
        """One-sample fallback: scale toward the target ratio."""
        interval, processing = self._samples[-1]
        ratio = processing / interval if interval > 0 else 1.0
        if ratio <= 0:
            return self.config.min_interval
        return interval * ratio / self.config.target_ratio

    def _solve_fixed_point(self) -> float | None:
        """Least-squares fit P = a*T + b, then solve a*T + b = rho*T.

        Returns None when the samples cannot identify the line (all at
        one interval) or the solution is unstable (slope >= rho, i.e.
        processing grows at least as fast as the interval — no interval
        can satisfy the target; the caller's multiplicative step then
        pushes toward max_interval).
        """
        if len(self._samples) < 2:
            return None
        xs = [t for t, _ in self._samples]
        ys = [p for _, p in self._samples]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x < 1e-12:
            return None
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        intercept = mean_y - slope * mean_x
        rho = self.config.target_ratio
        if slope >= rho:
            return None
        solution = intercept / (rho - slope)
        if solution <= 0:
            return self.config.min_interval
        return solution
