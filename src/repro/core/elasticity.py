"""Latency-aware auto-scaling (Section 6, Algorithm 4, Figure 9).

Prompt monitors ``W = processing_time / batch_interval`` and divides the
operating space into three elasticity zones:

- **Zone 1** (``W <= threshold - step``): under-utilized — tasks can be
  removed without violating latency.
- **Zone 2** (``threshold - step < W <= threshold``): the widened
  stability band; no action (it absorbs short spikes and lazily defers
  scale-in).
- **Zone 3** (``W > threshold``): overloaded — batches will queue; more
  tasks are required.

A scale-out fires when Zone 3 persists for ``d`` consecutive batches; a
scale-in when Zone 1 persists for ``d`` batches.  The *kind* of task
added/removed follows the workload statistics collected by the
frequency-aware accumulator over the same window: a rising data rate
adds Map tasks, a rising key count (data distribution) adds Reduce
tasks, both rising adds both.  After any action a grace period of ``d``
batches suppresses reverse decisions (Algorithm 4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import IntEnum

from .config import ElasticityConfig

__all__ = ["Zone", "ScalingDecision", "AutoScaler"]


class Zone(IntEnum):
    """Elasticity zones of Figure 9b."""

    UNDER_UTILIZED = 1
    STABLE = 2
    OVERLOADED = 3


@dataclass(frozen=True, slots=True)
class ScalingDecision:
    """Outcome of observing one batch."""

    zone: Zone
    map_delta: int
    reduce_delta: int
    map_tasks: int
    reduce_tasks: int
    load: float
    reason: str

    @property
    def acted(self) -> bool:
        return self.map_delta != 0 or self.reduce_delta != 0


@dataclass(frozen=True, slots=True)
class _BatchObservation:
    load: float
    data_rate: float
    key_count: int


class AutoScaler:
    """Threshold-based parallelism controller (Algorithm 4)."""

    def __init__(
        self,
        config: ElasticityConfig | None = None,
        *,
        map_tasks: int = 4,
        reduce_tasks: int = 4,
    ) -> None:
        self.config = config or ElasticityConfig()
        cfg = self.config
        if not cfg.min_map_tasks <= map_tasks <= cfg.max_map_tasks:
            raise ValueError(f"initial map_tasks {map_tasks} outside configured bounds")
        if not cfg.min_reduce_tasks <= reduce_tasks <= cfg.max_reduce_tasks:
            raise ValueError(
                f"initial reduce_tasks {reduce_tasks} outside configured bounds"
            )
        self.map_tasks = map_tasks
        self.reduce_tasks = reduce_tasks
        self._history: deque[_BatchObservation] = deque(maxlen=2 * cfg.window)
        self._over_count = 0
        self._under_count = 0
        self._grace_left = 0

    # ------------------------------------------------------------------
    def zone_for(self, load: float) -> Zone:
        cfg = self.config
        if load > cfg.threshold:
            return Zone.OVERLOADED
        if load <= cfg.threshold - cfg.step:
            return Zone.UNDER_UTILIZED
        return Zone.STABLE

    def observe(
        self,
        processing_time: float,
        batch_interval: float,
        *,
        data_rate: float,
        key_count: int,
    ) -> ScalingDecision:
        """Feed one completed batch's statistics; maybe adjust parallelism.

        ``data_rate`` and ``key_count`` are the accumulator's statistics
        for the batch (Section 4.1); they steer *which* stage scales.
        """
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        load = processing_time / batch_interval
        obs = _BatchObservation(load=load, data_rate=data_rate, key_count=key_count)
        self._history.append(obs)
        zone = self.zone_for(load)

        if zone is Zone.OVERLOADED:
            self._over_count += 1
            self._under_count = 0
        elif zone is Zone.UNDER_UTILIZED:
            self._under_count += 1
            self._over_count = 0
        else:
            self._over_count = 0
            self._under_count = 0

        if self._grace_left > 0:
            self._grace_left -= 1
            return self._decision(zone, 0, 0, load, "grace period")

        cfg = self.config
        if zone is Zone.OVERLOADED and self._over_count >= cfg.window:
            return self._scale(zone, load, direction=+1)
        if zone is Zone.UNDER_UTILIZED and self._under_count >= cfg.window:
            return self._scale(zone, load, direction=-1)
        return self._decision(zone, 0, 0, load, "within stability band")

    # ------------------------------------------------------------------
    def _trends(self, direction: int) -> tuple[bool, bool]:
        """Did data rate / key count move with ``direction`` over the window?

        Compares the mean of the most recent ``d`` batches against the
        mean of the ``d`` before them (with a short history, against the
        oldest observation).  ``direction=+1`` asks for increases (scale
        out), ``-1`` for decreases (scale in — "the same criteria",
        Algorithm 4).
        """
        window = self.config.window
        history = list(self._history)
        recent = history[-window:]
        earlier = history[:-window] or history[:1]
        rate_now = sum(o.data_rate for o in recent) / len(recent)
        rate_before = sum(o.data_rate for o in earlier) / len(earlier)
        keys_now = sum(o.key_count for o in recent) / len(recent)
        keys_before = sum(o.key_count for o in earlier) / len(earlier)
        if direction > 0:
            return rate_now > rate_before, keys_now > keys_before
        return rate_now < rate_before, keys_now < keys_before

    def _scale(self, zone: Zone, load: float, *, direction: int) -> ScalingDecision:
        cfg = self.config
        rate_moved, keys_moved = self._trends(direction)
        if not rate_moved and not keys_moved:
            # The load moved without either statistic trending (e.g.
            # heavier values per tuple).  The zone still demands action:
            # default to adjusting the Map stage, which reads the raw
            # input volume.
            rate_moved = True
        want_map = direction if rate_moved else 0
        want_reduce = direction if keys_moved else 0

        new_map = min(cfg.max_map_tasks, max(cfg.min_map_tasks, self.map_tasks + want_map))
        new_reduce = min(
            cfg.max_reduce_tasks, max(cfg.min_reduce_tasks, self.reduce_tasks + want_reduce)
        )
        map_delta = new_map - self.map_tasks
        reduce_delta = new_reduce - self.reduce_tasks
        self.map_tasks = new_map
        self.reduce_tasks = new_reduce
        if map_delta or reduce_delta:
            self._grace_left = cfg.grace
            self._over_count = 0
            self._under_count = 0
            verb = "scale-out" if direction > 0 else "scale-in"
            moved = "up" if direction > 0 else "down"
            reason = (
                f"{verb}: rate {moved if rate_moved else 'flat'}, "
                f"keys {moved if keys_moved else 'flat'}"
            )
        else:
            reason = "at parallelism bounds"
        return self._decision(zone, map_delta, reduce_delta, load, reason)

    def _decision(
        self, zone: Zone, map_delta: int, reduce_delta: int, load: float, reason: str
    ) -> ScalingDecision:
        return ScalingDecision(
            zone=zone,
            map_delta=map_delta,
            reduce_delta=reduce_delta,
            map_tasks=self.map_tasks,
            reduce_tasks=self.reduce_tasks,
            load=load,
            reason=reason,
        )
