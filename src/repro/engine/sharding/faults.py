"""Shard-scoped fault profiles: kill one shard, leave the rest alone.

The existing :class:`~repro.engine.faults.TaskFaultInjector` carries a
``shard`` scope; the helpers here build the two canonical profiles the
sharded differential suite exercises:

- :func:`kill_shard` — poison a Map task so the shard's *worker pool*
  dies mid-batch and is resurrected (requires the parallel executor,
  like any poison fault).  The blast radius is one shard: other shards
  run their own engines and pools, so other tenants' windows are
  untouched — the bulkhead property the ROADMAP asks for.
- :func:`crash_shard` — the executor-agnostic variant: the first
  attempts of a batch's Map tasks raise and are retried in place.

Both are deterministic (attempt-gated, like every task fault), so a
fault-injected sharded run stays byte-identical to a clean one.
"""

from __future__ import annotations

from ..faults import TaskFaultInjector

__all__ = ["crash_shard", "kill_shard"]


def kill_shard(
    shard: int, batch_index: int, *, task_id: int = 0, times: int = 1
) -> TaskFaultInjector:
    """A profile that kills shard ``shard``'s worker pool in one batch.

    The poisoned attempt hard-exits its worker process; the shard's
    engine detects the broken pool, resurrects it, and replays the
    batch from replicated input.  Parallel executor only.
    """
    return TaskFaultInjector(shard=shard).poison(
        batch_index, "map", task_id, times=times
    )


def crash_shard(
    shard: int, batch_index: int, *, task_id: int = 0, times: int = 1
) -> TaskFaultInjector:
    """A profile that crashes (and retries) one Map task on one shard."""
    return TaskFaultInjector(shard=shard).crash(
        batch_index, "map", task_id, times=times
    )
