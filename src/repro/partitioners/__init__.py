"""Batching-phase partitioning techniques: Prompt plus all baselines."""

from .base import Partitioner, StreamingPartitioner
from .cam import CAMPartitioner
from .fang import FangRepartitioner
from .feedback import (
    FEEDBACK_LAG,
    NULL_FEEDBACK,
    FeedbackBuffer,
    NullFeedback,
    WorkerLoadFeedback,
)
from .hashing import HashPartitioner
from .heavy_split import HeavyHitterSplitPartitioner
from .key_split import (
    DChoicesPartitioner,
    KeySplitPartitioner,
    PK2Partitioner,
    PK5Partitioner,
    WChoicesPartitioner,
)
from .prompt import PromptPartitioner
from .registry import PARTITIONER_NAMES, all_paper_techniques, make_partitioner
from .shuffle import ShufflePartitioner
from .time_based import TimeBasedPartitioner

__all__ = [
    "CAMPartitioner",
    "DChoicesPartitioner",
    "FEEDBACK_LAG",
    "FangRepartitioner",
    "FeedbackBuffer",
    "HashPartitioner",
    "HeavyHitterSplitPartitioner",
    "KeySplitPartitioner",
    "NULL_FEEDBACK",
    "NullFeedback",
    "PARTITIONER_NAMES",
    "PK2Partitioner",
    "PK5Partitioner",
    "Partitioner",
    "PromptPartitioner",
    "ShufflePartitioner",
    "StreamingPartitioner",
    "TimeBasedPartitioner",
    "WChoicesPartitioner",
    "WorkerLoadFeedback",
    "all_paper_techniques",
    "make_partitioner",
]
