"""Streaming-dispatch benchmark and its CI gate.

Runs a plan-heavy SynD row — a high-rate Zipf stream whose block
materialization and payload pickling form a real post-first-block tail
— with eager and streamed plan→dispatch on the parallel backend.  The
bench asserts byte-identical outputs between the modes before
reporting any number, so the artifact can never show a speedup
obtained by changing the answer.

This is also the regression gate for streaming dispatch: on multi-core
hosts (where the dispatch thread has a core the Map workers are not
using) the streamed wall must come in at <= 0.92x the eager wall; a
single-core box cannot overlap anything, so it records the honest
ratio and is only checked against pathological overhead.

Artifact: ``benchmarks/results/BENCH_streaming_dispatch.json``.
"""

from __future__ import annotations

from repro.bench import bench_streaming_dispatch, format_table, streaming_gate


def test_streaming_dispatch(benchmark, record_experiment):
    rows = benchmark.pedantic(
        lambda: bench_streaming_dispatch(
            rate=40_000.0,
            num_batches=5,
            num_keys=8_000,
            exponent=1.1,
            num_blocks=8,
            vocab_size=5_000,
            workers=1,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    gate = streaming_gate(rows)
    record_experiment(
        "BENCH_streaming_dispatch",
        format_table(rows, title="Streaming dispatch: wall-clock by mode")
        + "\n"
        + format_table(
            [gate], title="Gate: streamed wall <= 0.92x eager (multi-core)"
        ),
        {"rows": rows, "gate": gate},
        store=dict(backend="parallel", partitioner="prompt"),
    )
    assert len(rows) == 2
    for row in rows:
        # output equality is asserted inside the bench; re-check the flag
        assert row["OutputsIdentical"] is True
        assert row["WallSeconds"] > 0
    eager = next(r for r in rows if r["Mode"] == "eager")
    streamed = next(r for r in rows if r["Mode"] == "streaming")
    assert eager["WallRatioVsEager"] == 1.0
    assert streamed["Tuples"] == eager["Tuples"]
    # The acceptance gate: launching Map tasks while Algorithm 2's plan
    # tail still runs must buy at least 8% of the eager wall wherever a
    # spare core makes overlap physically possible.
    assert gate["GatePassed"], (
        f"streaming dispatch wall ratio {gate['WallRatioVsEager']:.3f}x "
        f"exceeds the {gate['RatioBound']:.2f}x bound "
        f"(cpu_count={gate['CpuCount']})"
    )
