"""The micro-batch stream processing engine façade.

Wires together every substrate piece into the pipeline of Figure 1:

    source -> Receiver -> [partitioner] -> Map stage -> shuffle ->
    Reduce stage -> batch state -> windowed answer

on the discrete-event timeline of Figure 2: batch *k* accumulates over
``[k*I, (k+1)*I)``, its processing is submitted at the heartbeat and
runs FIFO behind any still-executing predecessors, and the end-to-end
latency of the batch is interval + queueing + processing.  Elasticity
(Algorithm 4) observes completed batches and adjusts the numbers of Map
and Reduce tasks used for subsequent batches.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.batch import BatchInfo
from ..core.config import EarlyReleaseConfig, ElasticityConfig
from ..core.early_release import EarlyReleaseController
from ..core.elasticity import AutoScaler, ScalingDecision
from ..core.tuples import Key
from ..core.metrics import evaluate_partition
from ..extensions.batch_sizing import BatchSizeController, BatchSizingConfig
from ..obs import ObservabilityConfig, RunObservability
from ..partitioners.base import Partitioner
from ..partitioners.feedback import FEEDBACK_LAG, NULL_FEEDBACK, FeedbackBuffer
from ..queries.base import Query
from ..workloads.source import StreamSource
from .backpressure import BackpressureConfig, BackpressureMonitor
from .cluster import Cluster, ClusterConfig
from .executors import (
    EXECUTOR_NAMES,
    BatchHandle,
    ExecutionBackend,
    ExecutorKind,
    make_executor,
)
from .faults import FailureInjector, RecoveryEvent, TaskFaultInjector
from .lateness import LatenessConfig, LatenessMonitor
from .receiver import Receiver
from .scheduler import PipelineScheduler, ScheduledJob
from .simulation import EventLoop
from .state import StateStore
from .stats import BatchRecord, RunStats
from .tasks import BatchExecution, TaskCostModel
from .topology import ClusterTopology
from .windows import WindowedAggregator

log = logging.getLogger(__name__)

__all__ = ["EngineConfig", "RunResult", "MicroBatchEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Static engine configuration for one run."""

    batch_interval: float = 1.0
    num_blocks: int = 8
    num_reducers: int = 8
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    cost_model: TaskCostModel = field(default_factory=TaskCostModel)
    early_release: EarlyReleaseConfig = field(default_factory=EarlyReleaseConfig)
    elasticity: Optional[ElasticityConfig] = None
    #: adaptive batch-interval resizing (Das et al.) — the orthogonal
    #: stabilization technique the paper contrasts with; ``batch_interval``
    #: then only seeds the controller.
    batch_sizing: Optional["BatchSizingConfig"] = None
    #: delay contract for late tuples (Section 2.1 / Section 8); None
    #: means the source is trusted to deliver in timestamp order
    lateness: Optional[LatenessConfig] = None
    #: model shuffle locality: blocks/reducers placed round-robin over
    #: nodes and remote fragment fetches pay the cost model's network term
    use_topology: bool = False
    backpressure: BackpressureConfig = field(default_factory=BackpressureConfig)
    track_outputs: bool = True
    replicate_inputs: bool = False
    #: execution backend dispatching Map/Reduce tasks:
    #: ``ExecutorKind.SERIAL`` runs them inline, ``ExecutorKind.PARALLEL``
    #: fans them out over a process pool with bit-identical results (see
    #: repro.engine.executors).  Plain registry strings ("serial"/
    #: "parallel") are accepted for back-compat and normalized to the
    #: enum in ``__post_init__``.
    executor: ExecutorKind = ExecutorKind.SERIAL
    #: worker processes for the parallel backend (None = auto)
    executor_workers: Optional[int] = None
    #: broadcast the run-invariant slice (query, cost model, faults,
    #: trace flag, run seed) once per pool generation and ship per-task
    #: deltas; False restores the legacy full-payload-per-task dispatch
    resident_context: bool = True
    #: stream Algorithm 2's plan into Map dispatch: the partitioner
    #: hands the backend a :class:`~repro.core.plan_stream.PlanStream`
    #: and each finalized block's Map task launches while the plan tail
    #: (rebalance spillover, later blocks' materialization) is still
    #: running.  The parallel backend truly overlaps; other backends
    #: drain the stream eagerly.  Outputs are byte-identical to eager
    #: dispatch — results always merge in block/bucket order — so the
    #: knob moves only real wall-clock, never the answer.
    streaming_dispatch: bool = False
    #: root seed for per-task RNG derivation (run-level determinism)
    run_seed: int = 0
    #: bounded re-execution of transiently-failed task attempts (the
    #: parallel backend re-runs a task from its pickled payload under
    #: the same derived seed, so retried runs stay bit-identical)
    max_task_retries: int = 2
    #: real seconds a task attempt may stay outstanding before it trips
    #: the straggler deadline (None = never)
    task_timeout: Optional[float] = None
    #: duplicate the slowest outstanding task once its deadline trips and
    #: take whichever copy delivers first (requires task_timeout)
    speculative_execution: bool = False
    #: broken-pool rebuilds allowed per task wave before the batch
    #: degrades to the serial fallback
    max_pool_resurrections: int = 2
    #: bounded two-stage pipelining of the driver (Section 2.1 /
    #: Figure 2: interval k+1 buffers *while* interval k processes).
    #: 1 (the default) keeps today's strictly sequential
    #: collect→partition→execute heartbeat; 2 dispatches batch k
    #: asynchronously (``submit_batch``) and overlaps batch k+1's
    #: ingest/partition with its execution, joining handles in batch
    #: order so results stay byte-identical.  Clamped back to 1 (with a
    #: warning) when elasticity or batch sizing is configured: those
    #: feedback loops steer batch k+1 from batch k's completion, which
    #: pipelining would hand them late.
    pipeline_depth: int = 1
    #: span tracing + metrics for this run (None = fully disabled; the
    #: no-op path adds no measurable overhead and never perturbs the
    #: determinism contract — see repro.obs)
    observability: Optional[ObservabilityConfig] = None
    #: ingest/placement implementation forwarded to the partitioner:
    #: ``"python"`` runs the pure-Python reference path, ``"numpy"`` the
    #: vectorized batch kernels (bit-identical outputs; auto-falls back
    #: with a warning when numpy is absent).  None (the default) leaves
    #: whatever the partitioner was constructed with untouched.
    ingest_kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        try:
            # normalize registry strings to the enum (frozen dataclass,
            # hence the object.__setattr__ escape hatch)
            object.__setattr__(self, "executor", ExecutorKind(self.executor))
        except ValueError:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES}, got {self.executor!r}"
            ) from None
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1 when set")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive when set")
        if self.max_pool_resurrections < 0:
            raise ValueError("max_pool_resurrections must be >= 0")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.speculative_execution and self.task_timeout is None:
            raise ValueError(
                "speculative_execution requires task_timeout (speculation "
                "triggers on the straggler deadline)"
            )
        if self.ingest_kernel not in (None, "python", "numpy"):
            raise ValueError(
                "ingest_kernel must be None, 'python' or 'numpy', "
                f"got {self.ingest_kernel!r}"
            )


@dataclass(slots=True)
class _InFlightBatch:
    """Everything the pipelined driver must retain per dispatched batch
    until its handle is joined (in batch order) and the completion is
    fed to windows/state/stats exactly as the sequential path would."""

    index: int
    info: BatchInfo
    tuples: list
    #: the finished plan — ``None`` while a streaming dispatch is in
    #: flight (the plan tail runs on the dispatch thread); resolved from
    #: ``plan`` when the handle joins
    partitioned: Any
    handle: BatchHandle
    map_tasks: int
    reduce_tasks: int
    batch_span_id: int
    #: the in-flight :class:`~repro.core.plan_stream.PlanStream` under
    #: streaming dispatch (``None`` on the eager path)
    plan: Any = None
    #: the receiver's early-release window info, retained so the
    #: deferred ``early.record`` charges the right window
    window: Any = None
    #: real stamp of submit_batch *returning* to the driver.  An eager
    #: backend executes inside the call, so completed_at <= dispatched_at
    #: and the overlap accounting correctly collapses to zero; an async
    #: backend returns immediately and overlap measures true concurrency.
    dispatched_at: float = 0.0


@dataclass
class RunResult:
    """Everything a finished run exposes to callers and benches."""

    stats: RunStats
    window_answers: list[dict[Key, Any]]
    state_store: StateStore
    scaling_history: list[ScalingDecision]
    backpressure: BackpressureMonitor
    recoveries: list[RecoveryEvent]
    early_release: EarlyReleaseController
    lateness: Optional[LatenessMonitor] = None
    #: execution backend that ran the batches ("serial"/"parallel")
    backend_name: str = "serial"
    #: batches where the parallel backend degraded to serial execution
    executor_fallbacks: int = 0
    #: run-level fault-tolerance totals from the dispatch layer (these
    #: also count work done in batches that ultimately fell back, which
    #: the per-record sums in RunStats cannot see)
    executor_task_attempts: int = 0
    executor_task_retries: int = 0
    executor_pool_resurrections: int = 0
    executor_speculative_wins: int = 0
    executor_timeout_trips: int = 0
    #: driver→worker dispatch bytes for the whole run: pickled payload
    #: bytes per launched attempt plus run-context broadcast traffic
    executor_payload_bytes: int = 0
    executor_context_installs: int = 0
    executor_context_bytes: int = 0
    #: the run's tracer + metrics registry (no-op pair when the config
    #: did not enable observability); excluded from equality like every
    #: other observational field
    observability: Optional[RunObservability] = field(default=None, compare=False)

    @property
    def stable(self) -> bool:
        return not self.backpressure.triggered

    def final_window_answer(self) -> dict[Key, Any]:
        return self.window_answers[-1] if self.window_answers else {}


class MicroBatchEngine:
    """Simulated distributed micro-batch stream processing system."""

    def __init__(
        self,
        partitioner: Partitioner,
        query: Query,
        config: EngineConfig | None = None,
        *,
        failure_injector: FailureInjector | None = None,
        task_fault_injector: TaskFaultInjector | None = None,
    ) -> None:
        self.partitioner = partitioner
        self.query = query
        self.config = config or EngineConfig()
        self.failure_injector = failure_injector
        self.task_fault_injector = task_fault_injector

    # ------------------------------------------------------------------
    def run(self, source: StreamSource, num_batches: int) -> RunResult:
        """Process ``num_batches`` consecutive batch intervals of ``source``."""
        if num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {num_batches}")
        cfg = self.config
        obs = RunObservability(cfg.observability)
        tracer, metrics = obs.tracer, obs.metrics
        self.partitioner.bind_observability(metrics)
        backend = make_executor(
            cfg.executor,
            max_workers=cfg.executor_workers,
            run_seed=cfg.run_seed,
            max_task_retries=cfg.max_task_retries,
            task_timeout=cfg.task_timeout,
            speculative=cfg.speculative_execution,
            max_pool_resurrections=cfg.max_pool_resurrections,
            fault_injector=self.task_fault_injector,
            resident_context=cfg.resident_context,
        )
        backend.bind_observability(tracer, metrics)
        loop = EventLoop()
        scheduler = PipelineScheduler(loop)
        cluster = Cluster(cfg.cluster)
        topology = ClusterTopology(cfg.cluster) if cfg.use_topology else None
        early = EarlyReleaseController(cfg.early_release)
        lateness = (
            LatenessMonitor(cfg.lateness) if cfg.lateness is not None else None
        )
        receiver = Receiver(
            source,
            early_release=early,
            use_cutoff=self.partitioner.uses_accumulator,
            lateness=lateness,
        )
        receiver.reset()
        self.partitioner.reset()
        if cfg.ingest_kernel is not None:
            self.partitioner.configure_ingest(cfg.ingest_kernel)
        # Worker-load feedback channel: only built for techniques that
        # opted in, so the default path neither constructs feedback nor
        # calls into the partitioner — byte-identical to the
        # pre-feedback engine.  Delivery lag and ordering are fixed by
        # the FeedbackBuffer contract (see repro.partitioners.feedback),
        # which is what keeps depth-1 and depth-2 drivers equivalent.
        feedback = (
            FeedbackBuffer() if self.partitioner.uses_feedback else NULL_FEEDBACK
        )

        scaler: Optional[AutoScaler] = None
        if cfg.elasticity is not None:
            scaler = AutoScaler(
                cfg.elasticity,
                map_tasks=cfg.num_blocks,
                reduce_tasks=cfg.num_reducers,
            )
        sizer: Optional[BatchSizeController] = None
        if cfg.batch_sizing is not None:
            sizer = BatchSizeController(cfg.batch_sizing)
            sizer.seed(cfg.batch_interval)

        depth = cfg.pipeline_depth
        if depth > 1 and (scaler is not None or sizer is not None):
            log.warning(
                "pipeline_depth=%d clamped to 1: elasticity/batch-sizing "
                "feedback steers batch k+1 from batch k's completion, "
                "which a pipelined driver would deliver too late",
                depth,
            )
            depth = 1
        if depth > FEEDBACK_LAG and self.partitioner.uses_feedback:
            log.warning(
                "pipeline_depth=%d clamped to %d: %s consumes worker-load "
                "feedback, which is only guaranteed published in time when "
                "at most %d batches are in flight",
                depth, FEEDBACK_LAG, self.partitioner.name, FEEDBACK_LAG,
            )
            depth = FEEDBACK_LAG
        if depth > 1 and metrics.enabled:
            metrics.gauge(
                "prompt_pipeline_depth",
                "Bounded pipeline depth the driver ran with (batches in flight)",
            ).set(depth)

        batches_per_window = (
            self.query.window.batches_per_window(cfg.batch_interval)
            if self.query.window is not None
            else 1
        )
        windows = WindowedAggregator(self.query.aggregator, batches_per_window)
        store = StateStore(replicate_inputs=cfg.replicate_inputs)
        monitor = BackpressureMonitor(cfg.backpressure)
        stats = RunStats(batch_interval=cfg.batch_interval)
        window_answers: list[dict[Key, Any]] = []
        scaling_history: list[ScalingDecision] = []
        recoveries: list[RecoveryEvent] = []

        def publish_partition_quality(partitioned) -> None:
            if not metrics.enabled:
                return
            quality = evaluate_partition(partitioned)
            labels = {"technique": self.partitioner.name}
            metrics.gauge(
                "prompt_partition_bsi",
                "Block size-imbalance of the last batch (Eqn. 2)",
                labels,
            ).set(quality.bsi)
            metrics.gauge(
                "prompt_partition_bci",
                "Block cardinality-imbalance of the last batch (Eqn. 4)",
                labels,
            ).set(quality.bci)
            metrics.gauge(
                "prompt_partition_ksr",
                "Key split ratio of the last batch (Eqn. 5)",
                labels,
            ).set(quality.ksr)

        def heartbeat(k: int, t_start: float, interval: float) -> None:
            info = BatchInfo(index=k, t_start=t_start, t_end=t_start + interval)
            batch_span = tracer.start("batch", index=k)
            try:
                with tracer.span("buffer", batch=k):
                    tuples, window = receiver.collect(info)
                map_tasks = scaler.map_tasks if scaler else cfg.num_blocks
                reduce_tasks = scaler.reduce_tasks if scaler else cfg.num_reducers
                feedback.deliver(self.partitioner, k)
                if cfg.streaming_dispatch:
                    # the partition span covers buffering (synchronous)
                    # and the plan *handoff*; the Algorithm 2 passes run
                    # under the backend's plan_emit spans instead
                    with tracer.span(
                        "partition", batch=k, technique=self.partitioner.name
                    ):
                        plan = self.partitioner.partition_stream(
                            tuples, map_tasks, info
                        )
                    handle = backend.submit_batch_stream(
                        plan,
                        self.query,
                        self.partitioner,
                        reduce_tasks,
                        cfg.cost_model,
                        topology=topology,
                        trace_parent=batch_span.span_id,
                    )
                    execution = handle.result()
                    partitioned = plan.result()
                    # deferred past the join: record() is pure
                    # accounting over the plan's *CPU* time (which the
                    # PlanStream measured), so the audit charges the
                    # same cost whether or not dispatch overlapped it
                    early.record(partitioned.plan_elapsed, window)
                    publish_partition_quality(partitioned)
                else:
                    with tracer.span(
                        "partition", batch=k, technique=self.partitioner.name
                    ):
                        partitioned = self.partitioner.partition(
                            tuples, map_tasks, info
                        )
                    early.record(partitioned.plan_elapsed, window)
                    publish_partition_quality(partitioned)
                    execution = backend.run_batch(
                        partitioned,
                        self.query,
                        self.partitioner,
                        reduce_tasks,
                        cfg.cost_model,
                        topology=topology,
                    )
                if feedback.enabled:
                    # execution is in hand here (synchronous dispatch),
                    # but the buffer withholds it until batch k+2's
                    # heartbeat — the same lag the pipelined driver is
                    # physically constrained to, so depth never leaks
                    # into feedback-consuming techniques.
                    feedback.publish(backend.observed_load(partitioned, execution))
                processing = (
                    cluster.stage_makespan(execution.map_durations)
                    + cluster.stage_makespan(execution.reduce_durations)
                    + self.partitioner.heartbeat_overhead(partitioned)
                )
            finally:
                tracer.end(batch_span)

            def on_finish(job: ScheduledJob) -> None:
                self._complete_batch(
                    k,
                    info,
                    tuples,
                    partitioned.buffer_elapsed,
                    partitioned.plan_elapsed,
                    execution,
                    job,
                    map_tasks,
                    reduce_tasks,
                    scaler=scaler,
                    windows=windows,
                    batches_per_window=batches_per_window,
                    store=store,
                    monitor=monitor,
                    stats=stats,
                    window_answers=window_answers,
                    scaling_history=scaling_history,
                    recoveries=recoveries,
                    sizer=sizer,
                    obs=obs,
                    batch_span_id=batch_span.span_id,
                )

            scheduler.submit(k, processing, on_finish)
            if k + 1 < num_batches:
                next_interval = (
                    sizer.next_interval() if sizer is not None else cfg.batch_interval
                )
                loop.schedule(
                    info.t_end + next_interval,
                    lambda: heartbeat(k + 1, info.t_end, next_interval),
                    priority=0,
                    label=f"heartbeat-{k + 1}",
                )

        # -- pipelined driver (depth >= 2) ------------------------------
        # Batch k is dispatched asynchronously (submit_batch) and its
        # handle parked; batch k+1's ingest/partition then overlaps its
        # execution.  Handles join strictly in batch order, and the
        # joined batch's scheduler job is submitted with its *own*
        # heartbeat as the ready time — the simulated timeline (ready,
        # start, finish, queue delay) is computed from the same values
        # in the same order as the sequential path, so depth never
        # leaks into the determinism contract.
        in_flight: deque[_InFlightBatch] = deque()

        # -- bounded completion worker (depth >= 2) ---------------------
        # _complete_batch (output merge, window fold, state put/evict,
        # stats) used to run inline in drain_one, so a large-window merge
        # stalled the driver exactly where pipelining was supposed to
        # buy overlap.  At depth >= 2 completions are handed to a single
        # worker thread and joined in a bounded queue: one thread +
        # batch-ordered enqueue keeps windows/state folding in batch
        # order (the determinism contract), and the bound keeps memory
        # and completion lag finite.  Everything _complete_batch touches
        # (windows, store, stats, monitor, recoveries, window_answers)
        # is owned by the worker while the run is live: the scaler and
        # sizer are always None at depth >= 2 (clamped above), and the
        # driver only reads those structures after the final flush.
        completer: Optional[ThreadPoolExecutor] = None
        completions: deque["Future[None]"] = deque()
        completion_bound = max(2, depth)
        if depth > 1:
            completer = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="prompt-complete"
            )

        def enqueue_completion(complete) -> None:
            if completer is None:
                complete()
                return
            enqueued_at = time.perf_counter()

            def run_completion() -> None:
                complete()
                if metrics.enabled:
                    metrics.histogram(
                        "prompt_completion_lag_seconds",
                        "Real time from a batch's join to the end of its "
                        "deferred completion work",
                    ).observe(time.perf_counter() - enqueued_at)

            completions.append(completer.submit(run_completion))
            while len(completions) > completion_bound:
                # joining the oldest future re-raises anything the
                # completion work raised, so failures surface promptly
                completions.popleft().result()

        def flush_completions() -> None:
            while completions:
                completions.popleft().result()

        def drain_one() -> None:
            entry = in_flight.popleft()
            k = entry.index
            wait_started = time.perf_counter()
            wait_span = tracer.start(
                "pipeline_wait", parent=entry.batch_span_id, batch=k
            )
            try:
                execution = entry.handle.result()
            finally:
                tracer.end(wait_span)
            pipeline_wait = time.perf_counter() - wait_started
            if entry.partitioned is None:
                # streaming dispatch: the plan finished on the dispatch
                # thread before the handle resolved.  Resolve the batch
                # and run the accounting the eager path did at heartbeat
                # time — record() is pure accounting over the PlanStream's
                # measured plan CPU time, so deferring it past the join
                # charges the same cost and perturbs nothing.
                entry.partitioned = entry.plan.result()
                early.record(entry.partitioned.plan_elapsed, entry.window)
                publish_partition_quality(entry.partitioned)
            if feedback.enabled:
                # feedback from batch k-1 (or earlier) published while
                # later batches are in flight; the buffer's fixed lag
                # releases it before batch k+1's partition step
                feedback.publish(
                    backend.observed_load(entry.partitioned, execution)
                )
            if metrics.enabled:
                metrics.histogram(
                    "prompt_pipeline_stall_seconds",
                    "Real time the driver stalled joining an in-flight batch",
                ).observe(pipeline_wait)
            # execution time that elapsed after submit_batch returned
            # control to the driver, minus the tail the driver spent
            # blocked in result(): the wall-clock the pipeline reclaimed.
            overlap = max(
                0.0,
                execution.completed_at - entry.dispatched_at - pipeline_wait,
            )
            processing = (
                cluster.stage_makespan(execution.map_durations)
                + cluster.stage_makespan(execution.reduce_durations)
                + self.partitioner.heartbeat_overhead(entry.partitioned)
            )
            # on_finish=None + synchronous completion: the loop may
            # already be past this batch's simulated finish instant, so
            # a finish *event* could land in the past — the completion
            # work itself depends only on the job's timeline values.
            job = scheduler.submit(
                k, processing, ready_at=entry.info.t_end
            )
            partitioned = entry.partitioned
            enqueue_completion(
                lambda: self._complete_batch(
                    k,
                    entry.info,
                    entry.tuples,
                    partitioned.buffer_elapsed,
                    partitioned.plan_elapsed,
                    execution,
                    job,
                    entry.map_tasks,
                    entry.reduce_tasks,
                    scaler=scaler,
                    windows=windows,
                    batches_per_window=batches_per_window,
                    store=store,
                    monitor=monitor,
                    stats=stats,
                    window_answers=window_answers,
                    scaling_history=scaling_history,
                    recoveries=recoveries,
                    sizer=sizer,
                    obs=obs,
                    batch_span_id=entry.batch_span_id,
                    pipeline_wait=pipeline_wait,
                    pipeline_overlap=overlap,
                )
            )

        def pipelined_heartbeat(k: int, t_start: float, interval: float) -> None:
            # Free a pipeline slot first: with the bound reached, the
            # driver must absorb the oldest completion before it may
            # ingest this interval (bounded depth = bounded memory for
            # parked tuples/partitions and bounded completion lag).
            while len(in_flight) >= depth:
                drain_one()
            info = BatchInfo(index=k, t_start=t_start, t_end=t_start + interval)
            batch_span = tracer.start("batch", index=k)
            try:
                with tracer.span("buffer", batch=k):
                    tuples, window = receiver.collect(info)
                # with depth 2 the drain loop above has joined batch k-2,
                # so exactly the feedback the buffer's lag releases is
                # guaranteed published — same bytes, same order as depth 1
                feedback.deliver(self.partitioner, k)
                plan = None
                if cfg.streaming_dispatch:
                    with tracer.span(
                        "partition", batch=k, technique=self.partitioner.name
                    ):
                        plan = self.partitioner.partition_stream(
                            tuples, cfg.num_blocks, info
                        )
                    # the plan tail and the early-release/quality
                    # accounting resolve in drain_one when the handle
                    # joins; partitioned=None marks the deferral
                    partitioned = None
                    handle = backend.submit_batch_stream(
                        plan,
                        self.query,
                        self.partitioner,
                        cfg.num_reducers,
                        cfg.cost_model,
                        topology=topology,
                        trace_parent=batch_span.span_id,
                    )
                else:
                    with tracer.span(
                        "partition", batch=k, technique=self.partitioner.name
                    ):
                        partitioned = self.partitioner.partition(
                            tuples, cfg.num_blocks, info
                        )
                    early.record(partitioned.plan_elapsed, window)
                    publish_partition_quality(partitioned)
                    handle = backend.submit_batch(
                        partitioned,
                        self.query,
                        self.partitioner,
                        cfg.num_reducers,
                        cfg.cost_model,
                        topology=topology,
                        trace_parent=batch_span.span_id,
                    )
                dispatched_at = time.perf_counter()
            finally:
                tracer.end(batch_span)
            in_flight.append(
                _InFlightBatch(
                    index=k,
                    info=info,
                    tuples=tuples,
                    partitioned=partitioned,
                    handle=handle,
                    map_tasks=cfg.num_blocks,
                    reduce_tasks=cfg.num_reducers,
                    batch_span_id=batch_span.span_id,
                    plan=plan,
                    window=window,
                    dispatched_at=dispatched_at,
                )
            )
            if k + 1 < num_batches:
                loop.schedule(
                    info.t_end + cfg.batch_interval,
                    lambda: pipelined_heartbeat(
                        k + 1, info.t_end, cfg.batch_interval
                    ),
                    priority=0,
                    label=f"heartbeat-{k + 1}",
                )

        entry_heartbeat = heartbeat if depth == 1 else pipelined_heartbeat
        loop.schedule(
            cfg.batch_interval,
            lambda: entry_heartbeat(0, 0.0, cfg.batch_interval),
            label="heartbeat-0",
        )
        log.debug(
            "run starting: partitioner=%s backend=%s batches=%d",
            self.partitioner.name, backend.name, num_batches,
        )
        run_span = tracer.start(
            "run",
            partitioner=self.partitioner.name,
            backend=backend.name,
            batches=num_batches,
        )
        try:
            loop.run()
            # The pipelined driver parks up to `depth` dispatched batches;
            # the heartbeat chain ends with the last of them still in
            # flight.  Join them in batch order before the run closes so
            # stats/windows/state see every batch exactly once — then
            # join the completion worker's tail so every batch's
            # windows/state/stats fold lands before results are read.
            while in_flight:
                drain_one()
            flush_completions()
        finally:
            tracer.end(run_span)
            if completer is not None:
                completer.shutdown(wait=True)
            backend.close()
        if monitor.triggered:
            log.warning(
                "backpressure triggered during the run (batch %s)",
                monitor.triggered_at,
            )
        log.info(
            "run complete: %d batches on %s backend, %d tuples, "
            "throughput %.0f tuples/s, mean latency %.3fs",
            len(stats), backend.name, stats.total_tuples,
            stats.throughput(), stats.mean_latency(),
        )
        written = obs.flush()
        if written:
            log.info(
                "observability exports written: %s",
                ", ".join(str(p) for p in written),
            )
        return RunResult(
            stats=stats,
            window_answers=window_answers,
            state_store=store,
            scaling_history=scaling_history,
            backpressure=monitor,
            recoveries=recoveries,
            early_release=early,
            lateness=lateness,
            backend_name=backend.name,
            executor_fallbacks=backend.fallbacks,
            executor_task_attempts=backend.task_attempts,
            executor_task_retries=backend.task_retries,
            executor_pool_resurrections=backend.pool_resurrections,
            executor_speculative_wins=backend.speculative_wins,
            executor_timeout_trips=backend.timeout_trips,
            executor_payload_bytes=backend.payload_bytes,
            executor_context_installs=backend.context_installs,
            executor_context_bytes=backend.context_bytes,
            observability=obs,
        )

    # ------------------------------------------------------------------
    def _complete_batch(
        self,
        k: int,
        info: BatchInfo,
        tuples: list,
        buffer_elapsed: float,
        plan_elapsed: float,
        execution: BatchExecution,
        job: ScheduledJob,
        map_tasks: int,
        reduce_tasks: int,
        *,
        scaler: Optional[AutoScaler],
        windows: WindowedAggregator,
        batches_per_window: int,
        store: StateStore,
        monitor: BackpressureMonitor,
        stats: RunStats,
        window_answers: list[dict[Key, Any]],
        scaling_history: list[ScalingDecision],
        recoveries: list[RecoveryEvent],
        sizer: Optional[BatchSizeController] = None,
        obs: Optional[RunObservability] = None,
        batch_span_id: Optional[int] = None,
        pipeline_wait: float = 0.0,
        pipeline_overlap: float = 0.0,
    ) -> None:
        """Batch ``k`` finished processing: state, windows, feedback."""
        cfg = self.config
        obs = obs or RunObservability(None)
        tracer, metrics = obs.tracer, obs.metrics
        distinct = set()
        for m in execution.map_results:
            distinct.update(c.key for c in m.clusters)
        key_count = len(distinct)

        output = execution.batch_output() if cfg.track_outputs else {}
        if cfg.track_outputs:
            with tracer.span("window_merge", parent=batch_span_id, batch=k):
                store.put(k, output, tuples if cfg.replicate_inputs else None)
                if self.failure_injector and self.failure_injector.should_fail(k):
                    recoveries.append(
                        self.failure_injector.fail_and_recover(
                            store, k, self.query
                        )
                    )
                    output = dict(store.get(k).output)
                    log.info(
                        "batch %d state lost and recovered (%d keys, match=%s)",
                        k,
                        recoveries[-1].recovered_keys,
                        recoveries[-1].matched_original,
                    )
                window_answers.append(windows.add_batch(output))
                expired = k - batches_per_window
                if expired >= 0:
                    store.evict_through(expired)

        decision: Optional[ScalingDecision] = None
        data_rate = len(tuples) / info.interval
        if scaler is not None:
            decision = scaler.observe(
                job.duration,
                info.interval,
                data_rate=data_rate,
                key_count=key_count,
            )
            scaling_history.append(decision)
        if sizer is not None:
            sizer.observe(info.interval, job.duration)

        record = BatchRecord(
            index=k,
            t_start=info.t_start,
            heartbeat=info.t_end,
            ready_at=job.ready_at,
            exec_start=job.start,
            exec_finish=job.finish,
            processing_time=job.duration,
            tuple_count=len(tuples),
            key_count=key_count,
            map_tasks=map_tasks,
            reduce_tasks=reduce_tasks,
            map_durations=tuple(execution.map_durations),
            reduce_durations=tuple(execution.reduce_durations),
            bucket_weights=tuple(r.input_weight for r in execution.reduce_results),
            buffer_elapsed=buffer_elapsed,
            plan_elapsed=plan_elapsed,
            scaling=decision,
            backend=execution.backend,
            map_wall_seconds=tuple(execution.map_wall_seconds),
            reduce_wall_seconds=tuple(execution.reduce_wall_seconds),
            task_attempts=execution.task_attempts,
            task_retries=execution.task_retries,
            pool_resurrections=execution.pool_resurrections,
            speculative_wins=execution.speculative_wins,
            timeout_trips=execution.timeout_trips,
            payload_bytes=execution.payload_bytes,
            context_installs=execution.context_installs,
            context_bytes=execution.context_bytes,
            pipeline_wait_seconds=pipeline_wait,
            pipeline_overlap_seconds=pipeline_overlap,
        )
        stats.add(record)
        monitor.observe(k, record.load, record.queue_delay, record.batch_interval)
        if metrics.enabled:
            metrics.counter(
                "prompt_batches_total", "Batches completed by the engine"
            ).inc()
            metrics.counter(
                "prompt_tuples_total", "Tuples processed across all batches"
            ).inc(record.tuple_count)
            metrics.histogram(
                "prompt_batch_latency_seconds",
                "End-to-end batch latency (interval + queueing + processing)",
            ).observe(record.latency)
            metrics.histogram(
                "prompt_batch_processing_seconds",
                "Simulated processing time per batch",
            ).observe(record.processing_time)
            metrics.histogram(
                "prompt_queue_delay_seconds",
                "Time a ready batch waited behind its predecessors",
            ).observe(record.queue_delay)
            metrics.histogram(
                "prompt_partition_plan_seconds",
                "Measured Algorithm 2 (partition planning) wall-clock",
            ).observe(plan_elapsed)
            metrics.histogram(
                "prompt_partition_buffer_seconds",
                "Measured Algorithm 1 (frequency-aware buffering) wall-clock",
            ).observe(buffer_elapsed)
            metrics.gauge(
                "prompt_batch_load",
                "W = processing_time / batch_interval of the last batch",
            ).set(record.load)
            for name, help_text, amount in (
                ("prompt_task_attempts_total",
                 "Task attempts launched on worker pools", execution.task_attempts),
                ("prompt_task_retries_total",
                 "Task attempts re-executed after transient failures",
                 execution.task_retries),
                ("prompt_pool_resurrections_total",
                 "Broken process pools rebuilt mid-batch",
                 execution.pool_resurrections),
                ("prompt_speculative_wins_total",
                 "Straggler duplicates that beat the original copy",
                 execution.speculative_wins),
                ("prompt_timeout_trips_total",
                 "Per-task straggler deadlines that expired",
                 execution.timeout_trips),
            ):
                metrics.counter(name, help_text).inc(amount)
        if log.isEnabledFor(logging.DEBUG):
            log.debug(
                "batch %d done: tuples=%d keys=%d load=%.3f latency=%.3fs "
                "backend=%s",
                k, record.tuple_count, record.key_count, record.load,
                record.latency, record.backend,
            )
