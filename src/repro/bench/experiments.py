"""Per-figure experiment definitions (Section 7 of the paper).

Each function regenerates one paper artifact and returns structured
rows; the ``benchmarks/`` suite runs them at full scale and prints the
tables, while unit tests invoke them with tiny parameters to pin the
qualitative shapes.  Experiment IDs follow DESIGN.md's index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from ..core.batch import BatchInfo
from ..core.config import ElasticityConfig
from ..core.metrics import evaluate_partition, relative_metric
from ..engine.cluster import ClusterConfig
from ..engine.engine import EngineConfig, MicroBatchEngine
from ..engine.tasks import TaskCostModel
from ..partitioners.bpfi import (
    assignment_cardinalities,
    assignment_fragments,
    assignment_sizes,
    first_fit_decreasing,
    fragmentation_minimization,
)
from ..partitioners.prompt import PromptPartitioner
from ..partitioners.registry import make_partitioner
from ..queries.wordcount import wordcount_query
from ..workloads.arrival import ConstantRate, RampRate, SinusoidalRate
from ..workloads.elastic import ElasticWorkloadSource
from ..workloads.source import StreamSource
from ..workloads.synd import SYND_EXPONENTS, synd_source
from ..workloads.tweets import tweets_source
from ..workloads.tpch import tpch_lineitem_source
from ..workloads.debs_taxi import debs_taxi_source
from ..workloads.gcm import gcm_source
from .harness import ThroughputSearch

__all__ = [
    "PAPER_TECHNIQUES",
    "table1_dataset_stats",
    "fig6_assignment_tradeoffs",
    "fig10_partition_metrics",
    "fig11_throughput_vs_interval",
    "fig11d_skew_sweep",
    "fig12_elasticity",
    "fig13_latency_distribution",
    "fig14a_post_sort_throughput",
    "fig14b_partition_overhead",
]

#: the techniques compared throughout Section 7, in figure order
PAPER_TECHNIQUES: tuple[str, ...] = (
    "time",
    "shuffle",
    "hash",
    "pk2",
    "pk5",
    "cam",
    "prompt",
)


def _dataset_factories(seed: int) -> dict[str, Callable[..., StreamSource]]:
    return {
        "tweets": lambda **kw: tweets_source(seed=seed, **kw),
        "tpch": lambda **kw: tpch_lineitem_source(seed=seed, **kw),
        "synd": lambda **kw: synd_source(1.0, seed=seed, **kw),
        "debs": lambda **kw: debs_taxi_source(seed=seed, **kw),
        "gcm": lambda **kw: gcm_source(seed=seed, **kw),
    }


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1_dataset_stats(
    *, rate: float = 10_000.0, sample_seconds: float = 2.0, seed: int = 11
) -> list[dict[str, Any]]:
    """Table 1: dataset properties, paper vs. the scaled generators."""
    sources = [
        tweets_source(rate=rate, seed=seed),
        synd_source(1.0, rate=rate, seed=seed),
        debs_taxi_source(rate=rate, seed=seed),
        gcm_source(rate=rate, seed=seed),
        tpch_lineitem_source(rate=rate, seed=seed),
    ]
    rows = []
    for source in sources:
        tuples = source.tuples_between(0.0, sample_seconds)
        props = source.properties()
        assert props is not None
        rows.append(
            {
                "Name": props.name,
                "PaperSize": props.paper_size,
                "PaperCardinality": props.paper_cardinality,
                "ScaledKeyUniverse": props.scaled_cardinality,
                "SampledTuples": len(tuples),
                "SampledDistinctKeys": len({t.key for t in tuples}),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 6 (illustrative assignment trade-offs)
# ----------------------------------------------------------------------
#: the running example of Figure 5: 385 tuples over 8 distinct keys
FIG5_EXAMPLE: tuple[tuple[str, int], ...] = (
    ("K1", 150),
    ("K2", 80),
    ("K3", 50),
    ("K4", 40),
    ("K5", 25),
    ("K6", 20),
    ("K7", 12),
    ("K8", 8),
)


def fig6_assignment_tradeoffs(num_bins: int = 4) -> list[dict[str, Any]]:
    """Figure 6: FFD vs FragMin vs Prompt on the Figure 5 batch."""
    from ..core.tuples import KeyGroup, StreamTuple

    items = list(FIG5_EXAMPLE)
    total = sum(s for _, s in items)
    capacity = -(-total // num_bins)
    rows = []
    for label, solver in (
        ("FirstFitDecreasing", first_fit_decreasing),
        ("FragmentationMinimization", fragmentation_minimization),
    ):
        assignment = solver(items, num_bins, capacity)
        rows.append(
            {
                "Strategy": label,
                "Fragments": assignment_fragments(assignment),
                "FragmentedKeys": assignment_fragments(assignment) - len(items),
                "BinSizes": assignment_sizes(assignment),
                "BinCardinalities": assignment_cardinalities(assignment),
            }
        )
    groups = [
        KeyGroup(
            key=k,
            tuples=[StreamTuple(ts=0.0, key=k, value=None)] * s,
            tracked_count=s,
        )
        for k, s in items
    ]
    prompt = PromptPartitioner()
    batch = prompt.batch_partitioner.partition(
        groups, num_bins, BatchInfo(0, 0.0, 1.0)
    )
    rows.append(
        {
            "Strategy": "Prompt (Algorithm 2)",
            "Fragments": batch.key_fragment_count(),
            "FragmentedKeys": len(batch.split_keys),
            "BinSizes": [b.size for b in batch.blocks],
            "BinCardinalities": [b.cardinality for b in batch.blocks],
        }
    )
    return rows


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------
def fig10_partition_metrics(
    dataset: str = "tweets",
    *,
    num_blocks: int = 16,
    rate: float = 20_000.0,
    interval: float = 1.0,
    seed: int = 5,
    techniques: Sequence[str] = PAPER_TECHNIQUES,
) -> list[dict[str, Any]]:
    """Figure 10: BSI relative to hashing, BCI relative to shuffle."""
    factory = _dataset_factories(seed)[dataset]
    source = factory(rate=rate)
    tuples = source.tuples_between(0.0, interval)
    info = BatchInfo(0, 0.0, interval)
    qualities = {}
    for name in techniques:
        part = make_partitioner(name)
        batch = part.partition(tuples, num_blocks, info)
        batch.validate(expected_tuples=len(tuples))
        qualities[name] = evaluate_partition(batch)
    hash_bsi = qualities["hash"].bsi if "hash" in qualities else 1.0
    shuffle_bci = qualities["shuffle"].bci if "shuffle" in qualities else 1.0
    rows = []
    for name in techniques:
        q = qualities[name]
        rows.append(
            {
                "Technique": name,
                "Dataset": dataset,
                "BSI": q.bsi,
                "BSI_rel_hash": relative_metric(q.bsi, hash_bsi),
                "BCI": q.bci,
                "BCI_rel_shuffle": relative_metric(q.bci, shuffle_bci),
                "KSR": q.ksr,
                "MPI": q.mpi,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 11
# ----------------------------------------------------------------------
def _bench_config(
    batch_interval: float,
    *,
    num_blocks: int = 8,
    num_reducers: int = 8,
    cost_scale: float = 1.0,
) -> EngineConfig:
    """Engine config for throughput probing.

    ``cost_scale`` multiplies the variable task costs: scaling costs up
    moves the stability boundary to proportionally lower rates, which
    shrinks the number of tuples each probe must simulate without
    changing any relative ordering between techniques.
    """
    base = TaskCostModel()
    cm = TaskCostModel(
        map_fixed=base.map_fixed,
        map_per_tuple=base.map_per_tuple * cost_scale,
        map_per_key=base.map_per_key * cost_scale,
        reduce_fixed=base.reduce_fixed,
        reduce_per_tuple=base.reduce_per_tuple * cost_scale,
        reduce_per_fragment=base.reduce_per_fragment * cost_scale,
    )
    return EngineConfig(
        batch_interval=batch_interval,
        num_blocks=num_blocks,
        num_reducers=num_reducers,
        cluster=ClusterConfig(num_nodes=4, cores_per_node=4),
        cost_model=cm,
        track_outputs=False,  # throughput probing: skip answer assembly
    )


def fig11_throughput_vs_interval(
    *,
    intervals: Sequence[float] = (1.0, 2.0, 3.0),
    techniques: Sequence[str] = PAPER_TECHNIQUES,
    num_batches: int = 5,
    rate_amplitude: float = 0.8,
    rate_period: float = 4.0,
    num_keys: int = 20_000,
    exponent: float = 1.4,
    tolerance: float = 0.08,
    seed: int = 7,
    initial_rate: float = 8_000.0,
    cost_scale: float = 1.0,
) -> list[dict[str, Any]]:
    """Figure 11a-c: max throughput under a sinusoidal rate per interval."""
    rows = []
    for interval in intervals:
        def factory(rate: float) -> StreamSource:
            arrival = SinusoidalRate(
                mean=rate, amplitude=rate_amplitude * rate, period=rate_period
            )
            return synd_source(
                exponent, num_keys=num_keys, arrival=arrival, seed=seed
            )

        search = ThroughputSearch(
            query=wordcount_query(window_length=10 * interval),
            config=_bench_config(interval, cost_scale=cost_scale),
            source_factory=factory,
            num_batches=num_batches,
            tolerance=tolerance,
            initial_rate=initial_rate,
        )
        for result in search.compare(list(techniques)):
            rows.append(
                {
                    "BatchInterval": interval,
                    "Technique": result.technique,
                    "MaxThroughput": result.max_rate,
                    "Probes": result.probes,
                }
            )
    return rows


def fig11d_skew_sweep(
    *,
    exponents: Sequence[float] = SYND_EXPONENTS,
    techniques: Sequence[str] = PAPER_TECHNIQUES,
    batch_interval: float = 3.0,
    num_batches: int = 4,
    num_keys: int = 20_000,
    tolerance: float = 0.1,
    seed: int = 7,
    initial_rate: float = 8_000.0,
    cost_scale: float = 1.0,
) -> list[dict[str, Any]]:
    """Figure 11d: max throughput vs Zipf exponent (interval 3 s)."""
    rows = []
    for z in exponents:
        def factory(rate: float) -> StreamSource:
            return synd_source(
                z, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
            )

        search = ThroughputSearch(
            query=wordcount_query(window_length=10 * batch_interval),
            config=_bench_config(batch_interval, cost_scale=cost_scale),
            source_factory=factory,
            num_batches=num_batches,
            tolerance=tolerance,
            initial_rate=initial_rate,
        )
        for result in search.compare(list(techniques)):
            rows.append(
                {
                    "Zipf_z": z,
                    "Technique": result.technique,
                    "MaxThroughput": result.max_rate,
                    "Probes": result.probes,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 12
# ----------------------------------------------------------------------
def fig12_elasticity(
    *,
    direction: str = "out",
    num_batches: int = 40,
    batch_interval: float = 1.0,
    low_rate: float = 3_000.0,
    high_rate: float = 18_000.0,
    low_keys: int = 500,
    high_keys: int = 5_000,
    seed: int = 13,
) -> dict[str, Any]:
    """Figure 12: auto-scaling under a growing ("out") or shrinking
    ("in") workload.  Returns per-batch series of offered load, task
    counts, and the load ratio W; back-pressure is disabled so the
    elasticity controller is the only defence (Section 7.2)."""
    if direction not in ("out", "in"):
        raise ValueError(f"direction must be 'out' or 'in', got {direction}")
    span = num_batches * batch_interval
    if direction == "out":
        arrival = RampRate(low_rate, high_rate, 0.2 * span, 0.8 * span)
        source = ElasticWorkloadSource(
            arrival,
            keys_start=low_keys,
            keys_end=high_keys,
            t0=0.2 * span,
            t1=0.8 * span,
            seed=seed,
        )
        start_tasks = 2
    else:
        arrival = RampRate(high_rate, low_rate, 0.2 * span, 0.8 * span)
        source = ElasticWorkloadSource(
            arrival,
            keys_start=high_keys,
            keys_end=low_keys,
            t0=0.2 * span,
            t1=0.8 * span,
            seed=seed,
        )
        start_tasks = 12
    config = EngineConfig(
        batch_interval=batch_interval,
        num_blocks=start_tasks,
        num_reducers=start_tasks,
        cluster=ClusterConfig(num_nodes=16, cores_per_node=4),
        # Heavier per-tuple work than the throughput benches so the ramp
        # traverses all three elasticity zones at these modest rates.
        cost_model=TaskCostModel(map_per_tuple=4e-4, reduce_per_fragment=1e-3),
        elasticity=ElasticityConfig(
            threshold=0.9,
            step=0.3,
            window=2,
            grace=1,
            max_map_tasks=32,
            max_reduce_tasks=32,
        ),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    result = engine.run(source, num_batches)
    series = [
        {
            "Batch": r.index,
            "OfferedRate": r.tuple_count / batch_interval,
            "Keys": r.key_count,
            "MapTasks": r.map_tasks,
            "ReduceTasks": r.reduce_tasks,
            "Load_W": round(r.load, 4),
        }
        for r in result.stats.records
    ]
    return {
        "direction": direction,
        "series": series,
        "actions": [d.reason for d in result.scaling_history if d.acted],
    }


# ----------------------------------------------------------------------
# Figure 13
# ----------------------------------------------------------------------
def fig13_latency_distribution(
    *,
    techniques: Sequence[str] = ("time", "prompt"),
    num_batches: int = 60,
    batch_interval: float = 1.0,
    rate: float = 12_000.0,
    exponent: float = 1.2,
    seed: int = 17,
) -> dict[str, Any]:
    """Figure 13: reduce-task completion-time spread, per technique."""
    out: dict[str, Any] = {"techniques": {}}
    for name in techniques:
        arrival = SinusoidalRate(mean=rate, amplitude=0.7 * rate, period=5.0)
        source = synd_source(exponent, arrival=arrival, seed=seed)
        engine = MicroBatchEngine(
            make_partitioner(name),
            wordcount_query(),
            _bench_config(batch_interval),
        )
        result = engine.run(source, num_batches)
        reduce_series = result.stats.reduce_time_series()
        means = [m for _, m, _ in reduce_series]
        maxes = [x for _, _, x in reduce_series]
        spreads = [x - m for _, m, x in reduce_series]
        out["techniques"][name] = {
            "series": reduce_series,
            "mean_reduce_time": sum(means) / len(means),
            "mean_max_reduce_time": sum(maxes) / len(maxes),
            "mean_spread": sum(spreads) / len(spreads),
            "latency_mean": result.stats.mean_latency(),
            "latency_p95": result.stats.p95_latency(),
        }
    return out


# ----------------------------------------------------------------------
# Figure 14
# ----------------------------------------------------------------------
def fig14a_post_sort_throughput(
    *,
    batch_interval: float = 1.0,
    num_batches: int = 5,
    num_keys: int = 40_000,
    exponent: float = 0.8,
    tolerance: float = 0.08,
    seed: int = 19,
    initial_rate: float = 8_000.0,
    cost_scale: float = 1.0,
) -> list[dict[str, Any]]:
    """Figure 14a: throughput of Prompt vs the post-sort ablation.

    A lower exponent / bigger universe means more distinct keys per
    batch, i.e. a more expensive heartbeat sort to hide.
    """
    def factory(rate: float) -> StreamSource:
        return synd_source(
            exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
        )

    search = ThroughputSearch(
        query=wordcount_query(window_length=10 * batch_interval),
        config=_bench_config(batch_interval, cost_scale=cost_scale),
        source_factory=factory,
        num_batches=num_batches,
        tolerance=tolerance,
        initial_rate=initial_rate,
    )
    rows = []
    for technique in ("prompt", "prompt-postsort"):
        result = search.find_max_rate(technique)
        rows.append(
            {"Technique": technique, "MaxThroughput": result.max_rate}
        )
    return rows


def fig14b_partition_overhead(
    *,
    batch_interval: float = 1.0,
    rates: Sequence[float] = (5_000.0, 10_000.0, 20_000.0, 40_000.0),
    num_blocks: int = 8,
    exponent: float = 1.0,
    seed: int = 19,
) -> list[dict[str, Any]]:
    """Figure 14b: measured Algorithm 2 cost as % of the batch interval.

    This is real wall-clock time of the partitioning pass compared to
    the interval it must hide inside — the paper observes <= 5%.
    """
    rows = []
    info = BatchInfo(0, 0.0, batch_interval)
    for rate in rates:
        source = synd_source(exponent, arrival=ConstantRate(rate), seed=seed)
        tuples = source.tuples_between(0.0, batch_interval)
        part = PromptPartitioner()
        # Warm up interpreter paths once, then measure.
        part.partition(tuples, num_blocks, info)
        started = time.perf_counter()
        batch = part.partition(tuples, num_blocks, info)
        wall = time.perf_counter() - started
        rows.append(
            {
                "Rate": rate,
                "BatchTuples": len(tuples),
                "Keys": len(batch.distinct_keys()),
                "Alg1WallSeconds": batch.buffer_elapsed,
                "Alg2WallSeconds": batch.plan_elapsed,
                "TotalWallSeconds": wall,
                # Figure 14b charges only the Algorithm 2 plan step: the
                # buffering pass replaces ordinary ingestion work and
                # overlaps the interval rather than adding to it.
                "OverheadPct": 100.0 * batch.plan_elapsed / batch_interval,
            }
        )
    return rows
