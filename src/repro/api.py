"""The one-shot convenience entry point: :func:`repro.run`.

Most experiments in this repository build a
:class:`~repro.engine.engine.MicroBatchEngine` explicitly because they
reuse partitioners, inject failures, or sweep configurations.  For the
common case — "run this query over that source with technique X" —
:func:`run` collapses the three-object dance into one call:

    import repro
    from repro.queries import wordcount_query
    from repro.workloads import tweets_source

    result = repro.run(
        tweets_source(rate=5_000.0, seed=42),
        wordcount_query(window_length=10.0),
        partitioner="prompt",
        num_batches=12,
        executor="parallel",
    )
    print(result.stats.throughput())
"""

from __future__ import annotations

from typing import Any

from .engine import EngineConfig, MicroBatchEngine, RunResult
from .partitioners import make_partitioner
from .partitioners.base import Partitioner
from .queries.base import Query
from .workloads.source import StreamSource

__all__ = ["run"]


def run(
    source: StreamSource,
    query: Query,
    partitioner: str | Partitioner = "prompt",
    num_batches: int = 10,
    **config: Any,
) -> RunResult:
    """Run ``query`` over ``num_batches`` batch intervals of ``source``.

    ``partitioner`` is either a registry name (any of
    :data:`~repro.partitioners.PARTITIONER_NAMES`, e.g. ``"prompt"``,
    ``"hash"``, ``"pk2"``) or an already-constructed
    :class:`~repro.partitioners.base.Partitioner`.  Every remaining
    keyword argument becomes an :class:`~repro.engine.engine.EngineConfig`
    field (``executor="parallel"``, ``num_blocks=16``,
    ``run_seed=7``, ``pipeline_depth=2``, ...), so anything a full
    engine setup can express is reachable from here — an unknown
    keyword raises the same ``TypeError`` the config dataclass would.

    Returns the ordinary :class:`~repro.engine.engine.RunResult`; the
    engine (and any worker pool its executor spawned) is torn down
    before returning.
    """
    if isinstance(partitioner, str):
        partitioner = make_partitioner(partitioner)
    engine = MicroBatchEngine(partitioner, query, EngineConfig(**config))
    return engine.run(source, num_batches=num_batches)
