"""Stream source interface and the generic keyed generator.

A source produces, for any simulated interval, the list of tuples that
arrived in it — timestamps sorted (the paper's arrival-order assumption,
Section 2.1), keys drawn from a configurable popularity distribution,
values from a dataset-specific sampler.  Determinism: a source is fully
determined by its seed; ``reset()`` restarts the exact same stream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]

from ..core.tuples import StreamTuple
from .arrival import ArrivalProcess
from .zipf import ZipfSampler

__all__ = ["DatasetProperties", "StreamSource", "ZipfKeyedSource"]


@dataclass(frozen=True, slots=True)
class DatasetProperties:
    """Table 1 metadata: the paper's dataset vs. our scaled stand-in."""

    name: str
    paper_size: str
    paper_cardinality: str
    scaled_cardinality: int
    description: str


class StreamSource(abc.ABC):
    """An infinite, deterministic, replayable tuple stream."""

    name: str = "source"

    @abc.abstractmethod
    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        """Tuples with timestamps in ``[t0, t1)``, sorted by timestamp."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Rewind to the start of the stream (same seed, same tuples)."""

    def properties(self) -> Optional[DatasetProperties]:
        """Table 1 metadata, when this source models a paper dataset."""
        return None


# A value sampler turns (rng, count) into ``count`` tuple values.  The
# generator type is a forward reference so this module imports (and the
# StreamSource ABC stays usable) when numpy is absent.
ValueSampler = Callable[["np.random.Generator", int], Sequence]


class ZipfKeyedSource(StreamSource):
    """Arrival process x Zipf(-Mandelbrot) keys x dataset value sampler.

    All five paper datasets are specializations of this generator —
    they differ in key-space size, skew exponent, key naming, and value
    schema (see the sibling dataset modules).
    """

    def __init__(
        self,
        name: str,
        arrival: ArrivalProcess,
        num_keys: int,
        exponent: float,
        *,
        shift: float = 0.0,
        seed: int = 0,
        key_formatter: Callable[[int], object] | None = None,
        value_sampler: ValueSampler | None = None,
        dataset: DatasetProperties | None = None,
    ) -> None:
        self.name = name
        self.arrival = arrival
        self.seed = seed
        self._sampler = ZipfSampler(num_keys, exponent, shift=shift, seed=seed)
        self._value_rng = np.random.default_rng(seed + 0x5EED)
        self._key_formatter = key_formatter
        self._value_sampler = value_sampler
        self._dataset = dataset
        # Key identity cache: formatting (e.g. "w123") once per rank.
        self._key_cache: dict[int, object] = {}

    @property
    def num_keys(self) -> int:
        return self._sampler.num_keys

    @property
    def exponent(self) -> float:
        return self._sampler.exponent

    def properties(self) -> Optional[DatasetProperties]:
        return self._dataset

    def reset(self) -> None:
        self.arrival.reset()
        self._sampler.reseed(self.seed)
        self._value_rng = np.random.default_rng(self.seed + 0x5EED)

    def _key_for(self, rank: int) -> object:
        if self._key_formatter is None:
            return int(rank)
        key = self._key_cache.get(rank)
        if key is None:
            key = self._key_formatter(rank)
            self._key_cache[rank] = key
        return key

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        count = self.arrival.count_between(t0, t1)
        if count == 0:
            return []
        timestamps = self.arrival.timestamps(t0, t1, count)
        ranks = self._sampler.sample(count)
        if self._value_sampler is None:
            values: Sequence = [None] * count
        else:
            values = self._value_sampler(self._value_rng, count)
            if len(values) != count:
                raise AssertionError(
                    f"value sampler produced {len(values)} values for {count} tuples"
                )
        key_for = self._key_for
        return [
            StreamTuple(ts=float(ts), key=key_for(int(rank)), value=value)
            for ts, rank, value in zip(timestamps, ranks, values)
        ]
